"""Unit tests for the validation helpers."""

import pytest

from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequire:
    def test_passes_silently_when_true(self):
        require(True, "never shown")

    def test_raises_value_error_when_false(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_formats_args_lazily(self):
        with pytest.raises(ValueError, match="bad fanout -3"):
            require(False, "bad fanout %d", -3)

    def test_message_without_args_may_contain_percent(self):
        with pytest.raises(ValueError, match="100% wrong"):
            require(False, "100% wrong")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.001, 1.001, 2.0, -5])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError, match="p must be a probability"):
            require_probability(value, "p")

    def test_returns_float(self):
        assert isinstance(require_probability(1, "p"), float)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.01, "x")
