"""Tests for deterministic seed derivation."""

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_seed, make_generator, make_random


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_63_bits(self):
        for label in ("x", "y", "z"):
            assert 0 <= derive_seed(123456789, label) < 2**63

    def test_no_collision_over_many_labels(self):
        seeds = {derive_seed(7, f"label-{i}") for i in range(5000)}
        assert len(seeds) == 5000


class TestGenerators:
    def test_make_generator_reproducible(self):
        a = make_generator(5, "x").random(10)
        b = make_generator(5, "x").random(10)
        assert np.allclose(a, b)

    def test_make_random_reproducible(self):
        a = make_random(5, "x").random()
        b = make_random(5, "x").random()
        assert a == b

    def test_different_labels_give_different_streams(self):
        a = make_generator(5, "x").random(10)
        b = make_generator(5, "y").random(10)
        assert not np.allclose(a, b)


class TestSeedSequenceFactory:
    def test_same_label_same_stream(self):
        factory = SeedSequenceFactory(9)
        assert np.allclose(
            factory.generator("net").random(5), factory.generator("net").random(5)
        )

    def test_indices_create_distinct_streams(self):
        factory = SeedSequenceFactory(9)
        a = factory.generator("node", 0).random(5)
        b = factory.generator("node", 1).random(5)
        assert not np.allclose(a, b)

    def test_spawn_is_namespaced(self):
        factory = SeedSequenceFactory(9)
        child = factory.spawn("sub")
        assert child.seed("x") != factory.seed("x")
        assert child.seed("x") == SeedSequenceFactory(factory.seed("sub")).seed("x")

    def test_stream_yields_distinct_seeds(self):
        factory = SeedSequenceFactory(9)
        stream = factory.stream("s")
        values = [next(stream) for _ in range(100)]
        assert len(set(values)) == 100

    def test_random_returns_stdlib_random(self):
        factory = SeedSequenceFactory(9)
        assert factory.random("r").random() == factory.random("r").random()
