"""Tests for the multiset and its entropy — Eq. (1) of the paper."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.multiset import Multiset


class TestBasics:
    def test_empty(self):
        m = Multiset()
        assert len(m) == 0
        assert m.distinct() == 0
        assert m.shannon_entropy() == 0.0

    def test_add_and_count(self):
        m = Multiset()
        m.add("a")
        m.add("a", 2)
        assert m.count("a") == 3
        assert len(m) == 3

    def test_add_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Multiset().add("a", 0)

    def test_discard(self):
        m = Multiset([1, 1, 2])
        m.discard(1)
        assert m.count(1) == 1
        m.discard(1, 5)  # over-discard is clamped
        assert m.count(1) == 0
        assert 1 not in m
        m.discard(99)  # absent: no-op
        assert len(m) == 1

    def test_elements_with_multiplicity(self):
        m = Multiset(["x", "y", "x"])
        assert sorted(m.elements()) == ["x", "x", "y"]

    def test_equality(self):
        assert Multiset([1, 2, 2]) == Multiset([2, 1, 2])
        assert Multiset([1]) != Multiset([2])

    def test_copy_is_independent(self):
        m = Multiset([1])
        c = m.copy()
        c.add(2)
        assert 2 not in m

    def test_union_adds_counts(self):
        u = Multiset([1, 1]).union(Multiset([1, 2]))
        assert u.count(1) == 3
        assert u.count(2) == 1

    def test_frequencies(self):
        m = Multiset(["a", "a", "b", "c"])
        freqs = m.frequencies()
        assert freqs["a"] == pytest.approx(0.5)
        assert sum(freqs.values()) == pytest.approx(1.0)


class TestEntropy:
    def test_uniform_two_elements(self):
        assert Multiset([1, 2]).shannon_entropy() == pytest.approx(1.0)

    def test_single_element_zero(self):
        assert Multiset([5, 5, 5]).shannon_entropy() == 0.0

    def test_all_distinct_is_max(self):
        m = Multiset(range(600))
        assert m.shannon_entropy() == pytest.approx(math.log2(600))
        assert m.max_entropy() == pytest.approx(math.log2(600))

    def test_paper_bound_log2_nhf(self):
        # n_h f = 600 in the paper: maximum entropy log2(600) = 9.23.
        m = Multiset(range(600))
        assert m.shannon_entropy() == pytest.approx(9.2288, abs=1e-3)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300))
    def test_entropy_bounds(self, items):
        m = Multiset(items)
        h = m.shannon_entropy()
        assert -1e-9 <= h <= math.log2(m.distinct()) + 1e-9

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
    def test_entropy_invariant_under_uniform_scaling(self, items):
        # The fanin multiset collected from witnesses repeats every entry
        # f times; entropy must be unchanged (relied upon by the audit).
        m = Multiset(items)
        scaled = Multiset()
        for item, count in m.items():
            scaled.add(item, count * 7)
        assert scaled.shannon_entropy() == pytest.approx(m.shannon_entropy(), abs=1e-9)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=100))
    def test_concentration_lowers_entropy(self, items):
        m = Multiset(items)
        concentrated = Multiset(items + [items[0]] * len(items))
        assert concentrated.shannon_entropy() <= m.max_entropy() + 1e-9


class TestIncrementalEntropyMaintenance:
    """The O(1) entropy must track a fresh recomputation through any
    add/discard sequence (the audit hot path relies on this)."""

    @staticmethod
    def _reference_entropy(m):
        total = len(m)
        if total == 0:
            return 0.0
        return -sum(
            (c / total) * math.log2(c / total) for _item, c in m.items()
        )

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "discard"]),
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=1, max_value=5),
            ),
            max_size=200,
        )
    )
    def test_tracks_reference_through_mutations(self, ops):
        m = Multiset()
        for op, item, count in ops:
            if op == "add":
                m.add(item, count)
            else:
                m.discard(item, count)
        assert m.shannon_entropy() == pytest.approx(
            self._reference_entropy(m), abs=1e-9
        )

    def test_add_ids_bincount_path_matches_elementwise(self):
        from repro.util.multiset import entropy_of_counts

        ids = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        bulk = Multiset()
        bulk.add_ids(ids)
        slow = Multiset(ids)
        assert bulk == slow
        assert bulk.shannon_entropy() == pytest.approx(slow.shannon_entropy())
        assert entropy_of_counts(bulk.counts_array()) == pytest.approx(
            slow.shannon_entropy()
        )

    def test_copy_preserves_accumulator(self):
        m = Multiset([1, 1, 2, 3, 3, 3])
        c = m.copy()
        c.discard(3, 2)
        assert c.shannon_entropy() == pytest.approx(
            self._reference_entropy(c), abs=1e-12
        )
        assert m.shannon_entropy() == pytest.approx(
            self._reference_entropy(m), abs=1e-12
        )
