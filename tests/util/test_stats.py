"""Tests for running statistics and empirical distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    EmpiricalDistribution,
    RunningStats,
    cdf_at,
    empirical_cdf,
    histogram_density,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(3.5)
        assert s.mean == 3.5
        assert s.variance == 0.0
        assert s.min == s.max == 3.5

    def test_known_values(self):
        s = RunningStats()
        s.add_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        s = RunningStats()
        s.add_many(values)
        assert s.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6
        )
        assert s.min == min(values)
        assert s.max == max(values)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_union(self, a, b):
        sa, sb, su = RunningStats(), RunningStats(), RunningStats()
        sa.add_many(a)
        sb.add_many(b)
        su.add_many(a + b)
        merged = sa.merge(sb)
        assert merged.count == su.count
        assert merged.mean == pytest.approx(su.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(su.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        sa = RunningStats()
        sa.add_many([1.0, 2.0])
        merged = sa.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestEmpiricalCdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_simple(self):
        xs, fr = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(fr) == pytest.approx([1 / 3, 2 / 3, 1.0])

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_monotone_and_ends_at_one(self, values):
        xs, fr = empirical_cdf(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(fr) > 0)
        assert fr[-1] == pytest.approx(1.0)


class TestCdfAt:
    def test_counts_inclusive(self):
        assert cdf_at([1.0, 2.0, 3.0], 2.0) == pytest.approx(2 / 3)

    def test_below_all(self):
        assert cdf_at([1.0, 2.0], 0.0) == 0.0

    def test_above_all(self):
        assert cdf_at([1.0, 2.0], 5.0) == 1.0


class TestHistogramDensity:
    def test_fractions_sum_to_one(self):
        centers, fractions = histogram_density(np.arange(100.0), bins=7)
        assert fractions.sum() == pytest.approx(1.0)
        assert len(centers) == 7

    def test_respects_range(self):
        _centers, fractions = histogram_density(
            [0.5] * 10 + [99.5] * 10, bins=2, value_range=(0.0, 1.0)
        )
        # Samples outside the range are excluded from the bins.
        assert fractions.sum() == pytest.approx(0.5)


class TestEmpiricalDistribution:
    def test_basic_summaries(self):
        d = EmpiricalDistribution()
        d.extend([1.0, 2.0, 3.0, 4.0])
        assert d.mean == pytest.approx(2.5)
        assert d.min == 1.0
        assert d.max == 4.0
        assert len(d) == 4

    def test_fraction_below(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert d.fraction_below(2.5) == pytest.approx(0.5)

    def test_quantile(self):
        d = EmpiricalDistribution(list(np.arange(101.0)))
        assert d.quantile(0.5) == pytest.approx(50.0)

    def test_empty_guards(self):
        d = EmpiricalDistribution()
        assert d.mean == 0.0
        assert d.stddev == 0.0
        with pytest.raises(ValueError):
            _ = d.min

    def test_pdf_matches_histogram(self):
        d = EmpiricalDistribution([0.0, 0.0, 1.0, 1.0])
        _centers, fractions = d.pdf(bins=2)
        assert list(fractions) == pytest.approx([0.5, 0.5])
