"""Tests for the vectorised entropy sampler (Figure 13)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.entropy_analysis import collusion_entropy
from repro.mc.entropy import (
    biased_fanout_entropies,
    row_entropies,
    sample_fanin_entropies,
    sample_fanout_entropies,
    sampler_history_entropies,
)
from repro.membership.full import FullMembership
from repro.util.multiset import Multiset


class TestRowEntropies:
    def test_known_values(self):
        out = row_entropies(np.array([[1, 1, 2, 2], [5, 5, 5, 5], [1, 2, 3, 4]]))
        assert out == pytest.approx([1.0, 0.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            row_entropies(np.empty((0, 0)))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 20), min_size=3, max_size=12),
            min_size=1,
            max_size=8,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    def test_matches_multiset_reference(self, rows):
        matrix = np.array(rows)
        fast = row_entropies(matrix)
        slow = [Multiset(row).shannon_entropy() for row in rows]
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_rows_are_independent(self, rng):
        # Duplicated values at the row boundary must not merge runs.
        matrix = np.array([[7, 7, 7], [7, 1, 2]])
        out = row_entropies(matrix)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(math.log2(3), abs=1e-9)


class TestFanoutSampling:
    def test_paper_range(self, rng):
        # Figure 13a: 600-pick histories at n=10,000 land in ~[9.11, 9.21].
        entropies = sample_fanout_entropies(rng, 10_000, 600, n_samples=2_000)
        assert entropies.min() > 9.05
        assert entropies.max() <= math.log2(600) + 1e-9
        assert entropies.mean() == pytest.approx(9.16, abs=0.03)

    def test_none_below_gamma(self, rng):
        entropies = sample_fanout_entropies(rng, 10_000, 600, n_samples=5_000)
        assert float(np.mean(entropies < 8.95)) == 0.0

    def test_small_system_duplicates_lower_entropy(self, rng):
        # With n ≈ history size, repeats are forced.
        entropies = sample_fanout_entropies(rng, 100, 600, n_samples=50)
        assert entropies.max() < math.log2(100) + 1e-9


class TestFaninSampling:
    def test_sizes_average_history_picks(self, rng):
        entropies, sizes = sample_fanin_entropies(rng, 2_000, 120)
        assert sizes.mean() == pytest.approx(120, rel=0.02)
        assert len(entropies) == len(sizes)

    def test_fanin_range_wider_than_fanout(self, rng):
        fanout = sample_fanout_entropies(rng, 2_000, 120, n_samples=2_000)
        fanin, _sizes = sample_fanin_entropies(rng, 2_000, 120)
        assert fanin.max() > fanout.max()  # sizes exceed n_h f sometimes
        assert fanin.std() > fanout.std()


class TestBiasedSampling:
    def test_unbiased_matches_honest(self, rng):
        honest = sample_fanout_entropies(rng, 10_000, 600, n_samples=500)
        biased = biased_fanout_entropies(rng, 10_000, 600, 500, m_colluders=25, bias=0.0)
        assert biased.mean() == pytest.approx(honest.mean(), abs=0.05)

    def test_bias_lowers_entropy(self, rng):
        mild = biased_fanout_entropies(rng, 10_000, 600, 300, 25, bias=0.1)
        heavy = biased_fanout_entropies(rng, 10_000, 600, 300, 25, bias=0.6)
        assert heavy.mean() < mild.mean()

    def test_eq7_upper_bounds_achievable_entropy(self, rng):
        # Eq. (7) idealises the honest picks as evenly filling all
        # n_h f - m' bins (fractional occupancy), so it upper-bounds what
        # even the smartest (round-robin) coalition achieves; the gap is
        # small (< 0.35 bits at the paper's scale).
        for bias in (0.2, 0.4):
            planned = biased_fanout_entropies(
                rng, 10_000, 600, 400, 25, bias=bias, planned=True
            )
            model = collusion_entropy(bias, 25, 600)
            assert planned.mean() <= model + 1e-6
            assert planned.mean() >= model - 0.5

    def test_planned_beats_iid_adversary(self, rng):
        # Round-robin within the coalition strictly improves entropy over
        # i.i.d. picking — the adversary model Eq. (7) assumes.
        iid = biased_fanout_entropies(rng, 10_000, 600, 400, 25, bias=0.4)
        planned = biased_fanout_entropies(
            rng, 10_000, 600, 400, 25, bias=0.4, planned=True
        )
        assert planned.mean() > iid.mean()

    def test_ceiling_bias_detected_above_threshold(self, rng):
        # Just above the paper's p*_m = 0.21 ceiling, histories start
        # dipping below γ = 8.95.
        above = biased_fanout_entropies(rng, 10_000, 600, 500, 25, bias=0.30)
        assert float(np.mean(above < 8.95)) > 0.9


class TestSamplerDriven:
    def test_full_membership_histories_near_uniform(self, rng):
        sampler = FullMembership(rng, range(500))
        entropies = sampler_history_entropies(sampler, range(60), periods=25, fanout=6)
        assert entropies.min() > 0.9 * math.log2(25 * 6)
