"""The Monte-Carlo blame sampler must agree with the closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.freerider_blames import expected_blame_freerider
from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import FreeriderDegree, HONEST_DEGREE
from repro.mc.blame_model import BlameModel, detection_sweep, simulate_scores


@pytest.fixture
def analysis_model():
    return BlameModel(fanout=12, request_size=4, p_reception=0.93, p_dcc=1.0)


class TestSamplerExpectation:
    def test_honest_mean_matches_eq5(self, analysis_model, rng):
        draws = analysis_model.sample_period_blames(rng, 200_000)
        assert draws.mean() == pytest.approx(
            expected_blame_honest(12, 4, 0.93), rel=0.01
        )

    def test_paper_sigma_25_6_order(self, analysis_model, rng):
        # Figure 10's experimental standard deviation is 25.6.  The
        # paper's exact σ(b) derivation lives in an unavailable tech
        # report [8]; our event-structure sampler (with the shared
        # propose-loss correlation) lands at ≈ 20 — same order, and the
        # value the downstream figures use self-consistently.
        sigma = analysis_model.sample_sigma(rng, samples=300_000)
        assert sigma == pytest.approx(25.6, rel=0.27)
        assert sigma > 15.0

    def test_freerider_mean_matches_paper_formula(self, analysis_model, rng):
        degree = FreeriderDegree(0.1, 0.1, 0.1)
        draws = analysis_model.sample_period_blames(rng, 200_000, degree)
        assert draws.mean() == pytest.approx(
            expected_blame_freerider(degree, 12, 4, 0.93), rel=0.01
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_expectation_identity_across_degrees(self, d1, d2, d3):
        model = BlameModel(fanout=8, request_size=3, p_reception=0.9)
        degree = FreeriderDegree(d1, d2, d3)
        rng = np.random.default_rng(7)
        draws = model.sample_period_blames(rng, 120_000, degree)
        assert draws.mean() == pytest.approx(model.expected_blame(degree), rel=0.03)

    def test_no_loss_honest_no_blame(self, rng):
        model = BlameModel(fanout=12, request_size=4, p_reception=1.0)
        draws = model.sample_period_blames(rng, 10_000)
        assert draws.max() == 0.0

    def test_no_loss_freerider_still_blamed(self, rng):
        model = BlameModel(fanout=12, request_size=4, p_reception=1.0)
        degree = FreeriderDegree(0.0, 0.5, 0.0)
        draws = model.sample_period_blames(rng, 50_000, degree)
        # δ2 drops half the verifiers: blame f per dropped one.
        assert draws.mean() == pytest.approx(0.5 * 12 * 12, rel=0.02)

    def test_blames_nonnegative(self, analysis_model, rng):
        draws = analysis_model.sample_period_blames(rng, 50_000)
        assert draws.min() >= 0.0


class TestScoreSimulation:
    def test_honest_scores_center_at_zero(self, analysis_model, rng):
        sample = simulate_scores(analysis_model, rng, n_honest=20_000, rounds=5)
        assert abs(float(sample.honest.mean())) < 0.5

    def test_variance_shrinks_with_rounds(self, analysis_model, rng):
        short = simulate_scores(analysis_model, rng, n_honest=5_000, rounds=2)
        long = simulate_scores(analysis_model, rng, n_honest=5_000, rounds=40)
        assert float(np.std(long.honest)) < float(np.std(short.honest))

    def test_freerider_scores_shift_down(self, analysis_model, rng):
        sample = simulate_scores(
            analysis_model,
            rng,
            n_honest=5_000,
            n_freeriders=5_000,
            degree=FreeriderDegree.uniform(0.1),
            rounds=20,
        )
        assert float(sample.freeriders.mean()) < float(sample.honest.mean()) - 5

    def test_compensation_override(self, analysis_model, rng):
        sample = simulate_scores(
            analysis_model, rng, n_honest=5_000, rounds=5, compensation=0.0
        )
        # Without compensation honest scores sit at -b̃ on average.
        assert float(sample.honest.mean()) == pytest.approx(
            -analysis_model.compensation, rel=0.05
        )

    def test_detection_and_false_positive_fractions(self, analysis_model, rng):
        sample = simulate_scores(
            analysis_model,
            rng,
            n_honest=5_000,
            n_freeriders=2_000,
            degree=FreeriderDegree.uniform(0.1),
            rounds=50,
        )
        # Paper: beyond δ=0.1 detection is above 99 % at η=-9.75.
        assert sample.detection_fraction(-9.75) > 0.99
        assert sample.false_positive_fraction(-9.75) < 0.02

    def test_empty_populations(self, analysis_model, rng):
        sample = simulate_scores(analysis_model, rng, n_honest=0, n_freeriders=0, rounds=1)
        assert sample.detection_fraction(-9.75) == 0.0
        assert sample.false_positive_fraction(-9.75) == 0.0


class TestDetectionSweep:
    def test_monotone_gain(self, analysis_model, rng):
        deltas = [0.0, 0.05, 0.1, 0.2]
        _alphas, _betas, gains = detection_sweep(
            analysis_model, rng, deltas, eta=-9.75, rounds=10,
            n_freeriders=500, n_honest=500,
        )
        assert list(gains) == sorted(gains)

    def test_detection_grows_with_delta(self, analysis_model, rng):
        deltas = [0.02, 0.1]
        alphas, _betas, _gains = detection_sweep(
            analysis_model, rng, deltas, eta=-9.75, rounds=50,
            n_freeriders=2_000, n_honest=500,
        )
        assert alphas[1] > alphas[0]
        assert alphas[1] > 0.99


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BlameModel(fanout=0, request_size=4, p_reception=0.9)
        with pytest.raises(ValueError):
            BlameModel(fanout=4, request_size=0, p_reception=0.9)
        with pytest.raises(ValueError):
            BlameModel(fanout=4, request_size=4, p_reception=1.5)
