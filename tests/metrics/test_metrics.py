"""Tests for the metrics layer (health, scores, overhead)."""

import math

import numpy as np
import pytest

from repro.metrics.health import HealthReport, delivery_ratio, health_curve, node_required_lag
from repro.metrics.overhead import OverheadReport, bandwidth_overhead, message_counts_per_node_period
from repro.metrics.scores import (
    DetectionReport,
    detection_report,
    gap_between_populations,
    score_distributions,
)
from repro.sim.trace import MessageTrace


class FakeStore:
    def __init__(self, received):
        self._received = received

    def __contains__(self, chunk_id):
        return chunk_id in self._received

    def received_at(self, chunk_id):
        return self._received[chunk_id]


class FakeNode:
    def __init__(self, node_id, received):
        self.node_id = node_id
        self.store = FakeStore(received)


class FakeChunk:
    def __init__(self, chunk_id, created_at):
        self.chunk_id = chunk_id
        self.created_at = created_at


class FakeSource:
    def __init__(self, n_chunks, interval=1.0):
        self.chunks = [FakeChunk(i, i * interval) for i in range(n_chunks)]


class TestNodeRequiredLag:
    def test_all_delivered_quickly(self):
        source = FakeSource(10)
        node = FakeNode(0, {i: i * 1.0 + 0.5 for i in range(10)})
        assert node_required_lag(node, source, coverage=1.0) == pytest.approx(0.5)

    def test_missing_chunks_make_lag_infinite(self):
        source = FakeSource(10)
        node = FakeNode(0, {i: i * 1.0 + 0.5 for i in range(5)})  # half missing
        assert node_required_lag(node, source, coverage=0.9) == math.inf

    def test_coverage_tolerates_missing_tail(self):
        source = FakeSource(100)
        received = {i: i * 1.0 + 0.2 for i in range(99)}  # one missing
        node = FakeNode(0, received)
        assert node_required_lag(node, source, coverage=0.95) == pytest.approx(0.2)

    def test_window_filter(self):
        source = FakeSource(10)
        node = FakeNode(0, {5: 5.0 + 2.0})
        lag = node_required_lag(node, source, coverage=1.0, window=(5.0, 6.0))
        assert lag == pytest.approx(2.0)

    def test_quantile_selection(self):
        source = FakeSource(10)
        received = {i: i * 1.0 + (0.1 if i < 9 else 9.0) for i in range(10)}
        node = FakeNode(0, received)
        assert node_required_lag(node, source, coverage=0.9) == pytest.approx(0.1)
        assert node_required_lag(node, source, coverage=1.0) == pytest.approx(9.0)


class TestHealthCurve:
    def test_fraction_monotone_in_lag(self):
        source = FakeSource(20)
        nodes = [
            FakeNode(i, {c: c * 1.0 + 0.2 * (i + 1) for c in range(20)})
            for i in range(5)
        ]
        report = health_curve(nodes, source, lags=[0.0, 0.5, 1.5], coverage=1.0)
        assert list(report.fractions) == sorted(report.fractions)
        assert report.fraction_at(10.0) == 1.0

    def test_median_lag(self):
        source = FakeSource(10)
        nodes = [
            FakeNode(i, {c: c * 1.0 + lag for c in range(10)})
            for i, lag in enumerate([0.1, 0.2, 0.3])
        ]
        report = health_curve(nodes, source, coverage=1.0)
        assert report.median_lag == pytest.approx(0.2)

    def test_delivery_ratio(self):
        source = FakeSource(10)
        full = FakeNode(0, {c: 1.0 for c in range(10)})
        half = FakeNode(1, {c: 1.0 for c in range(5)})
        assert delivery_ratio([full, half], source) == pytest.approx(0.75)


class TestDetectionReport:
    def test_split_and_fractions(self):
        scores = {0: 1.0, 1: -20.0, 2: 0.5, 3: -15.0, 4: -30.0}
        report = detection_report(scores, freerider_ids={3, 4}, eta=-9.75)
        assert report.detection == 1.0
        assert report.false_positives == pytest.approx(1 / 3)
        assert len(report.honest) == 3
        assert len(report.freeriders) == 2

    def test_empty_populations(self):
        report = detection_report({}, set(), -9.75)
        assert report.detection == 0.0
        assert report.false_positives == 0.0

    def test_gap(self):
        scores = {i: 0.0 for i in range(50)}
        scores.update({100 + i: -30.0 for i in range(50)})
        report = detection_report(scores, {100 + i for i in range(50)}, -9.75)
        assert gap_between_populations(report) == pytest.approx(30.0)

    def test_summary_format(self):
        report = detection_report({0: 0.0, 1: -20.0}, {1}, -9.75)
        text = report.summary()
        assert "detection=100%" in text
        assert "false positives=0%" in text


class TestOverheadReport:
    def _trace(self):
        trace = MessageTrace()

        class Data:
            CATEGORY = "data"

            def wire_size(self):
                return 1000

        class Verif:
            CATEGORY = "verification"

            def wire_size(self):
                return 50

        class Rep:
            CATEGORY = "reputation"

            def wire_size(self):
                return 30

        for _ in range(10):
            trace.record_sent(0, Data(), 1000)
        for _ in range(4):
            trace.record_sent(0, Verif(), 50)
        for _ in range(2):
            trace.record_sent(1, Rep(), 30)
        return trace

    def test_percentages(self):
        report = bandwidth_overhead(self._trace(), duration=10.0, n_nodes=2)
        assert report.data_bytes == 10_000
        assert report.overhead_bytes == 260
        assert report.overhead_percent == pytest.approx(2.6)

    def test_per_node_kbps(self):
        report = bandwidth_overhead(self._trace(), duration=10.0, n_nodes=2)
        assert report.per_node_kbps(10_000) == pytest.approx(10_000 * 8 / 1000 / 10 / 2)

    def test_zero_data_guard(self):
        report = OverheadReport(0, 10, 10, 1.0, 1)
        assert report.overhead_ratio == 0.0

    def test_message_counts_per_node_period(self):
        trace = self._trace()
        counts = message_counts_per_node_period(
            trace, duration=10.0, n_nodes=2, gossip_period=0.5
        )
        assert counts["Data"] == pytest.approx(10 / 2 / 20)

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_overhead(MessageTrace(), duration=0.0, n_nodes=1)
