"""The calendar-queue delivery tier: unit behaviour and heap equivalence.

The contract under test: with a :class:`DeliveryTimeline` attached, the
engine fires events in *exactly* the order the single binary heap would
have — ``(time, seq)`` ascending across both tiers — including under
re-entrant scheduling from delivery handlers, zero-latency models (same
bucket), sparse gaps (cursor rewind) and past-horizon outliers (heap
fallback).
"""

import numpy as np
import pytest

from repro.sim.engine import DeliveryTimeline, Simulator
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.loss import BernoulliLoss, NoLoss
from repro.sim.network import Network, Transport


class TestDeliveryTimelineUnit:
    def make(self, width=0.1, ring_size=8):
        return DeliveryTimeline(width, ring_size=ring_size)

    def test_entries_fire_in_time_seq_order_across_buckets(self):
        tl = self.make()
        entries = [
            [0.35, 3, 0, 0, "c"],
            [0.05, 1, 0, 0, "a"],
            [0.35, 2, 0, 0, "b"],
            [0.61, 4, 0, 0, "d"],
        ]
        for e in entries:
            assert tl.add(e, 0)
        assert len(tl) == 4
        fired = []
        while tl.advance():
            fired.append(tl.cur[tl.cur_pos][4])
            tl.cur_pos += 1
            tl.count -= 1
        assert fired == ["a", "b", "c", "d"]
        assert len(tl) == 0

    def test_same_bucket_insert_during_drain_lands_after_cursor(self):
        tl = self.make(width=1.0)
        tl.add([0.1, 1, 0, 0, "a"], 0)
        tl.add([0.5, 2, 0, 0, "c"], 0)
        assert tl.advance()
        assert tl.cur[tl.cur_pos][4] == "a"
        tl.cur_pos += 1
        tl.count -= 1
        # Re-entrant: an event fired at 0.1 schedules a same-bucket
        # delivery at 0.3 — it must sort in before "c".
        tl.add([0.3, 3, 0, 0, "b"], 0)
        order = []
        while tl.advance():
            order.append(tl.cur[tl.cur_pos][4])
            tl.cur_pos += 1
            tl.count -= 1
        assert order == ["b", "c"]

    def test_gap_bucket_rewind(self):
        tl = self.make(width=0.1)
        tl.add([0.55, 1, 0, 0, "late"], 0)
        assert tl.advance()  # cursor jumps to bucket 5 over empty gaps
        assert tl.cur_idx == 5
        # A timer callback inside the gap now schedules a delivery due
        # *before* the cursor's bucket: the cursor must rewind.
        assert tl.add([0.25, 2, 0, 0, "early"], 2)
        order = []
        while tl.advance():
            order.append(tl.cur[tl.cur_pos][4])
            tl.cur_pos += 1
            tl.count -= 1
        assert order == ["early", "late"]

    def test_past_horizon_rejected(self):
        tl = self.make(width=0.1, ring_size=8)
        assert tl.horizon == 7
        assert not tl.add([10.0, 1, 0, 0, "far"], 0)
        assert len(tl) == 0
        assert tl.add([0.65, 2, 0, 0, "near"], 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            DeliveryTimeline(0.0)
        with pytest.raises(Exception):
            DeliveryTimeline(0.1, ring_size=48)  # not a power of two

    def test_simulator_accepts_single_timeline(self):
        sim = Simulator()
        tl = DeliveryTimeline(0.01)
        sim.attach_timeline(tl, lambda until, budget: 0)
        assert sim.timeline is tl
        with pytest.raises(Exception):
            sim.attach_timeline(DeliveryTimeline(0.01), lambda until, budget: 0)

    def test_second_network_on_same_sim_keeps_heap_path(self):
        sim = Simulator()
        first = Network(sim, latency=ConstantLatency(0.05), loss=NoLoss())
        second = Network(sim, latency=ConstantLatency(0.05), loss=NoLoss())
        assert first._timeline is not None
        assert second._timeline is None


def _scripted_run(use_timeline, latency, loss_seed=None, n=6):
    """One deterministic scripted scenario; returns the delivery log.

    Exercises re-entrant sends (each delivery triggers a further
    fan-out for a few hops), interleaved timers, TCP traffic and, with
    ``loss_seed``, datagram loss — everything the cluster hot path does,
    in miniature.
    """
    sim = Simulator()
    loss = NoLoss() if loss_seed is None else BernoulliLoss(np.random.default_rng(loss_seed), 0.1)
    net = Network(sim, latency=latency, loss=loss, use_timeline=use_timeline)
    log = []

    class Node:
        def __init__(self, node_id):
            self.node_id = node_id

        def on_message(self, src, message):
            hops, payload = message
            log.append((sim.now, src, self.node_id, hops, payload))
            if hops > 0:
                for k in range(2):
                    net.send(self.node_id, (self.node_id + k + 1) % n, (hops - 1, payload))

    for i in range(n):
        net.register(Node(i))

    timer_log = []
    for i in range(20):
        sim.call_later(0.013 * (i + 1), lambda i=i: timer_log.append((sim.now, i)))
    for i in range(n):
        net.send(i, (i + 1) % n, (4, i))
        net.send(i, (i + 2) % n, (2, 100 + i), Transport.TCP)
    sim.run(until=2.5)
    return log, timer_log, sim.events_processed, sim._sequence


class TestHeapCalendarEquivalence:
    """Both schedulers must produce identical event firing orders."""

    @pytest.mark.parametrize(
        "latency_factory, loss_seed",
        [
            (lambda: UniformLatency(np.random.default_rng(5), 0.01, 0.08), None),
            (lambda: UniformLatency(np.random.default_rng(5), 0.01, 0.08), 9),
            (lambda: ConstantLatency(0.05), None),
            # Zero latency: every delivery lands in the *current* bucket
            # (the insort path) and ties are broken purely by seq.
            (lambda: ConstantLatency(0.0), None),
        ],
    )
    def test_scripted_scenarios_fire_identically(self, latency_factory, loss_seed):
        a = _scripted_run(True, latency_factory(), loss_seed)
        b = _scripted_run(False, latency_factory(), loss_seed)
        assert a == b
        assert len(a[0]) > 50  # the scenario actually exercised traffic

    def test_past_horizon_deliveries_merge_in_order(self):
        # A latency far beyond the ring horizon rides the heap tier but
        # must still interleave correctly with timeline deliveries.
        class TwoScale(ConstantLatency):
            def __init__(self):
                super().__init__(0.02)
                self._flip = 0

            def sample(self, src, dst):
                self._flip += 1
                return 0.02 if self._flip % 3 else 10.0

            def delivery_window(self):
                return (0.02, 0.0)

        a = _scripted_run(True, TwoScale())
        b = _scripted_run(False, TwoScale())
        assert a == b

    def test_step_merges_tiers(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05), loss=NoLoss())
        order = []

        class N:
            def __init__(self, node_id):
                self.node_id = node_id

            def on_message(self, src, message):
                order.append(("msg", message))

        net.register(N(0))
        net.register(N(1))
        net.send(0, 1, "a")
        sim.call_later(0.02, lambda: order.append(("timer", "early")))
        sim.call_later(0.09, lambda: order.append(("timer", "late")))
        net.send(1, 0, "b")
        steps = 0
        while sim.step():
            steps += 1
        assert steps == 4
        assert order == [("timer", "early"), ("msg", "a"), ("msg", "b"), ("timer", "late")]

    def test_run_until_and_max_events_respected(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.05), loss=NoLoss())
        seen = []

        class N:
            def __init__(self, node_id):
                self.node_id = node_id

            def on_message(self, src, message):
                seen.append(message)

        net.register(N(0))
        net.register(N(1))
        for i in range(10):
            net.send(0, 1, i)
        sim.run(until=0.01)
        assert seen == [] and sim.now == 0.01  # nothing due yet
        sim.run(max_events=4)
        assert seen == [0, 1, 2, 3]
        assert sim.pending_events == 6
        sim.run(until=0.06)
        assert seen == list(range(10))
        assert sim.now == 0.06
