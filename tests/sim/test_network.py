"""Tests for the simulated network fabric and message tracing."""

from dataclasses import dataclass

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.loss import BernoulliLoss, NoLoss
from repro.sim.network import Network, Transport
from repro.sim.trace import CATEGORY_DATA, CATEGORY_VERIFICATION, MessageTrace


@dataclass(frozen=True)
class DataMsg:
    CATEGORY = CATEGORY_DATA
    payload: int = 0

    def wire_size(self) -> int:
        return 100


@dataclass(frozen=True)
class VerifMsg:
    CATEGORY = CATEGORY_VERIFICATION

    def wire_size(self) -> int:
        return 10


class Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.05), loss=NoLoss())
    nodes = {i: Recorder(i) for i in range(3)}
    for node in nodes.values():
        network.register(node)
    return sim, network, nodes


class TestDelivery:
    def test_udp_delivers_after_latency(self, net):
        sim, network, nodes = net
        network.send(0, 1, DataMsg(7))
        sim.run()
        assert nodes[1].received == [(0, DataMsg(7))]
        assert sim.now == pytest.approx(0.05)

    def test_tcp_latency_factor(self, net):
        sim, network, nodes = net
        network.send(0, 1, DataMsg(), Transport.TCP)
        sim.run()
        assert sim.now == pytest.approx(0.10)
        assert len(nodes[1].received) == 1

    def test_unknown_destination_is_dropped(self, net):
        sim, network, nodes = net
        assert network.send(0, 99, DataMsg()) is False

    def test_unknown_sender_raises(self, net):
        _sim, network, _nodes = net
        with pytest.raises(ValueError):
            network.send(99, 0, DataMsg())

    def test_duplicate_registration_rejected(self, net):
        _sim, network, _nodes = net
        with pytest.raises(ValueError):
            network.register(Recorder(0))


class TestLoss:
    def test_udp_subject_to_loss(self, rng):
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.01), loss=BernoulliLoss(rng, 1.0))
        a, b = Recorder(0), Recorder(1)
        network.register(a)
        network.register(b)
        network.send(0, 1, DataMsg())
        sim.run()
        assert b.received == []
        assert network.trace.lost_count() == 1

    def test_tcp_bypasses_loss(self, rng):
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.01), loss=BernoulliLoss(rng, 1.0))
        a, b = Recorder(0), Recorder(1)
        network.register(a)
        network.register(b)
        network.send(0, 1, DataMsg(), Transport.TCP)
        sim.run()
        assert len(b.received) == 1


class TestExpulsion:
    def test_disconnected_cannot_send(self, net):
        sim, network, nodes = net
        network.disconnect(0)
        assert network.send(0, 1, DataMsg()) is False
        sim.run()
        assert nodes[1].received == []

    def test_disconnected_cannot_receive(self, net):
        sim, network, nodes = net
        network.disconnect(1)
        network.send(0, 1, DataMsg())
        sim.run()
        assert nodes[1].received == []

    def test_in_flight_traffic_discarded_on_expulsion(self, net):
        sim, network, nodes = net
        network.send(0, 1, DataMsg())
        network.disconnect(1)  # before delivery
        sim.run()
        assert nodes[1].received == []

    def test_reconnect(self, net):
        sim, network, nodes = net
        network.disconnect(1)
        network.reconnect(1)
        network.send(0, 1, DataMsg())
        sim.run()
        assert len(nodes[1].received) == 1

    def test_is_connected(self, net):
        _sim, network, _nodes = net
        assert network.is_connected(0)
        network.disconnect(0)
        assert not network.is_connected(0)


class TestReconnectPurge:
    """Messages in flight across an outage die with the old process:
    reconnect purges them (accounted as lost) so a delivery delayed past
    the whole downtime cannot reach the restarted node."""

    @pytest.mark.parametrize("use_timeline", [True, False])
    def test_in_flight_message_purged_on_reconnect(self, use_timeline):
        sim = Simulator()
        network = Network(
            sim, latency=ConstantLatency(0.5), loss=NoLoss(), use_timeline=use_timeline
        )
        nodes = {i: Recorder(i) for i in range(2)}
        for node in nodes.values():
            network.register(node)
        network.send(0, 1, DataMsg(7))  # would deliver at t=0.5
        network.disconnect(1)  # crash with the datagram in flight
        network.reconnect(1)  # restart before the delivery instant
        sim.run()
        assert nodes[1].received == []
        assert network.trace.lost_count("DataMsg") == 1
        # The fabric works normally afterwards.
        network.send(0, 1, DataMsg(8))
        sim.run()
        assert nodes[1].received == [(0, DataMsg(8))]

    @pytest.mark.parametrize("use_timeline", [True, False])
    def test_purge_only_hits_the_reconnecting_node(self, use_timeline):
        sim = Simulator()
        network = Network(
            sim, latency=ConstantLatency(0.5), loss=NoLoss(), use_timeline=use_timeline
        )
        nodes = {i: Recorder(i) for i in range(3)}
        for node in nodes.values():
            network.register(node)
        network.send(0, 1, DataMsg(1))
        network.send(0, 2, DataMsg(2))
        network.disconnect(1)
        network.reconnect(1)
        sim.run()
        assert nodes[1].received == []
        assert nodes[2].received == [(0, DataMsg(2))]


class TestBandwidthIntegration:
    def test_upload_rate_delays_delivery(self):
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.0))
        a, b = Recorder(0), Recorder(1)
        network.register(a, upload_rate=100.0)  # 100 B/s
        network.register(b)
        network.send(0, 1, DataMsg())  # 100 bytes -> 1 s serialisation
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_set_upload_rate(self, net):
        _sim, network, _nodes = net
        network.set_upload_rate(0, 500.0)
        assert network.link(0).rate == 500.0


class TestTrace:
    def test_bytes_by_category(self, net):
        sim, network, _nodes = net
        network.send(0, 1, DataMsg())
        network.send(0, 1, VerifMsg())
        network.send(0, 2, VerifMsg())
        sim.run()
        trace = network.trace
        assert trace.category_bytes(CATEGORY_DATA) == 100
        assert trace.category_bytes(CATEGORY_VERIFICATION) == 20
        assert trace.overhead_ratio() == pytest.approx(0.2)

    def test_counts_by_kind(self, net):
        sim, network, _nodes = net
        network.send(0, 1, DataMsg())
        network.send(0, 1, DataMsg())
        sim.run()
        assert network.trace.sent_count("DataMsg") == 2
        assert network.trace.delivered_count("DataMsg") == 2

    def test_node_category_bytes(self, net):
        sim, network, _nodes = net
        network.send(0, 1, DataMsg())
        network.send(1, 2, VerifMsg())
        sim.run()
        assert network.trace.node_category_bytes(0, CATEGORY_DATA) == 100
        assert network.trace.node_category_bytes(1, CATEGORY_VERIFICATION) == 10

    def test_loss_rate(self, rng):
        sim = Simulator()
        network = Network(sim, loss=BernoulliLoss(rng, 0.5))
        a, b = Recorder(0), Recorder(1)
        network.register(a)
        network.register(b)
        for _ in range(2000):
            network.send(0, 1, DataMsg())
        assert network.trace.loss_rate("DataMsg") == pytest.approx(0.5, abs=0.05)

    def test_default_wire_size_fallback(self, net):
        sim, network, _nodes = net

        class Bare:
            pass

        network.send(0, 1, Bare())
        assert network.trace.sent_bytes("Bare") == 64

    def test_reset(self, net):
        sim, network, _nodes = net
        network.send(0, 1, DataMsg())
        network.trace.reset()
        assert network.trace.sent_count() == 0

    def test_overhead_ratio_zero_without_data(self):
        assert MessageTrace().overhead_ratio() == 0.0


class TestDisconnectedDestinationShortCircuit:
    """Sends to expelled/unknown destinations must not charge the
    sender's upload link or the byte trace (Table 5 accounting)."""

    def test_no_bandwidth_charged_for_disconnected_destination(self):
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.05))
        a, b = Recorder(0), Recorder(1)
        network.register(a, upload_rate=1000.0)
        network.register(b)
        network.disconnect(1)
        assert network.send(0, 1, DataMsg()) is False
        assert network.link(0).bytes_sent == 0
        assert network.link(0).queueing_delay(0.0) == 0.0
        assert network.trace.sent_count() == 0

    def test_no_bandwidth_charged_for_unknown_destination(self):
        sim = Simulator()
        network = Network(sim, latency=ConstantLatency(0.05))
        network.register(Recorder(0), upload_rate=1000.0)
        assert network.send(0, 99, DataMsg()) is False
        assert network.link(0).bytes_sent == 0
        assert network.trace.sent_count() == 0

    def test_no_rng_consumed_for_disconnected_destination(self, rng):
        import numpy as np

        sim = Simulator()
        network = Network(
            sim,
            latency=ConstantLatency(0.01),
            loss=BernoulliLoss(np.random.default_rng(3), 0.5),
        )
        a, b, c = Recorder(0), Recorder(1), Recorder(2)
        for node in (a, b, c):
            network.register(node)
        network.disconnect(1)
        # a blocked send must not advance the loss model's draw stream:
        # the next real send sees the same decisions as a fresh model.
        for _ in range(50):
            network.send(0, 1, DataMsg())
        reference = BernoulliLoss(np.random.default_rng(3), 0.5)
        decisions = [network.loss.is_lost(0, 2) for _ in range(100)]
        expected = [reference.is_lost(0, 2) for _ in range(100)]
        assert decisions == expected


class TestWireSizeTypeCache:
    def test_fixed_size_message_sized_once_per_type(self, net):
        sim, network, _nodes = net
        calls = []

        @dataclass(frozen=True)
        class FixedMsg:
            CATEGORY = CATEGORY_VERIFICATION
            WIRE_SIZE_FIXED = True

            def wire_size(self) -> int:
                calls.append(1)
                return 11

        for _ in range(5):
            network.send(0, 1, FixedMsg())
        assert len(calls) == 1
        assert network.trace.sent_bytes("FixedMsg") == 5 * 11

    def test_variable_size_message_sized_per_send(self, net):
        sim, network, _nodes = net
        calls = []

        @dataclass(frozen=True)
        class VariableMsg:
            CATEGORY = CATEGORY_DATA
            payload: int = 0

            def wire_size(self) -> int:
                calls.append(1)
                return 10 + self.payload

        network.send(0, 1, VariableMsg(1))
        network.send(0, 1, VariableMsg(2))
        assert len(calls) == 2
        assert network.trace.sent_bytes("VariableMsg") == 23

    def test_custom_wire_size_bypasses_cache(self, net):
        sim, network, _nodes = net
        network.wire_size = lambda message: 7
        network.send(0, 1, DataMsg())  # DataMsg.wire_size() says 100
        network.send(0, 1, DataMsg())
        assert network.trace.sent_bytes("DataMsg") == 14

    def test_real_message_sizes_accounted(self, net):
        from repro.wire import Blame, Propose

        sim, network, _nodes = net
        blame = Blame(target=3, value=1.0)
        propose = Propose(proposal_id=1, chunk_ids=(1, 2))
        network.send(0, 1, blame)
        network.send(0, 1, blame)
        network.send(0, 1, propose)
        assert network.trace.sent_bytes("Blame") == 2 * blame.wire_size()
        assert network.trace.sent_bytes("Propose") == propose.wire_size()


class TestInlineModelFastPaths:
    """The send path inlines PerNodeLoss / UniformLatency verbatim for
    the exact stock types; subclasses take the model-call fallback.
    Both paths must consume the identical RNG draw stream."""

    @staticmethod
    def _run(loss_cls, latency_cls):
        import numpy as np

        from repro.sim.latency import UniformLatency
        from repro.sim.loss import PerNodeLoss

        sim = Simulator()
        network = Network(
            sim,
            latency=latency_cls(np.random.default_rng(5), 0.01, 0.08),
            loss=loss_cls(np.random.default_rng(6), base=0.2, node_loss={1: 0.1}),
        )
        arrivals = []

        class TimestampingRecorder(Recorder):
            def on_message(self, src, message):
                arrivals.append(round(sim.now, 12))
                super().on_message(src, message)

        a, b = TimestampingRecorder(0), TimestampingRecorder(1)
        network.register(a)
        network.register(b)
        message = DataMsg()
        for i in range(200):
            if i % 3 == 0:
                network.send_many(0, (1, 1), message)
            else:
                network.send(0, 1, message)
        sim.run()
        return arrivals, network.trace.lost_count(), network.trace.sent_count()

    def test_subclassed_models_reproduce_inline_stream(self):
        from repro.sim.latency import UniformLatency
        from repro.sim.loss import PerNodeLoss

        class WrappedLoss(PerNodeLoss):
            pass

        class WrappedLatency(UniformLatency):
            pass

        inline = self._run(PerNodeLoss, UniformLatency)
        fallback = self._run(WrappedLoss, WrappedLatency)
        assert inline == fallback

    def test_invalid_latency_delay_raises_instead_of_rewinding_clock(self):
        class BrokenLatency(ConstantLatency):
            def sample(self, src, dst):
                return -1.0

        sim = Simulator()
        network = Network(sim, latency=BrokenLatency())
        network.register(Recorder(0))
        network.register(Recorder(1))
        sim.now = 5.0
        with pytest.raises(ValueError):
            network.send(0, 1, DataMsg())

    def test_nan_latency_delay_raises(self):
        class NaNLatency(ConstantLatency):
            def sample(self, src, dst):
                return float("nan")

        sim = Simulator()
        network = Network(sim, latency=NaNLatency())
        network.register(Recorder(0))
        network.register(Recorder(1))
        with pytest.raises(ValueError):
            network.send(0, 1, DataMsg())
