"""Tests for latency, loss and bandwidth models."""

import math

import numpy as np
import pytest

from repro.sim.bandwidth import UploadLink, kbps
from repro.sim.latency import (
    ConstantLatency,
    LogNormalLatency,
    PerNodeLatency,
    UniformLatency,
)
from repro.sim.loss import BernoulliLoss, NoLoss, PerNodeLoss


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.05)
        assert model.sample(0, 1) == 0.05

    def test_uniform_within_bounds(self, rng):
        model = UniformLatency(rng, 0.02, 0.12)
        samples = [model.sample(0, 1) for _ in range(500)]
        assert all(0.02 <= s <= 0.12 for s in samples)

    def test_uniform_rejects_inverted_bounds(self, rng):
        with pytest.raises(ValueError):
            UniformLatency(rng, 0.2, 0.1)

    def test_lognormal_capped(self, rng):
        model = LogNormalLatency(rng, median=0.05, sigma=2.0, cap=0.3)
        samples = [model.sample(0, 1) for _ in range(1000)]
        assert max(samples) <= 0.3
        assert min(samples) > 0

    def test_lognormal_median_roughly_respected(self, rng):
        model = LogNormalLatency(rng, median=0.05, sigma=0.5, cap=10.0)
        samples = np.array([model.sample(0, 1) for _ in range(4000)])
        assert np.median(samples) == pytest.approx(0.05, rel=0.15)

    def test_per_node_adds_access_delay(self):
        model = PerNodeLatency(ConstantLatency(0.05), {1: 0.1})
        assert model.sample(0, 1) == pytest.approx(0.15)
        assert model.sample(1, 2) == pytest.approx(0.15)
        assert model.sample(0, 2) == pytest.approx(0.05)
        model.set_access_delay(2, 0.2)
        assert model.sample(1, 2) == pytest.approx(0.35)


class TestLossModels:
    def test_no_loss(self):
        assert not NoLoss().is_lost(0, 1)

    def test_bernoulli_extremes(self, rng):
        assert not BernoulliLoss(rng, 0.0).is_lost(0, 1)
        assert BernoulliLoss(rng, 1.0).is_lost(0, 1)

    def test_bernoulli_rate(self, rng):
        model = BernoulliLoss(rng, 0.2)
        losses = sum(model.is_lost(0, 1) for _ in range(20000))
        assert losses / 20000 == pytest.approx(0.2, abs=0.02)

    def test_bernoulli_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            BernoulliLoss(rng, 1.5)

    def test_per_node_combination(self, rng):
        model = PerNodeLoss(rng, base=0.1, node_loss={5: 0.2})
        assert model.loss_probability(0, 1) == pytest.approx(0.1)
        assert model.loss_probability(0, 5) == pytest.approx(1 - 0.9 * 0.8)
        assert model.loss_probability(5, 5) == pytest.approx(1 - 0.9 * 0.8 * 0.8)

    def test_per_node_observed_rate(self, rng):
        model = PerNodeLoss(rng, base=0.0, node_loss={1: 0.3})
        losses = sum(model.is_lost(0, 1) for _ in range(20000))
        assert losses / 20000 == pytest.approx(0.3, abs=0.02)


class TestUploadLink:
    def test_infinite_rate_no_delay(self):
        link = UploadLink()
        assert link.transmit(now=1.0, size_bytes=10_000) == 1.0

    def test_serialisation_delay(self):
        link = UploadLink(1000.0)
        assert link.transmit(now=0.0, size_bytes=500) == pytest.approx(0.5)

    def test_queueing(self):
        link = UploadLink(1000.0)
        link.transmit(now=0.0, size_bytes=1000)  # busy until 1.0
        assert link.transmit(now=0.5, size_bytes=500) == pytest.approx(1.5)
        assert link.queueing_delay(0.9) == pytest.approx(0.6)

    def test_idle_gap_resets_start(self):
        link = UploadLink(1000.0)
        link.transmit(now=0.0, size_bytes=100)
        assert link.transmit(now=5.0, size_bytes=100) == pytest.approx(5.1)

    def test_bytes_accounted(self):
        link = UploadLink(1000.0)
        link.transmit(0.0, 300)
        link.transmit(0.0, 200)
        assert link.bytes_sent == 500

    def test_reset(self):
        link = UploadLink(1000.0)
        link.transmit(0.0, 1000)
        link.reset()
        assert link.bytes_sent == 0
        assert link.transmit(0.0, 100) == pytest.approx(0.1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            UploadLink(1000.0).transmit(0.0, -1)

    def test_kbps_conversion(self):
        assert kbps(674.0) == pytest.approx(84_250.0)
        with pytest.raises(ValueError):
            kbps(-1.0)


class TestBatchedSamplingEquivalence:
    """The block-buffered samplers must reproduce the exact scalar draw
    sequence — seeded experiments depend on it bit-for-bit."""

    def test_uniform_matches_scalar_stream(self):
        model = UniformLatency(np.random.default_rng(7), 0.02, 0.12)
        reference = np.random.default_rng(7)
        for _ in range(2500):  # spans multiple refill blocks
            assert model.sample(0, 1) == float(reference.uniform(0.02, 0.12))

    def test_lognormal_matches_scalar_stream(self):
        model = LogNormalLatency(np.random.default_rng(9), median=0.05, sigma=0.5, cap=0.3)
        reference = np.random.default_rng(9)
        for _ in range(2500):
            expected = min(float(reference.lognormal(mean=np.log(0.05), sigma=0.5)), 0.3)
            assert model.sample(0, 1) == expected

    def test_bernoulli_matches_scalar_stream(self):
        model = BernoulliLoss(np.random.default_rng(11), 0.3)
        reference = np.random.default_rng(11)
        for _ in range(2500):
            assert model.is_lost(0, 1) == (float(reference.random()) < 0.3)

    def test_bernoulli_zero_probability_consumes_no_draws(self):
        rng = np.random.default_rng(13)
        model = BernoulliLoss(rng, 0.0)
        for _ in range(100):
            assert not model.is_lost(0, 1)
        # the generator was never touched: it still matches a fresh one
        assert float(rng.random()) == float(np.random.default_rng(13).random())

    def test_per_node_matches_scalar_stream(self):
        model = PerNodeLoss(np.random.default_rng(17), base=0.1, node_loss={5: 0.2})
        reference = np.random.default_rng(17)
        for dst in [1, 5] * 1250:
            p = model.loss_probability(0, dst)
            assert model.is_lost(0, dst) == (float(reference.random()) < p)

    def test_per_node_rate_changes_take_effect_immediately(self):
        model = PerNodeLoss(np.random.default_rng(19), base=0.0)
        assert not model.is_lost(0, 1)  # p == 0: no draw
        model.set_node_loss(1, 1.0)
        assert model.is_lost(0, 1)
        model.node_loss[1] = 0.0  # direct mutation is supported too
        assert not model.is_lost(0, 1)
