"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_later(2.0, lambda: order.append("b"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.call_later(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.call_at(9.0, lambda: None)

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-1.0, lambda: None)

    def test_rejects_infinite_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_at(float("inf"), lambda: None)

    def test_events_scheduled_during_execution_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_later(1.0, lambda: order.append("nested"))

        sim.call_later(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.call_later(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        timer = sim.call_later(1.0, lambda: None)
        sim.run()
        timer.cancel()
        assert timer.fired

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        t1 = sim.call_later(1.0, lambda: None)
        sim.call_later(2.0, lambda: None)
        t1.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_stops_at_until(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, lambda: fired.append(1))
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [5]

    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.call_later(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_at_override(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), first_at=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        timer = None

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                timer.stop()

        timer = sim.call_every(1.0, tick)
        sim.run(until=100.0)
        assert len(ticks) == 3

    def test_jitter_applied(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), jitter=lambda: 0.1)
        sim.run(until=3.5)
        assert ticks == pytest.approx([1.0, 2.1, 3.2])

    def test_non_positive_jittered_delay_falls_back(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), jitter=lambda: -5.0)
        sim.run(until=3.5)
        assert len(ticks) == 3  # falls back to the nominal interval


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_event_order_is_reproducible(self, delays):
        def run():
            sim = Simulator()
            order = []
            for i, delay in enumerate(delays):
                sim.call_later(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run() == run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_later(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5
