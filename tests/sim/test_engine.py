"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_later(2.0, lambda: order.append("b"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.call_later(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.call_at(9.0, lambda: None)

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-1.0, lambda: None)

    def test_rejects_infinite_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_at(float("inf"), lambda: None)

    def test_events_scheduled_during_execution_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_later(1.0, lambda: order.append("nested"))

        sim.call_later(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.call_later(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        timer = sim.call_later(1.0, lambda: None)
        sim.run()
        timer.cancel()
        assert timer.fired

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        t1 = sim.call_later(1.0, lambda: None)
        sim.call_later(2.0, lambda: None)
        t1.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_stops_at_until(self):
        sim = Simulator()
        fired = []
        sim.call_later(1.0, lambda: fired.append(1))
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [5]

    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.call_later(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_first_at_override(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), first_at=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        timer = None

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                timer.stop()

        timer = sim.call_every(1.0, tick)
        sim.run(until=100.0)
        assert len(ticks) == 3

    def test_jitter_applied(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), jitter=lambda: 0.1)
        sim.run(until=3.5)
        assert ticks == pytest.approx([1.0, 2.1, 3.2])

    def test_non_positive_jittered_delay_falls_back(self):
        sim = Simulator()
        ticks = []
        sim.call_every(1.0, lambda: ticks.append(sim.now), jitter=lambda: -5.0)
        sim.run(until=3.5)
        assert len(ticks) == 3  # falls back to the nominal interval


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_event_order_is_reproducible(self, delays):
        def run():
            sim = Simulator()
            order = []
            for i, delay in enumerate(delays):
                sim.call_later(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run() == run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_later(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestHotPathScheduling:
    def test_schedule_passes_args_inline(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 7)
        sim.run()
        assert seen == [("x", 7)]

    def test_schedule_rejects_past_and_nonfinite_times(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(4.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(float("nan"), lambda: None)

    def test_cancel_entry(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1.0, fired.append, 1)
        sim.cancel_entry(entry)
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_call_later_args(self):
        sim = Simulator()
        seen = []
        sim.call_later(1.0, seen.append, 42)
        sim.run()
        assert seen == [42]

    def test_interleaved_schedule_and_call_at_keep_tie_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, 0)
        sim.call_at(1.0, order.append, 1)
        sim.schedule(1.0, order.append, 2)
        sim.run()
        assert order == [0, 1, 2]


class TestMaxEventsCountsFiredOnly:
    """Regression: cancelled timers skipped by lazy deletion must not
    consume the ``max_events`` budget (they never fire)."""

    def test_cancelled_timers_do_not_consume_budget(self):
        sim = Simulator()
        fired = []
        timers = [
            sim.call_later(float(i + 1), lambda i=i: fired.append(i)) for i in range(20)
        ]
        for timer in timers[:10]:
            timer.cancel()
        sim.run(max_events=5)
        assert fired == [10, 11, 12, 13, 14]
        assert sim.events_processed == 5

    def test_events_processed_matches_fired_with_mid_run_cancels(self):
        sim = Simulator()
        fired = []
        later = [
            sim.call_later(float(10 + i), lambda i=i: fired.append(i)) for i in range(10)
        ]

        def cancel_half():
            fired.append("c")
            for timer in later[::2]:
                timer.cancel()

        sim.call_later(1.0, cancel_half)
        sim.run(max_events=4)
        # one cancel event + three surviving odd-indexed timers
        assert fired == ["c", 1, 3, 5]
        assert sim.events_processed == 4


class TestCancellationHeavyWorkloads:
    def test_heap_compacts_under_cancel_churn(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(1000.0 + i, lambda: None)
        victims = [sim.call_at(1.0 + i * 0.001, lambda: None) for i in range(10_000)]
        for timer in victims:
            timer.cancel()
        # O(1) live counter is exact...
        assert sim.pending_events == 10
        assert sim.cancel_generation == 10_000
        # ...and lazy deletion compacted: cancelled residue in the heap
        # stays below the compaction trigger instead of accumulating 10k.
        assert sim.heap_size - sim.pending_events < 64
        sim.run()
        assert sim.events_processed == 10
        assert sim.heap_size == 0

    def test_pending_events_stays_accurate_through_fire_cancel_cycles(self):
        sim = Simulator()
        fired = []
        for round_no in range(20):
            timers = [
                sim.call_later(0.5 + i * 0.01, lambda i=i: fired.append(i))
                for i in range(500)
            ]
            for timer in timers[::2]:
                timer.cancel()
            assert sim.pending_events == 250
            sim.run()
            assert sim.pending_events == 0
        assert len(fired) == 20 * 250

    def test_same_time_ordering_survives_compaction(self):
        """Tie-broken scheduling order must hold even when compaction
        re-heapifies underneath the pending events."""
        sim = Simulator()
        order = []
        survivors = []
        timers = []
        for i in range(2_000):
            timers.append(sim.call_at(1.0, lambda i=i: order.append(i)))
        for i, timer in enumerate(timers):
            if i % 3 != 0:
                timer.cancel()
            else:
                survivors.append(i)
        # compaction bounds cancelled residue to at most the live count
        assert sim.heap_size <= 2 * sim.pending_events + 64
        sim.run()
        assert order == survivors

    def test_periodic_timer_stop_releases_entry(self):
        sim = Simulator()
        ticks = []
        timer = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.call_at(3.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.pending_events == 0

    def test_mid_run_compaction_does_not_corrupt_cancel_accounting(self):
        """Regression: a callback-triggered compaction resets the
        cancelled-in-heap counter; entries skipped earlier in the same
        run() must not be subtracted again afterwards."""
        sim = Simulator()
        # pre-cancelled entries that run() will skip before any firing
        for i in range(10):
            sim.call_at(0.5 + i * 0.01, lambda: None).cancel()
        survivors = [sim.call_at(100.0 + i, lambda: None) for i in range(70)]

        def mass_cancel():
            for timer in survivors:
                timer.cancel()  # 70 > live: triggers compaction mid-run

        sim.call_at(1.0, mass_cancel)
        sim.run()
        assert sim.pending_events == 0
        assert sim.heap_size == 0
        assert sim._cancelled_in_heap == 0
        # accounting still sound for a subsequent cancellation-heavy round
        next_round = [sim.call_later(1.0 + i * 0.001, lambda: None) for i in range(200)]
        for timer in next_round:
            timer.cancel()
        assert sim.pending_events == 0
        assert sim.heap_size <= 2 * sim.pending_events + 64

    def test_compaction_engages_during_a_long_run(self):
        """Regression: compaction must trigger *inside* a long run()
        (where live-counter updates are batched), not only between
        runs — a mass-cancelled block of far-future timers may not
        linger in the heap until its scheduled time."""
        sim = Simulator()
        far = [sim.call_at(10_000.0 + i, lambda: None) for i in range(500)]
        chain = {"n": 0}

        def tick(chain):
            chain["n"] += 1
            if chain["n"] < 1000:
                sim.schedule(sim.now + 0.001, tick, chain)

        observed = {}
        sim.schedule(0.001, tick, chain)
        sim.call_at(2.0, lambda: [t.cancel() for t in far])
        sim.call_at(3.0, lambda: observed.update(heap=sim.heap_size))
        sim.run(until=5.0)
        assert chain["n"] == 1000
        assert observed["heap"] < 500  # cancelled block compacted mid-run
