"""Validation and invariants of the parameter dataclasses (Table 4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    FreeriderDegree,
    GossipParams,
    HONEST_DEGREE,
    LiftingParams,
    recommended_fanout,
)


class TestGossipParams:
    def test_defaults_are_planetlab_like(self):
        params = GossipParams()
        assert params.n == 300
        assert params.fanout == 7
        assert params.gossip_period == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=1),
            dict(fanout=0),
            dict(fanout=300),  # >= n
            dict(gossip_period=0.0),
            dict(chunk_size=0),
            dict(request_size=0),
            dict(source_fanout=0),
            dict(stream_rate_kbps=-1.0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GossipParams(**kwargs)

    def test_chunk_rate_identities(self):
        params = GossipParams(stream_rate_kbps=674.0, chunk_size=4096)
        assert params.chunks_per_second * params.chunk_interval == pytest.approx(1.0)
        assert params.periods_per_second == pytest.approx(2.0)

    def test_with_rate(self):
        params = GossipParams().with_rate(2036.0)
        assert params.stream_rate_kbps == 2036.0
        assert params.n == 300  # everything else preserved


class TestLiftingParams:
    def test_defaults_match_paper(self):
        params = LiftingParams()
        assert params.managers == 25
        assert params.eta == -9.75
        assert params.gamma == 8.95
        assert params.history_periods == 50

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(p_dcc=1.5),
            dict(managers=0),
            dict(history_periods=0),
            dict(assumed_loss_rate=-0.1),
            dict(ack_timeout=0.0),
            dict(witness_answer_delay=1.0, confirm_timeout=0.5),
            dict(expel_quorum=1.5),
            dict(gamma=-1.0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LiftingParams(**kwargs)

    def test_p_reception(self):
        assert LiftingParams(assumed_loss_rate=0.07).p_reception == pytest.approx(0.93)


class TestFreeriderDegree:
    def test_honest_constant(self):
        assert HONEST_DEGREE.bandwidth_gain == 0.0
        assert HONEST_DEGREE.effective_fanout(7) == 7

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_gain_in_unit_interval(self, d1, d2, d3):
        degree = FreeriderDegree(d1, d2, d3)
        assert 0.0 <= degree.bandwidth_gain <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=40))
    def test_effective_fanout_bounds(self, d1, fanout):
        degree = FreeriderDegree(d1, 0, 0)
        effective = degree.effective_fanout(fanout)
        assert 0 <= effective <= fanout

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_uniform_constructor(self, delta):
        degree = FreeriderDegree.uniform(delta)
        assert degree.delta1 == degree.delta2 == degree.delta3 == delta

    def test_paper_gain_examples(self):
        # §6.3.2: serving colluders 21 % of the time decreases the
        # contribution by a further 21 % — gains compose multiplicatively.
        assert FreeriderDegree(0.21, 0, 0).bandwidth_gain == pytest.approx(0.21)
        # §7.1's PlanetLab freeriders save about 26 %.
        planetlab = FreeriderDegree(1 / 7, 0.1, 0.1)
        assert planetlab.bandwidth_gain == pytest.approx(
            1 - (6 / 7) * 0.9 * 0.9, abs=1e-9
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FreeriderDegree(1.5, 0, 0)


class TestRecommendedFanout:
    def test_paper_value_at_10k(self):
        assert recommended_fanout(10_000) == 12

    @given(st.integers(min_value=2, max_value=10_000_000))
    def test_monotone_and_above_ln(self, n):
        f = recommended_fanout(n)
        assert f >= 1
        assert f >= math.log(n)  # reliability requirement of [16]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            recommended_fanout(1)
