"""Shared fixtures: small, fast deployments and canonical parameters."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import GossipParams, LiftingParams, planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster


@pytest.fixture
def rng():
    """A deterministic numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_gossip() -> GossipParams:
    """A tiny but functional protocol configuration."""
    gossip, _lifting = planetlab_params()
    return replace(gossip, n=24, fanout=4, source_fanout=4, chunk_size=2048)


@pytest.fixture
def small_lifting() -> LiftingParams:
    """LiFTinG parameters shrunk for fast tests."""
    _gossip, lifting = planetlab_params()
    return replace(lifting, managers=5, history_periods=10, min_periods_before_expel=6)


@pytest.fixture
def small_cluster_factory(small_gossip, small_lifting):
    """Build small clusters with overrides: ``factory(freerider_fraction=...)``."""

    def factory(**overrides) -> SimCluster:
        config_kwargs = dict(
            gossip=small_gossip,
            lifting=small_lifting,
            seed=42,
            loss_rate=0.03,
        )
        gossip_overrides = {}
        lifting_overrides = {}
        for key in list(overrides):
            if hasattr(small_gossip, key) and key not in ("gossip", "lifting"):
                gossip_overrides[key] = overrides.pop(key)
            elif hasattr(small_lifting, key) and key not in ("gossip", "lifting"):
                lifting_overrides[key] = overrides.pop(key)
        config_kwargs.update(overrides)
        if gossip_overrides:
            config_kwargs["gossip"] = replace(small_gossip, **gossip_overrides)
        if lifting_overrides:
            config_kwargs["lifting"] = replace(small_lifting, **lifting_overrides)
        return SimCluster(ClusterConfig(**config_kwargs))

    return factory
