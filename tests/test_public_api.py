"""The public API surface advertised in the README must exist and work."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestQuickstart:
    def test_readme_quickstart_runs(self):
        from dataclasses import replace

        from repro import ClusterConfig, SimCluster, planetlab_params

        gossip, lifting = planetlab_params()
        gossip = replace(gossip, n=30, fanout=4)
        cluster = SimCluster(
            ClusterConfig(
                gossip=gossip, lifting=lifting, freerider_fraction=0.1, seed=1
            )
        )
        cluster.run(until=5.0)
        summary = cluster.detection().summary()
        assert "detection" in summary

    def test_paper_constants_reachable_from_top_level(self):
        assert repro.expected_blame_honest(12, 4, 0.93) == pytest.approx(72.95, abs=0.01)
        assert repro.max_bias_probability(8.95, 25, 600) == pytest.approx(0.21, abs=0.01)
        assert repro.recommended_fanout(10_000) == 12

    def test_params_factories(self):
        gossip, lifting = repro.analysis_params()
        assert gossip.n == 10_000 and gossip.fanout == 12
        gossip, lifting = repro.planetlab_params()
        assert gossip.n == 300 and gossip.fanout == 7 and lifting.managers == 25
