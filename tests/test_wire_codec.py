"""The safe wire codec: schema round-trips, canonicalisation, strictness.

The codec replaced pickle on the live plane, so these tests are the
wire-format contract: every message class round-trips bit-exactly, numpy
scalars come back as plain Python values, and anything that is not a
well-formed frame — truncations, trailing bytes, unknown tags, oversized
sequences, non-canonical booleans — is rejected with a typed error, not
parsed optimistically.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import wire_codec
from repro.wire import (
    AuditResponse,
    Blame,
    HistoryPollResponse,
    Ping,
    Propose,
    WIRE_MESSAGE_CLASSES,
)

# ----------------------------------------------------------------------
# strategies compiled from the same specs the codec executes
# ----------------------------------------------------------------------

_I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
# numpy variants exercise the canonicalisation path: simulator state is
# full of np.int64 / np.float64 scalars.
_INTS = st.one_of(_I64, st.integers(-(2**31), 2**31 - 1).map(np.int64))
_FLOATS = st.one_of(
    st.floats(allow_nan=False, width=64),
    st.floats(allow_nan=False, width=64).map(np.float64),
)
_BOOLS = st.one_of(st.booleans(), st.booleans().map(np.bool_))
# 60 chars of arbitrary text stays under the 255-byte UTF-8 cap.
_STRS = st.text(max_size=60)


def _strategy_for(spec):
    kind = spec[0]
    if kind == "int":
        return _INTS
    if kind == "float":
        return _FLOATS
    if kind == "bool":
        return _BOOLS
    if kind == "str":
        return _STRS
    if kind == "seq":
        return st.lists(_strategy_for(spec[1]), max_size=6).map(tuple)
    return st.tuples(*(_strategy_for(s) for s in spec[1]))


def _message_strategy(cls):
    specs = wire_codec._SPECS[cls]
    return st.tuples(*(_strategy_for(spec) for _name, spec in specs)).map(
        lambda values: cls(*values)
    )


def _assert_canonical(value, spec):
    """Decoded values must be plain Python types, never numpy scalars."""
    kind = spec[0]
    if kind == "int":
        assert type(value) is int
    elif kind == "float":
        assert type(value) is float
    elif kind == "bool":
        assert type(value) is bool
    elif kind == "str":
        assert type(value) is str
    elif kind == "seq":
        assert type(value) is tuple
        for item in value:
            _assert_canonical(item, spec[1])
    else:
        assert type(value) is tuple
        for item, elem in zip(value, spec[1]):
            _assert_canonical(item, elem)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", WIRE_MESSAGE_CLASSES, ids=[c.__name__ for c in WIRE_MESSAGE_CLASSES]
    )
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_every_class_roundtrips_canonically(self, cls, data):
        message = data.draw(_message_strategy(cls))
        src = data.draw(_I64)
        frame = wire_codec.encode_frame(src, message)
        decoded_src, decoded = wire_codec.decode_frame(frame)
        assert decoded_src == src
        assert type(decoded) is cls
        assert decoded == message  # numpy scalars compare equal to their values
        for (name, spec) in wire_codec._SPECS[cls]:
            _assert_canonical(getattr(decoded, name), spec)

    def test_numpy_scalars_are_canonicalised(self):
        message = Blame(target=np.int64(7), value=np.float64(1.5), reason="x")
        _src, decoded = wire_codec.decode_frame(wire_codec.encode_frame(np.int64(1), message))
        assert type(decoded.target) is int
        assert type(decoded.value) is float
        assert decoded == message


class TestTagStability:
    def test_tags_are_the_frozen_tuple_order(self):
        # The wire format is exactly as frozen as this assignment:
        # reordering WIRE_MESSAGE_CLASSES is a flag-day and must show up
        # here, not in a live deployment.
        for index, cls in enumerate(WIRE_MESSAGE_CLASSES):
            assert wire_codec.tag_of(cls) == index
        assert wire_codec.supported_classes() == WIRE_MESSAGE_CLASSES

    def test_non_wire_class_rejected_at_encode(self):
        class NotWire:
            pass

        with pytest.raises(wire_codec.UnknownTypeError):
            wire_codec.encode_frame(1, NotWire())


class TestStrictDecoding:
    def frame(self, message=None, src=1):
        return wire_codec.encode_frame(src, message or Ping(seq=9, incarnation=0, updates=()))

    def test_empty_and_headerless(self):
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(b"")
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(b"\x00\x01\x02")

    def test_unknown_tag(self):
        bad = bytes([0xFF]) + self.frame()[1:]
        with pytest.raises(wire_codec.UnknownTypeError):
            wire_codec.decode_frame(bad)

    def test_truncated_body(self):
        frame = self.frame()
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(frame[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(self.frame() + b"\x00")

    def test_non_canonical_bool(self):
        frame = bytearray(
            wire_codec.encode_frame(
                1,
                HistoryPollResponse(
                    target=2, period=3, acknowledged=True, confirm_senders=()
                ),
            )
        )
        # acknowledged is the byte right after tag+src+target+period.
        offset = 1 + 8 + 8 + 8
        assert frame[offset] == 1
        frame[offset] = 2
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(bytes(frame))

    def test_oversized_sequence_count_rejected(self):
        frame = bytearray(self.frame(Ping(seq=1, incarnation=0, updates=())))
        # updates count is the trailing 2-byte field of a Ping frame.
        frame[-2:] = struct.pack("!H", wire_codec.MAX_SEQ_ITEMS + 1)
        with pytest.raises(wire_codec.OversizedFrameError):
            wire_codec.decode_frame(bytes(frame))

    def test_oversized_frame_rejected_both_directions(self):
        proposals = tuple(
            (i, tuple(range(50)), tuple(range(50))) for i in range(120)
        )
        with pytest.raises(wire_codec.OversizedFrameError):
            wire_codec.encode_frame(1, AuditResponse(proposals=proposals))
        with pytest.raises(wire_codec.OversizedFrameError):
            wire_codec.decode_frame(b"\x00" * (wire_codec.MAX_FRAME_BYTES + 1))

    def test_invalid_utf8_rejected(self):
        frame = bytearray(
            wire_codec.encode_frame(1, Blame(target=1, value=0.5, reason="ab"))
        )
        frame[-1] = 0xFF  # corrupt the last reason byte
        with pytest.raises(wire_codec.MalformedFrameError):
            wire_codec.decode_frame(bytes(frame))


class TestPeekSrc:
    def test_claimed_src_readable_from_garbage_body(self):
        frame = wire_codec.encode_frame(42, Propose(proposal_id=1, chunk_ids=(1, 2)))
        assert wire_codec.peek_src(frame) == 42
        # Still readable when the body is garbage — that is the point:
        # attribution without trusting the frame to parse.
        assert wire_codec.peek_src(frame[: wire_codec._HEADER_LEN] + b"\xff") == 42

    def test_unreadable_headers_yield_none(self):
        assert wire_codec.peek_src(b"") is None
        assert wire_codec.peek_src(b"\x00" * 5) is None
        assert wire_codec.peek_src(bytes([0xFE]) + b"\x00" * 8) is None
