"""Live-plane churn: the SWIM detector on a real asyncio deployment.

One loopback cluster (n=10) runs the same scripted crash/restart churn
the sim acceptance test uses — two honest victims down for 1 s, inside
the 2 s live suspicion window (8 periods × 0.25 s) — and the report must
show the detector working end to end: suspicions raised, refutations
observed, zero wrongful expulsions, and the membership transitions
chained into the tamper-evident audit log.
"""

import asyncio

import pytest

from repro.core.auditlog import AuditLog
from repro.membership.failure_detector import FailureDetectorParams
from repro.runtime.cluster import RuntimeCluster, RuntimeConfig
from repro.runtime.faults import FaultSchedule

DURATION = 4.0
KEY_SEED = "live-churn-test"


@pytest.fixture(scope="module")
def churn_run(tmp_path_factory):
    """One live churn deployment shared by every assertion below."""
    log_path = tmp_path_factory.mktemp("live-churn") / "audit.jsonl"
    config = RuntimeConfig(
        n=10,
        duration=DURATION,
        seed=11,
        expulsion_enabled=True,
        failure_detector=FailureDetectorParams(),
        fault_schedule=FaultSchedule.churn([1, 2], DURATION, downtime=1.0),
        audit_log_path=str(log_path),
        audit_key_seed=KEY_SEED,
    )

    async def run():
        # The wait_for is the no-hang assertion: a stuck event loop
        # fails here instead of stalling the suite.
        return await asyncio.wait_for(
            RuntimeCluster(config).run(), timeout=10 * DURATION
        )

    return asyncio.run(run()), log_path


class TestLiveChurn:
    def test_run_completes_with_throughput(self, churn_run):
        report, _path = churn_run
        assert report.chunks_emitted > 0
        assert report.delivery_ratio > 0.3

    def test_membership_stats_populated(self, churn_run):
        report, _path = churn_run
        stats = report.membership
        assert stats["crashes"] == 2
        assert stats["restarts"] == 2
        assert stats["probes_sent"] > 0

    def test_crashes_were_suspected_not_expelled(self, churn_run):
        report, _path = churn_run
        stats = report.membership
        # Loose bounds — real timers jitter — but the detector must have
        # noticed the outages and the restarts must have refuted them.
        assert stats["suspicions"] >= 1
        assert stats["refutations"] >= 1
        assert report.wrongful_expulsions == []
        assert report.expelled == []  # honest-only population

    def test_cluster_converged_after_restarts(self, churn_run):
        report, _path = churn_run
        assert report.membership["suspected_now"] == 0
        assert report.membership["records_in_quarantine"] == 0

    def test_membership_transitions_in_audit_chain(self, churn_run):
        report, path = churn_run
        assert report.audit_ok is True
        loaded = AuditLog.load(str(path), key_seed=KEY_SEED)
        assert loaded.verify_all().ok
        transitions = [
            r.data["transition"]
            for r in loaded.records
            if r.kind == "membership"
        ]
        assert "suspect" in transitions
        assert "refute" in transitions
