"""End-to-end chaos run: scripted faults against the live plane.

One real deployment (n=12 on loopback) is driven through the acceptance
fault script — a 30% targeted drop window, one partition, two node
crashes with restarts — and every robustness claim is checked on the
resulting report: the run completes, the circuit breaker opens and
recovers, ingress stays bounded, and the audit chain verifies (and
survives a flipped byte via rollback).
"""

import asyncio
import json

import pytest

from repro.core.auditlog import AuditLog
from repro.runtime.cluster import RuntimeCluster, RuntimeConfig
from repro.scenarios.builtin import default_fault_schedule

DURATION = 4.0
KEY_SEED = "chaos-test"


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One chaos deployment shared by every assertion below."""
    log_path = tmp_path_factory.mktemp("chaos") / "audit.jsonl"
    config = RuntimeConfig(
        n=12,
        duration=DURATION,
        seed=7,
        freerider_fraction=0.2,
        p_audit=0.1,
        expulsion_enabled=True,
        fault_schedule=default_fault_schedule(12, DURATION, 0.3),
        audit_log_path=str(log_path),
        audit_key_seed=KEY_SEED,
    )

    async def run():
        # The wait_for is the no-hang assertion: a stuck event loop
        # fails here instead of stalling the suite.
        return await asyncio.wait_for(
            RuntimeCluster(config).run(), timeout=10 * DURATION
        )

    return asyncio.run(run()), log_path


class TestChaosRun:
    def test_degrades_gracefully(self, chaos_run):
        report, _path = chaos_run
        assert report.chunks_emitted > 0
        # Crashes, a partition and a 30% drop window cost throughput but
        # must not collapse the stream.
        assert report.delivery_ratio > 0.3

    def test_faults_were_injected(self, chaos_run):
        report, _path = chaos_run
        assert report.faults["targeted_drops"] > 0
        assert report.faults["partition_drops"] > 0
        assert report.faults["crashed_now"] == 0  # both crashes restarted

    def test_breaker_opened_and_recovered(self, chaos_run):
        report, _path = chaos_run
        breaker = report.resilience["breaker"]
        assert breaker["opens"] >= 1
        assert breaker["half_open_probes"] >= 1
        assert breaker["closes"] >= 1

    def test_ingress_stayed_bounded(self, chaos_run):
        report, _path = chaos_run
        ingress = report.resilience["ingress"]
        assert 1 <= ingress["high_water"] <= ingress["capacity"]
        assert ingress["depth"] == 0  # drained by teardown

    def test_send_refusals_are_counted(self, chaos_run):
        report, _path = chaos_run
        # Crashed sources and open breakers refuse sends; the counter is
        # the graceful-degradation evidence (no exceptions, no hangs).
        assert report.sends_refused > 0

    def test_audit_chain_verifies(self, chaos_run):
        report, path = chaos_run
        assert report.audit_ok is True
        assert report.audit_records >= 4  # run_start, 2 crashes/restarts, snapshot
        loaded = AuditLog.load(str(path), key_seed=KEY_SEED)
        assert loaded.verify_all().ok
        kinds = [r.kind for r in loaded.records]
        assert kinds[0] == "run_start"
        assert kinds.count("fault") == 4  # two crashes + two restarts
        assert kinds[-1] == "snapshot"

    def test_flipped_byte_is_detected_and_recovered(self, chaos_run):
        _report, path = chaos_run
        tampered = path.with_name("tampered.jsonl")
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["ts"] = record["ts"] + 1.0  # the flipped byte
        lines[2] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        tampered.write_text("\n".join(lines) + "\n")

        loaded = AuditLog.load(str(tampered), key_seed=KEY_SEED)
        report = loaded.verify_all()
        assert not report.ok
        assert report.first_bad_seq == 2

        rollback = loaded.rollback()
        assert rollback.recovered
        loaded.close()
        assert AuditLog.load(str(tampered), key_seed=KEY_SEED).verify_all().ok
