"""Live load-generator smoke: a real cluster, a real stepped-rate sweep.

This is the end-to-end pin for the observability chain: driver sends
schedule-stamped frames over UDP → transport ingress hooks fire →
probe decomposes stages → cluster report carries the loadgen payload
with knee, percentiles and drop evidence.  Rates are kept far below
any plausible knee so the assertions are about plumbing, not machine
speed.
"""

import asyncio
import json
import math

from repro.loadgen import LoadProfile
from repro.loadgen.driver import LOADGEN_REPORT_SCHEMA
from repro.runtime.cluster import RuntimeCluster, RuntimeConfig


def run_cluster(profile, n=6, seed=1):
    span = profile.steps * profile.step_duration + profile.settle
    config = RuntimeConfig(
        n=n,
        duration=span + 0.5,
        seed=seed,
        loss_rate=0.0,
        load_profile=profile,
        load_target=0,
    )
    return asyncio.run(RuntimeCluster(config).run())


class TestLiveLoadgen:
    def test_sweep_report_end_to_end(self):
        profile = LoadProfile(
            start_rate=200.0, step_rate=200.0, steps=2,
            step_duration=0.5, settle=0.2, seed=0,
        )
        report = run_cluster(profile)
        load = report.load
        assert load["schema"] == LOADGEN_REPORT_SCHEMA

        # Every scheduled frame was offered; at these gentle rates the
        # overwhelming majority must complete the full pipeline.
        overall = load["overall"]
        assert overall["offered"] == 100 + 200
        assert overall["done"] >= 0.9 * overall["offered"]
        assert overall["refused"] == 0

        # All four stages carry real samples with sane magnitudes.
        for stage in ("ingress", "queue", "dispatch", "sojourn"):
            p50 = overall["stages"][stage]["p50"]
            assert not math.isnan(p50)
            assert 0.0 <= p50 < 1.0
        # Stage decomposition orders: sojourn dominates each component.
        assert overall["stages"]["sojourn"]["p99"] >= overall["stages"]["queue"]["p50"]

        # Per-phase accounting lines up with the schedule.
        phases = load["phases"]
        assert [p["offered"] for p in phases] == [100, 200]
        assert [p["offered_rate"] for p in phases] == [200.0, 400.0]

        # Unsaturated sweep: goodput tracks offered, no knee claimed.
        knee = load["knee"]
        assert knee["saturated"] is False
        assert knee["knee_rate"] is None
        assert all(r > 0.9 for r in knee["ratios"])

        # Drop evidence rides along from the resilience snapshot.
        assert load["ingress_high_water"] >= 1
        assert load["ingress_dropped"] == 0
        assert load["resilience"]["schema"] == "repro.resilience_snapshot/1"

        # Zero invariant violations while under load.
        assert report.invariants["violations"] == 0

        # The whole payload is JSON-safe (no numpy scalars, no sets).
        json.dumps(load)

    def test_loadgen_does_not_perturb_the_stream(self):
        # The measured frames must be invisible to the protocol metrics:
        # delivery ratio of the real stream stays intact under load.
        profile = LoadProfile(
            start_rate=300.0, step_rate=0.0, steps=1,
            step_duration=1.0, settle=0.2,
        )
        report = run_cluster(profile, n=8, seed=2)
        assert report.chunks_emitted > 0
        assert report.delivery_ratio > 0.85
        assert len(report.scores) == 8

    def test_no_profile_no_load_report(self):
        config = RuntimeConfig(n=6, duration=1.0, seed=3, loss_rate=0.0)
        report = asyncio.run(RuntimeCluster(config).run())
        assert report.load == {}
