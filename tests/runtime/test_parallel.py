"""The parallel experiment runner: ordering, equivalence, pickling."""

import math
import pickle
from dataclasses import replace
from functools import partial

import numpy as np
import pytest

from repro.experiments.cluster import ClusterConfig
from repro.runtime.parallel import (
    Job,
    JobResult,
    Task,
    resolve_jobs,
    run_jobs,
    run_tasks,
)


def _square(x):
    return x * x


def _affine(x, *, scale=1, offset=0):
    return scale * x + offset


def _boom(_x):
    raise ValueError("boom")


def _extract_now(cluster):
    return cluster.sim.now


def _extract_event_count(cluster):
    return cluster.sim.events_processed


def _small_config(seed=42, **overrides):
    from repro.config import planetlab_params

    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=16, fanout=4, source_fanout=4, chunk_size=4096)
    lifting = replace(lifting, managers=4)
    return ClusterConfig(gossip=gossip, lifting=lifting, seed=seed, **overrides)


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_none_negative_mean_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_jobs(0) == cores
        assert resolve_jobs(None) == cores
        assert resolve_jobs(-3) == cores


class TestRunTasks:
    def test_results_in_submission_order(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(10)]
        assert run_tasks(tasks, jobs=1) == [i * i for i in range(10)]
        assert run_tasks(tasks, jobs=4) == [i * i for i in range(10)]

    def test_kwargs_and_partial(self):
        tasks = [
            Task(fn=_affine, args=(3,), kwargs={"scale": 2, "offset": 1}),
            Task(fn=partial(_affine, scale=10), args=(4,)),
        ]
        assert run_tasks(tasks, jobs=2) == [7, 40]

    def test_serial_and_parallel_identical(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(5)]
        assert run_tasks(tasks, jobs=1) == run_tasks(tasks, jobs=3)

    def test_empty_task_list(self):
        assert run_tasks([], jobs=4) == []

    def test_exceptions_propagate_serial_and_parallel(self):
        tasks = [Task(fn=_square, args=(1,)), Task(fn=_boom, args=(0,))]
        with pytest.raises(ValueError, match="boom"):
            run_tasks(tasks, jobs=1)
        with pytest.raises(ValueError, match="boom"):
            run_tasks(tasks, jobs=2)


class TestJob:
    def test_extractor_mapping_normalised(self):
        job = Job(
            config=_small_config(),
            until=1.0,
            extractors={"now": _extract_now},
        )
        assert job.extractors == (("now", _extract_now),)

    def test_times_merges_checkpoints_and_until(self):
        job = Job(
            config=_small_config(),
            until=3.0,
            extractors=(("now", _extract_now),),
            checkpoints=(1.0, 2.0, 3.0),
        )
        assert job.times == (1.0, 2.0, 3.0)

    def test_job_pickles_with_partial_extractors(self):
        job = Job(
            config=_small_config(),
            until=2.0,
            extractors=(("f", partial(_affine, scale=2)),),
            key=("grid", 0),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key == job.key
        assert clone.until == job.until
        assert clone.config == job.config


class TestRunJobs:
    def test_worker_side_extraction_at_checkpoints(self):
        job = Job(
            config=_small_config(),
            until=2.0,
            extractors=(("now", _extract_now), ("events", _extract_event_count)),
            checkpoints=(1.0,),
            key="k",
        )
        [result] = run_jobs([job])
        assert isinstance(result, JobResult)
        assert result.key == "k"
        assert result.times == (1.0, 2.0)
        assert result.at("now", 1.0) == pytest.approx(1.0)
        assert result.get("now") == pytest.approx(2.0)
        assert result.at("events", 1.0) <= result.get("events")

    def test_parallel_results_bit_identical_to_serial(self):
        job_list = [
            Job(
                config=_small_config(seed=seed),
                until=2.0,
                extractors=(("events", _extract_event_count),),
                key=seed,
            )
            for seed in (1, 2, 3)
        ]
        serial = run_jobs(job_list, jobs=1)
        fanned = run_jobs(job_list, jobs=3)
        # Compare per result: pickling the whole list at once would let
        # the serial side memoize objects shared *across* results (e.g.
        # interned extractor-name strings), which the fanned results —
        # each deserialised from its own worker — cannot share.
        assert [pickle.dumps(r) for r in serial] == [pickle.dumps(r) for r in fanned]

    def test_job_result_pickle_round_trip(self):
        result = JobResult(
            key=("cell", 674.0, 0.5),
            times=(10.0,),
            series={"overhead": {10.0: 1.25}, "nan": {10.0: math.inf}},
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.get("overhead") == 1.25
