"""Unit tests for the live plane's resilience primitives."""

import numpy as np
import pytest

from repro.runtime.resilience import (
    BoundedIngressQueue,
    CircuitBreaker,
    DROP_OLDEST,
    REJECT,
    ResilienceConfig,
    RetryPolicy,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        rng = np.random.default_rng(3)
        for attempt in range(50):
            d = policy.delay(attempt % 3, rng)
            assert 0.05 <= d <= 0.15

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=kwargs.pop("failure_threshold", 2),
            reset_timeout=kwargs.pop("reset_timeout", 1.0),
        )
        return clock, breaker

    def test_opens_after_consecutive_failures(self):
        _clock, breaker = self.make()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.counters.opens == 1

    def test_success_resets_failure_streak(self):
        _clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_open_suppresses_until_reset_timeout(self):
        clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.counters.suppressed == 1
        clock.now = 0.5
        assert not breaker.allow()
        clock.now = 1.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.counters.half_open_probes == 1

    def test_half_open_admits_one_probe(self):
        clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        # A concurrent attempt while the probe is in flight is suppressed.
        assert not breaker.allow()
        assert breaker.state == STATE_HALF_OPEN

    def test_probe_success_closes(self):
        clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.counters.closes == 1
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.counters.opens == 2
        # The reset timer restarts from the re-open.
        clock.now = 2.5
        assert not breaker.allow()
        clock.now = 3.0
        assert breaker.allow()

    def test_counters_snapshot(self):
        _clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        snap = breaker.counters.as_dict()
        assert snap["failures"] == 2
        assert snap["opens"] == 1


class TestBoundedIngressQueue:
    def test_fifo_and_high_water(self):
        queue = BoundedIngressQueue(capacity=4)
        for i in range(3):
            assert queue.push(i)
        assert queue.high_water == 3
        assert queue.drain(2) == [0, 1]
        assert queue.drain(10) == [2]
        assert queue.high_water == 3  # peak is sticky

    def test_drop_oldest_policy(self):
        queue = BoundedIngressQueue(capacity=2, policy=DROP_OLDEST)
        assert queue.push("a")
        assert queue.push("b")
        assert queue.push("c")  # evicts "a", still accepted
        assert queue.dropped_oldest == 1
        assert queue.drain(10) == ["b", "c"]

    def test_reject_policy(self):
        queue = BoundedIngressQueue(capacity=2, policy=REJECT)
        assert queue.push("a")
        assert queue.push("b")
        assert not queue.push("c")
        assert queue.rejected == 1
        assert queue.drain(10) == ["a", "b"]

    def test_as_dict(self):
        queue = BoundedIngressQueue(capacity=8)
        queue.push(1)
        snap = queue.as_dict()
        assert snap["capacity"] == 8
        assert snap["depth"] == 1
        assert snap["accepted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedIngressQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedIngressQueue(policy="newest-wins")


class TestResilienceConfig:
    def test_defaults_are_sane(self):
        config = ResilienceConfig()
        assert config.retry.max_attempts >= 1
        assert config.breaker_failure_threshold >= 1
        assert config.ingress_capacity >= 1
        assert config.ingress_policy == DROP_OLDEST

    def test_hashable_for_frozen_configs(self):
        # RuntimeConfig is frozen; its resilience field must hash.
        hash(ResilienceConfig())
