"""Transport-level tests: registry expulsion edge cases, the send
contract, datagram error surfacing, and the persistent reliable path."""

import asyncio

from repro.runtime.resilience import ResilienceConfig, RetryPolicy, STATE_OPEN
from repro.runtime.transport import AsyncTransport, NodeRegistry, _DatagramProtocol
from repro.wire import Ping as WirePing


def Ping(value: int) -> WirePing:
    """A real wire message carrying ``value`` (the codec rejects ad-hoc
    classes, which is the point of the schema)."""
    return WirePing(seq=value, incarnation=0, updates=())


class TestNodeRegistryExpulsion:
    def test_unknown_node(self):
        registry = NodeRegistry()
        assert not registry.is_connected(9)
        assert registry.udp_address(9) is None
        assert registry.tcp_address(9) is None

    def test_expel_before_register_is_permanent(self):
        # Expulsion is a sanction on the identity, not the address:
        # re-registering endpoints must not lift it.
        registry = NodeRegistry()
        registry.expel(5)
        registry.register(5, ("127.0.0.1", 1000), ("127.0.0.1", 1001))
        assert not registry.is_connected(5)
        assert registry.udp_address(5) is None
        assert registry.tcp_address(5) is None

    def test_double_expel_is_idempotent(self):
        registry = NodeRegistry()
        registry.register(5, ("127.0.0.1", 1000), ("127.0.0.1", 1001))
        registry.expel(5)
        registry.expel(5)
        assert not registry.is_connected(5)


class TestDatagramErrors:
    def test_error_received_is_surfaced(self):
        errors = []
        protocol = _DatagramProtocol(lambda data: None, errors.append)
        exc = OSError(111, "Connection refused")
        protocol.error_received(exc)
        assert errors == [exc]

    def test_transport_counts_datagram_errors(self):
        async def scenario():
            transport = AsyncTransport(asyncio.get_running_loop(), NodeRegistry())
            transport._on_datagram_error(1, OSError(111, "Connection refused"))
            transport._on_datagram_error(1, OSError(113, "No route to host"))
            return transport.datagram_errors

        assert asyncio.run(scenario()) == 2


def fast_resilience():
    """Aggressive timeouts so breaker transitions happen within a test."""
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0),
        breaker_failure_threshold=2,
        breaker_reset_timeout=0.1,
    )


async def make_pair(node_ids=(1, 2), **transport_kwargs):
    """A transport with endpoints bound for ``node_ids``; returns the
    transport and a dict of per-node received (src, message) lists."""
    registry = NodeRegistry()
    transport = AsyncTransport(
        asyncio.get_running_loop(), registry,
        resilience=transport_kwargs.pop("resilience", fast_resilience()),
        **transport_kwargs,
    )
    received = {nid: [] for nid in node_ids}

    def make_receiver(nid):
        def receiver(src, message):
            received[nid].append((src, message))
        return receiver

    for nid in node_ids:
        await transport.open_endpoints(nid, make_receiver(nid))
    return transport, received


async def settle(condition, timeout=2.0, interval=0.01):
    """Await a condition with a deadline (loopback delivery is fast but
    asynchronous)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() >= deadline:
            return False
        await asyncio.sleep(interval)
    return True


class TestSendContract:
    def test_expelled_sender_refused_on_both_paths(self):
        async def scenario():
            transport, _received = await make_pair()
            transport.registry.expel(1)
            udp_ok = transport.send(1, 2, Ping(1), reliable=False)
            tcp_ok = transport.send(1, 2, Ping(2), reliable=True)
            refused = transport.sends_refused
            await transport.close()
            return udp_ok, tcp_ok, refused

        udp_ok, tcp_ok, refused = asyncio.run(scenario())
        assert udp_ok is False
        assert tcp_ok is False
        assert refused == 2

    def test_expelled_destination_refused(self):
        async def scenario():
            transport, _received = await make_pair()
            transport.registry.expel(2)
            results = (
                transport.send(1, 2, Ping(1), reliable=False),
                transport.send(1, 2, Ping(2), reliable=True),
            )
            refused = transport.sends_refused
            await transport.close()
            return results, refused

        results, refused = asyncio.run(scenario())
        assert results == (False, False)
        assert refused == 2

    def test_unknown_destination_refused(self):
        async def scenario():
            transport, _received = await make_pair()
            ok = transport.send(1, 99, Ping(1), reliable=False)
            refused = transport.sends_refused
            await transport.close()
            return ok, refused

        ok, refused = asyncio.run(scenario())
        assert ok is False
        assert refused == 1

    def test_crashed_source_refused(self):
        async def scenario():
            transport, _received = await make_pair()
            transport.crash_node(1)
            ok = transport.send(1, 2, Ping(1), reliable=False)
            refused = transport.sends_refused
            await transport.close()
            return ok, refused

        ok, refused = asyncio.run(scenario())
        assert ok is False
        assert refused == 1


class TestDeliveryPaths:
    def test_udp_roundtrip_through_ingress_pump(self):
        async def scenario():
            transport, received = await make_pair()
            assert transport.send(1, 2, Ping(7), reliable=False)
            ok = await settle(lambda: len(received[2]) == 1)
            await transport.close()
            return ok, received[2]

        ok, inbox = asyncio.run(scenario())
        assert ok
        assert inbox == [(1, Ping(7))]

    def test_reliable_path_is_persistent_and_framed(self):
        async def scenario():
            transport, received = await make_pair()
            for i in range(10):
                assert transport.send(1, 2, Ping(i), reliable=True)
            ok = await settle(lambda: len(received[2]) == 10)
            channels = len(transport._channels)
            counters = transport._channels[2].breaker.counters
            await transport.close()
            return ok, received[2], channels, counters

        ok, inbox, channels, counters = asyncio.run(scenario())
        assert ok
        assert [m.seq for _src, m in inbox] == list(range(10))
        assert channels == 1  # one persistent channel, not one socket per send
        assert counters.successes >= 1
        assert counters.failures == 0

    def test_ingress_high_water_reported(self):
        async def scenario():
            transport, received = await make_pair()
            for i in range(5):
                transport.send(1, 2, Ping(i), reliable=False)
            await settle(lambda: len(received[2]) == 5)
            snapshot = transport.resilience_snapshot()
            await transport.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["ingress"]["accepted"] == 5
        assert snapshot["ingress"]["high_water"] >= 1
        assert snapshot["ingress"]["depth"] == 0  # fully drained


class TestCrashRecovery:
    def test_breaker_opens_on_crash_and_recovers_on_restart(self):
        async def scenario():
            transport, received = await make_pair()
            transport.crash_node(2)

            # Fill the channel with doomed frames until the breaker opens.
            opened = False
            for i in range(20):
                transport.send(1, 2, Ping(i), reliable=True)
                await asyncio.sleep(0.02)
                channel = transport._channels.get(2)
                if channel is not None and channel.breaker.state == STATE_OPEN:
                    opened = True
                    break
            assert opened, "breaker never opened against a crashed peer"
            assert transport.frames_abandoned > 0
            assert transport.connect_failures > 0

            # While open, sends fast-fail without socket work.
            assert transport.send(1, 2, Ping(98), reliable=True) is False
            refused_while_open = transport.sends_refused

            await transport.restart_node(2)
            await asyncio.sleep(transport.resilience.breaker_reset_timeout + 0.05)

            # The next send is the half-open probe; it must deliver.
            assert transport.send(1, 2, Ping(99), reliable=True) is True
            ok = await settle(
                lambda: any(m.seq == 99 for _s, m in received[2])
            )
            counters = transport._channels[2].breaker.counters
            state = transport._channels[2].breaker.state
            await transport.close()
            return ok, counters, state, refused_while_open

        ok, counters, state, refused_while_open = asyncio.run(scenario())
        assert ok, "post-restart probe message was not delivered"
        assert counters.opens >= 1
        assert counters.half_open_probes >= 1
        assert counters.closes >= 1
        assert state == "closed"
        assert refused_while_open >= 1

    def test_restart_after_expulsion_stays_down(self):
        async def scenario():
            transport, _received = await make_pair()
            transport.crash_node(2)
            transport.registry.expel(2)
            await transport.restart_node(2)
            crashed = 2 in transport._crashed
            await transport.close()
            return crashed

        assert asyncio.run(scenario()) is True
