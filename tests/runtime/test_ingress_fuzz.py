"""Ingress fuzzing: hostile bytes against the live transport.

The wire-hardening contract: no byte sequence a peer can send — random
garbage, truncated frames, oversized length prefixes, valid headers with
corrupt bodies — may escape the ingress paths as an exception.  Every
rejection is counted, attributable garbage walks the claimed peer's
circuit breaker open, and the deployment keeps delivering valid traffic
throughout.
"""

import asyncio
import socket
import struct

import numpy as np

from repro import wire_codec
from repro.runtime.resilience import ResilienceConfig, RetryPolicy, STATE_OPEN
from repro.runtime.transport import AsyncTransport, NodeRegistry
from repro.wire import Ping


def fast_resilience():
    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0),
        breaker_failure_threshold=2,
        breaker_reset_timeout=0.1,
    )


async def make_pair(node_ids=(1, 2)):
    registry = NodeRegistry()
    transport = AsyncTransport(
        asyncio.get_running_loop(), registry, resilience=fast_resilience()
    )
    received = {nid: [] for nid in node_ids}

    def make_receiver(nid):
        def receiver(src, message):
            received[nid].append((src, message))
        return receiver

    for nid in node_ids:
        await transport.open_endpoints(nid, make_receiver(nid))
    return transport, received


async def settle(condition, timeout=2.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() >= deadline:
            return False
        await asyncio.sleep(interval)
    return True


def valid_ping(seq=0):
    return Ping(seq=seq, incarnation=0, updates=())


class TestUdpIngressFuzz:
    def test_random_garbage_is_counted_and_survivable(self):
        async def scenario():
            transport, received = await make_pair()
            addr = transport.registry.udp_address(2)
            rng = np.random.default_rng(99)
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            attempts = 60
            try:
                for _ in range(attempts):
                    length = int(rng.integers(0, 200))
                    sock.sendto(rng.bytes(length), addr)
            finally:
                sock.close()
            # All garbage is rejected at the decode boundary...
            ok = await settle(lambda: transport.decode_errors >= attempts - 5)
            # ...and the pump still delivers valid traffic afterwards.
            assert transport.send(1, 2, valid_ping(7), reliable=False)
            delivered = await settle(lambda: len(received[2]) == 1)
            errors = transport.decode_errors
            snapshot = transport.resilience_snapshot()["decode_errors"]
            await transport.close()
            return ok, delivered, errors, snapshot, received[2]

        ok, delivered, errors, snapshot, inbox = asyncio.run(scenario())
        assert ok, "decode errors were not counted"
        assert delivered, "valid traffic no longer delivered after fuzzing"
        assert inbox == [(1, valid_ping(7))]
        assert snapshot["total"] == errors > 0

    def test_attributed_garbage_opens_the_peer_breaker(self):
        async def scenario():
            transport, received = await make_pair()
            addr = transport.registry.udp_address(2)
            # A frame with a *valid* header claiming src=3 and a corrupt
            # body: attributable garbage.
            good = wire_codec.encode_frame(3, valid_ping(1))
            bad = good[: wire_codec._HEADER_LEN] + b"\xff\xff\xff"
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                for _ in range(4):
                    sock.sendto(bad, addr)
            finally:
                sock.close()
            opened = await settle(
                lambda: transport.decode_errors_by_peer.get(3, 0) >= 2
                and transport._channels.get(3) is not None
                and transport._channels[3].breaker.state == STATE_OPEN
            )
            by_peer = dict(transport.decode_errors_by_peer)
            snapshot = transport.resilience_snapshot()["decode_errors"]
            await transport.close()
            return opened, by_peer, snapshot

        opened, by_peer, snapshot = asyncio.run(scenario())
        assert opened, "breaker did not open against the babbling peer"
        assert by_peer[3] >= 2
        assert snapshot["by_peer"]["3"] == by_peer[3]

    def test_headerless_garbage_is_unattributed(self):
        async def scenario():
            transport, _received = await make_pair()
            addr = transport.registry.udp_address(2)
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                sock.sendto(b"\xfe\x01", addr)  # unknown tag, no full header
            finally:
                sock.close()
            ok = await settle(lambda: transport.decode_errors_unattributed >= 1)
            await transport.close()
            return ok

        assert asyncio.run(scenario())


class TestTcpIngressFuzz:
    def test_framed_garbage_counted_and_stream_recovers_per_frame(self):
        async def scenario():
            transport, received = await make_pair()
            addr = transport.registry.tcp_address(2)
            reader, writer = await asyncio.open_connection(*addr)
            rng = np.random.default_rng(7)
            # Interleave garbage frames with one valid frame: decode
            # failures are per-frame, not per-connection.
            for i in range(5):
                payload = rng.bytes(20)
                writer.write(struct.pack("!I", len(payload)) + payload)
            valid = wire_codec.encode_frame(1, valid_ping(42))
            writer.write(struct.pack("!I", len(valid)) + valid)
            await writer.drain()
            ok = await settle(
                lambda: transport.decode_errors >= 5 and len(received[2]) == 1
            )
            writer.close()
            await transport.close()
            return ok, received[2]

        ok, inbox = asyncio.run(scenario())
        assert ok, "garbage not counted or valid frame not delivered"
        assert inbox == [(1, valid_ping(42))]

    def test_oversized_length_prefix_kills_the_connection(self):
        async def scenario():
            transport, _received = await make_pair()
            addr = transport.registry.tcp_address(2)
            reader, writer = await asyncio.open_connection(*addr)
            writer.write(struct.pack("!I", wire_codec.MAX_FRAME_BYTES + 1))
            await writer.drain()
            counted = await settle(lambda: transport.decode_errors >= 1)
            # The server must hang up: a hostile length prefix cannot be
            # resynchronised, so the stream dies before allocation.
            eof = await asyncio.wait_for(reader.read(1), timeout=2.0)
            writer.close()
            await transport.close()
            return counted, eof

        counted, eof = asyncio.run(scenario())
        assert counted
        assert eof == b""

    def test_truncated_stream_mid_frame_is_harmless(self):
        async def scenario():
            transport, received = await make_pair()
            addr = transport.registry.tcp_address(2)
            _reader, writer = await asyncio.open_connection(*addr)
            writer.write(struct.pack("!I", 64) + b"\x00" * 10)  # then vanish
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.1)
            # The deployment is unbothered: valid traffic still flows.
            assert transport.send(1, 2, valid_ping(5), reliable=True)
            ok = await settle(lambda: len(received[2]) == 1)
            await transport.close()
            return ok

        assert asyncio.run(scenario())
