"""Integration tests for the asyncio runtime (real sockets)."""

import asyncio

import pytest

from repro.config import FreeriderDegree
from repro.runtime.cluster import RuntimeCluster, RuntimeConfig
from repro.runtime.transport import NodeRegistry


class TestNodeRegistry:
    def test_register_and_lookup(self):
        registry = NodeRegistry()
        registry.register(1, ("127.0.0.1", 1000), ("127.0.0.1", 2000))
        assert registry.is_connected(1)
        assert registry.udp_address(1) == ("127.0.0.1", 1000)
        assert registry.tcp_address(1) == ("127.0.0.1", 2000)

    def test_expel(self):
        registry = NodeRegistry()
        registry.register(1, ("127.0.0.1", 1000), ("127.0.0.1", 2000))
        registry.expel(1)
        assert not registry.is_connected(1)
        assert registry.udp_address(1) is None

    def test_unknown_node(self):
        registry = NodeRegistry()
        assert not registry.is_connected(5)
        assert registry.udp_address(5) is None


class TestLiveCluster:
    def test_honest_cluster_disseminates(self):
        config = RuntimeConfig(n=8, duration=3.0, loss_rate=0.0, seed=1)
        report = asyncio.run(RuntimeCluster(config).run())
        assert report.chunks_emitted > 20
        assert report.delivery_ratio > 0.85
        assert report.datagrams_sent > 0
        assert report.datagrams_dropped == 0

    def test_synthetic_loss_applied(self):
        config = RuntimeConfig(n=8, duration=2.0, loss_rate=0.1, seed=2)
        report = asyncio.run(RuntimeCluster(config).run())
        assert report.datagrams_dropped > 0
        drop_rate = report.datagrams_dropped / report.datagrams_sent
        assert drop_rate == pytest.approx(0.1, abs=0.05)

    def test_freeriders_scored_below_honest(self):
        config = RuntimeConfig(
            n=10,
            duration=4.0,
            loss_rate=0.0,
            seed=3,
            freerider_fraction=0.2,
            freerider_degree=FreeriderDegree(0.25, 0.4, 0.4),
        )
        report = asyncio.run(RuntimeCluster(config).run())
        honest = [s for n, s in report.scores.items() if n not in report.freerider_ids]
        freeriders = [s for n, s in report.scores.items() if n in report.freerider_ids]
        assert freeriders and honest
        assert sum(freeriders) / len(freeriders) < sum(honest) / len(honest)

    def test_scores_present_for_all_nodes(self):
        config = RuntimeConfig(n=8, duration=2.0, loss_rate=0.0, seed=4)
        report = asyncio.run(RuntimeCluster(config).run())
        assert len(report.scores) == 8
