"""Tests for the scripted fault-injection plane (sim + schedule)."""

import numpy as np
import pytest

from repro.runtime.faults import FaultEvent, FaultPlane, FaultSchedule


class Serve:
    pass


class Propose:
    pass


def plane_for(*events, seed=0):
    return FaultPlane(
        FaultSchedule(events=tuple(events)), rng=np.random.default_rng(seed)
    )


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", at=0.0)

    def test_window_must_not_invert(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="drop", at=2.0, until=1.0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="drop", at=0.0, rate=1.5)

    def test_crash_needs_nodes(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", at=0.0)

    def test_partition_needs_both_groups(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="partition", at=0.0, group_a=(1,))


class TestFaultSchedule:
    def test_from_dicts_sorts_and_tuples(self):
        schedule = FaultSchedule.from_dicts(
            [
                {"kind": "restart", "at": 2.0, "nodes": [3]},
                {"kind": "crash", "at": 1.0, "nodes": [3]},
                {"kind": "drop", "at": 0.5, "until": 1.5, "classes": ["Serve"]},
            ]
        )
        assert [e.at for e in schedule.events] == [0.5, 1.0, 2.0]
        assert schedule.events[0].classes == ("Serve",)
        assert schedule.events[1].nodes == (3,)

    def test_from_dicts_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultSchedule.from_dicts([{"kind": "drop", "at": 0.0, "probability": 0.5}])

    def test_event_partitioning(self):
        schedule = FaultSchedule.from_dicts(
            [
                {"kind": "crash", "at": 1.0, "nodes": [0]},
                {"kind": "restart", "at": 2.0, "nodes": [0]},
                {"kind": "slow", "at": 0.0, "until": 3.0, "extra_delay": 0.1},
            ]
        )
        assert [e.kind for e in schedule.lifecycle_events()] == ["crash", "restart"]
        assert [e.kind for e in schedule.window_events()] == ["slow"]


class TestFaultPlaneOnSend:
    def test_symmetric_partition(self):
        plane = plane_for(
            FaultEvent(kind="partition", at=1.0, until=2.0, group_a=(0, 1), group_b=(2, 3))
        )
        assert plane.on_send(1.5, 0, 2, Serve()) == FaultPlane.DROP
        assert plane.on_send(1.5, 3, 1, Serve()) == FaultPlane.DROP  # reverse severed too
        assert plane.on_send(1.5, 0, 1, Serve()) == 0.0  # same side passes
        assert plane.on_send(0.5, 0, 2, Serve()) == 0.0  # before the window
        assert plane.on_send(2.0, 0, 2, Serve()) == 0.0  # window is half-open
        assert plane.counters()["partition_drops"] == 2

    def test_asymmetric_partition(self):
        plane = plane_for(
            FaultEvent(
                kind="partition", at=0.0, until=5.0,
                group_a=(0,), group_b=(1,), symmetric=False,
            )
        )
        assert plane.on_send(1.0, 0, 1, Serve()) == FaultPlane.DROP
        assert plane.on_send(1.0, 1, 0, Serve()) == 0.0  # b -> a still flows

    def test_class_targeted_drop(self):
        plane = plane_for(
            FaultEvent(kind="drop", at=0.0, until=10.0, classes=("Serve",), rate=1.0)
        )
        assert plane.on_send(1.0, 0, 1, Serve()) == FaultPlane.DROP
        assert plane.on_send(1.0, 0, 1, Propose()) == 0.0
        assert plane.counters()["targeted_drops"] == 1

    def test_endpoint_targeted_drop(self):
        plane = plane_for(
            FaultEvent(kind="drop", at=0.0, until=10.0, src_nodes=(5,), dst_nodes=(6,))
        )
        assert plane.on_send(1.0, 5, 6, Serve()) == FaultPlane.DROP
        assert plane.on_send(1.0, 5, 7, Serve()) == 0.0
        assert plane.on_send(1.0, 4, 6, Serve()) == 0.0

    def test_probabilistic_drop_is_seed_deterministic(self):
        def run(seed):
            plane = plane_for(
                FaultEvent(kind="drop", at=0.0, until=10.0, rate=0.3), seed=seed
            )
            return [plane.on_send(1.0, 0, 1, Serve()) for _ in range(200)]

        fates = run(7)
        assert fates == run(7)  # same stream, same fates
        dropped = fates.count(FaultPlane.DROP)
        assert 30 < dropped < 90  # ~60 expected at rate 0.3

    def test_slow_links_stack(self):
        plane = plane_for(
            FaultEvent(kind="slow", at=0.0, until=10.0, extra_delay=0.1),
            FaultEvent(kind="slow", at=0.0, until=10.0, extra_delay=0.05, src_nodes=(0,)),
        )
        assert plane.on_send(1.0, 0, 1, Serve()) == pytest.approx(0.15)
        assert plane.on_send(1.0, 2, 1, Serve()) == pytest.approx(0.1)
        assert plane.counters()["slowed_messages"] == 2

    def test_partition_checked_before_drops(self):
        plane = plane_for(
            FaultEvent(kind="partition", at=0.0, until=10.0, group_a=(0,), group_b=(1,)),
            FaultEvent(kind="drop", at=0.0, until=10.0, rate=1.0),
        )
        plane.on_send(1.0, 0, 1, Serve())
        counters = plane.counters()
        assert counters["partition_drops"] == 1
        assert counters["targeted_drops"] == 0

    def test_lifecycle_bookkeeping(self):
        plane = plane_for(FaultEvent(kind="crash", at=0.0, nodes=(3,)))
        plane.mark_crashed(3)
        assert plane.counters()["crashed_now"] == 1
        plane.mark_restarted(3)
        assert plane.counters()["crashed_now"] == 0


class TestSimClusterFaults:
    def schedule(self):
        return FaultSchedule.from_dicts(
            [
                {"kind": "drop", "at": 0.5, "until": 2.0, "rate": 0.3},
                {"kind": "crash", "at": 0.8, "nodes": [23]},
                {"kind": "restart", "at": 1.6, "nodes": [23]},
            ]
        )

    def test_crash_restart_map_to_leave_rejoin(self, small_cluster_factory):
        cluster = small_cluster_factory()
        plane = cluster.attach_faults(self.schedule())
        cluster.run(until=1.2)
        assert not cluster.membership.contains(23)  # crashed mid-window
        assert plane.counters()["crashed_now"] == 1
        cluster.run(until=2.5)
        assert cluster.membership.contains(23)  # restarted
        assert plane.counters()["crashed_now"] == 0
        assert plane.counters()["targeted_drops"] > 0

    def test_fault_drops_count_as_network_loss(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        plane = cluster.attach_faults(
            FaultSchedule.from_dicts([{"kind": "drop", "at": 0.0, "until": 3.0}])
        )
        cluster.run(until=1.0)
        drops = plane.counters()["targeted_drops"]
        assert drops > 0
        assert cluster.trace.lost_count() >= drops

    def test_faulted_run_is_deterministic(self, small_cluster_factory):
        def run_once():
            cluster = small_cluster_factory()
            plane = cluster.attach_faults(self.schedule())
            cluster.run(until=2.5)
            return plane.counters(), cluster.scores()

        first = run_once()
        second = run_once()
        assert first == second
