"""A controllable fake host for unit-testing the LiFTinG components."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import planetlab_params
from repro.sim.engine import Simulator


class FakeHost:
    """Implements the host facade the engine/auditor expect, recording
    every outbound action for assertions."""

    def __init__(self, gossip, lifting, node_id=0):
        self.node_id = node_id
        self.sim = Simulator()
        self.gossip = gossip
        self.lifting = lifting
        self.sent = []  # (dst, message, reliable)
        self.blames = []  # (target, value, reason)
        self.expired = []  # (proposer, chunk_ids)
        self.verdicts = []  # (target, result)
        self.forced_random = None
        self._rng = np.random.default_rng(0)

    # --- facade -------------------------------------------------------
    def clock(self):
        return self.sim.now

    def call_later(self, delay, callback, *args):
        return self.sim.call_later(delay, callback, *args)

    def random(self):
        if self.forced_random is not None:
            return self.forced_random
        return float(self._rng.random())

    def send(self, dst, message, reliable=False):
        self.sent.append((dst, message, reliable))
        return True

    def send_blame(self, target, value, reason):
        self.blames.append((target, value, reason))

    def on_request_expired(self, proposer, chunk_ids):
        self.expired.append((proposer, set(chunk_ids)))

    def on_audit_verdict(self, target, result):
        self.verdicts.append((target, result))

    # --- helpers ------------------------------------------------------
    def blame_total(self, target):
        return sum(v for t, v, _r in self.blames if t == target)

    def sent_to(self, dst, kind=None):
        return [
            m
            for d, m, _r in self.sent
            if d == dst and (kind is None or type(m).__name__ == kind)
        ]


@pytest.fixture
def fake_host():
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=30, fanout=4)
    # γ is calibrated against the window size: the full window here is
    # n_h·f = 32 entries (max entropy log2 32 = 5 bits), so the audit
    # threshold sits a little below that — the same headroom the paper's
    # 8.95 leaves under log2(600) = 9.23.
    lifting = replace(lifting, managers=3, history_periods=8, gamma=4.5)
    return FakeHost(gossip, lifting)
