"""Unit tests for the struct-of-arrays substrate (dense ids + pooled rows).

The registry/pool pair backs every hot per-node collection (fresh map,
pending set, blame outbox, pending acks), so the invariants pinned here
— append order preserved, recycled slots zeroed, free-list reuse, counts
exact under partial removal — are what the byte-identical golden runs
and the no-leak-across-incarnations churn property rest on.
"""

import numpy as np
import pytest

from repro.core.soa import DenseIdRegistry, ProtocolStatePool, SlotRows


class TestDenseIdRegistry:
    def test_register_assigns_contiguous_slots(self):
        reg = DenseIdRegistry()
        assert [reg.register(nid) for nid in (17, 3, 99)] == [0, 1, 2]
        assert reg.capacity == 3
        assert len(reg) == 3
        assert reg.slot_of(99) == 2
        assert reg.node_at(1) == 3
        assert 17 in reg and 4 not in reg

    def test_duplicate_registration_rejected(self):
        reg = DenseIdRegistry()
        reg.register(7)
        with pytest.raises(ValueError):
            reg.register(7)

    def test_remap_recycles_slot_lifo(self):
        reg = DenseIdRegistry()
        for nid in (10, 11, 12):
            reg.register(nid)
        old = reg.slot_of(11)
        new = reg.remap(11)
        # The retired slot is the first free one, so the *same* node gets
        # it back — but only after a full retire/assign cycle.
        assert new == old
        assert reg.capacity == 3  # no growth on recycle
        assert reg.node_at(new) == 11

    def test_remap_zeroes_attached_pools(self):
        reg = DenseIdRegistry()
        pool = ProtocolStatePool(capacity=1)
        reg.attach(pool)
        slot = reg.register(5)
        pool.fresh.append(slot, 42, 7)
        pool.pending.append(slot, 9)
        pool.blame.append(slot, 3, 1.5)
        new_slot = reg.remap(5)
        assert new_slot == slot
        assert pool.fresh.count(new_slot) == 0
        assert pool.pending.count(new_slot) == 0
        assert pool.blame.count(new_slot) == 0
        assert not pool.fresh.col0[new_slot].any()
        assert not pool.blame.col1[new_slot].any()

    def test_attached_pools_follow_capacity_growth(self):
        reg = DenseIdRegistry()
        pool = ProtocolStatePool(capacity=1)
        reg.attach(pool)
        slots = [reg.register(nid) for nid in range(10)]
        for slot in slots:
            pool.pending.append(slot, slot + 100)
        assert [pool.pending.values(s) for s in slots] == [[s + 100] for s in slots]

    def test_graceful_ids_keep_their_slot(self):
        # Only remap churns a slot; plain registration order is stable.
        reg = DenseIdRegistry()
        reg.register(0)
        reg.register(1)
        reg.remap(0)
        assert reg.slot_of(1) == 1


class TestSlotRows:
    def test_take_preserves_append_order_and_clears(self):
        rows = SlotRows(np.int64, np.int64, capacity=2, width=4)
        for chunk, origin in ((5, 50), (3, 30), (9, 90)):
            rows.append(0, chunk, origin)
        assert rows.take(0) == ([5, 3, 9], [50, 30, 90])
        assert rows.count(0) == 0
        assert rows.take(0) == ([], [])

    def test_single_column_take(self):
        rows = SlotRows(np.int64, capacity=1, width=2)
        rows.append(0, 4)
        rows.append(0, 8)
        assert rows.take(0) == [4, 8]

    def test_width_growth_preserves_rows(self):
        rows = SlotRows(np.int64, np.float64, capacity=1, width=2)
        for i in range(9):  # forces two doublings
            rows.append(0, i, float(i) / 2)
        assert rows.take(0) == (list(range(9)), [i / 2 for i in range(9)])

    def test_capacity_growth_preserves_rows(self):
        rows = SlotRows(np.int64, capacity=1, width=4)
        rows.append(0, 11)
        rows.ensure_capacity(9)
        rows.append(5, 55)
        assert rows.values(0) == [11]
        assert rows.values(5) == [55]

    def test_add_unique_dedups(self):
        rows = SlotRows(np.int64, capacity=1, width=4)
        assert rows.add_unique(0, 7)
        assert not rows.add_unique(0, 7)
        assert rows.add_unique(0, 8)
        assert rows.values(0) == [7, 8]

    def test_discard_swaps_tail_and_zeroes(self):
        rows = SlotRows(np.int64, np.int64, capacity=1, width=4)
        for v in (1, 2, 3):
            rows.append(0, v, v * 10)
        assert rows.discard(0, 1)
        # Swap-remove: the tail row replaced the removed one, and the
        # vacated tail cell is zeroed (recycled columns must start clean).
        assert rows.values(0) == [3, 2]
        assert rows.col0[0, 2] == 0 and rows.col1[0, 2] == 0
        assert not rows.discard(0, 99)

    def test_contains(self):
        rows = SlotRows(np.int64, capacity=1, width=2)
        rows.append(0, 6)
        assert rows.contains(0, 6)
        assert not rows.contains(0, 7)

    def test_zero_is_a_storable_value(self):
        # Cleared cells are 0 too, so only the count may decide liveness.
        rows = SlotRows(np.int64, capacity=1, width=2)
        rows.append(0, 0)
        assert rows.contains(0, 0)
        assert rows.values(0) == [0]
        assert rows.discard(0, 0)
        assert not rows.contains(0, 0)

    def test_slots_are_independent(self):
        rows = SlotRows(np.int64, capacity=4, width=2)
        rows.append(1, 10)
        rows.append(2, 20)
        rows.clear_slot(1)
        assert rows.values(1) == []
        assert rows.values(2) == [20]
