"""Tests for the HMAC-chained audit log: chaining, tamper detection,
rollback recovery, rollover, persistence, and the CLI verb."""

import json
from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.core.auditlog import (
    AuditLog,
    AuditRecord,
    ROLLOVER_KIND,
    SNAPSHOT_KIND,
    derive_key,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def build_log(path=None, key_seed="test-seed"):
    log = AuditLog(key_seed=key_seed, path=path, clock=FakeClock())
    log.append("run_start", n=12, seed=7)
    log.append("expel_vote", voter=1, target=9, score=-3.5)
    log.snapshot({"expelled": [9], "delivery_ratio": 0.91})
    log.append("expulsion", manager=1, target=9, reason="score")
    return log


class TestChaining:
    def test_clean_chain_verifies(self):
        log = build_log()
        report = log.verify_all()
        assert report.ok
        assert report.length == 4
        assert report.valid_prefix == 4
        assert report.first_bad_seq is None
        assert "chain ok: 4 records" in report.summary()

    def test_tags_are_key_and_content_deterministic(self):
        assert [r.tag for r in build_log().records] == [
            r.tag for r in build_log().records
        ]
        different_key = build_log(key_seed="other-seed")
        assert build_log().records[0].tag != different_key.records[0].tag

    def test_empty_chain_is_ok(self):
        log = AuditLog(key_seed="x", clock=FakeClock())
        assert log.verify_all().ok
        assert log.verify_all().length == 0

    def test_derive_key_is_stable(self):
        assert derive_key("a") == derive_key("a")
        assert derive_key("a") != derive_key("b")
        assert len(derive_key("a")) == 32


class TestTamperDetection:
    def test_mutated_data_breaks_chain_from_that_point(self):
        log = build_log()
        forged = replace(log.records[1], data={"voter": 1, "target": 4, "score": -3.5})
        log.records[1] = forged
        report = log.verify_all()
        assert not report.ok
        assert report.valid_prefix == 1
        assert report.first_bad_seq == 1
        assert "TAMPERED" in report.summary()

    def test_forged_tag_detected(self):
        log = build_log()
        log.records[3] = replace(log.records[3], tag="ab" * 32)
        report = log.verify_all()
        assert not report.ok
        assert report.valid_prefix == 3

    def test_deleted_record_detected(self):
        log = build_log()
        del log.records[1]  # seqs now skip: 0, 2, 3
        assert not log.verify_all().ok

    def test_truncation_of_head_detected(self):
        # Dropping the *first* record re-anchors the chain off-genesis.
        log = build_log()
        del log.records[0]
        report = log.verify_all()
        assert not report.ok
        assert report.valid_prefix == 0


class TestRollback:
    def test_rollback_on_clean_chain_is_noop(self):
        log = build_log()
        report = log.rollback()
        assert not report.recovered
        assert report.kept == 4
        assert report.dropped == 0
        assert "nothing to recover" in report.summary()

    def test_rollback_to_last_snapshot(self):
        log = build_log()
        log.append("expulsion", manager=2, target=9, reason="audit")
        log.records[4] = replace(log.records[4], tag="00" * 32)
        report = log.rollback()
        assert report.recovered
        assert report.kept == 3  # up to and including the snapshot
        assert report.dropped == 2
        assert report.snapshot == {"expelled": [9], "delivery_ratio": 0.91}
        assert log.records[-1].kind == SNAPSHOT_KIND
        assert log.verify_all().ok

    def test_rollback_without_snapshot_keeps_valid_prefix(self):
        log = AuditLog(key_seed="x", clock=FakeClock())
        log.append("a", v=1)
        log.append("b", v=2)
        log.records[1] = replace(log.records[1], tag="00" * 32)
        report = log.rollback()
        assert report.recovered
        assert report.kept == 1
        assert report.snapshot is None
        assert log.verify_all().ok

    def test_appends_continue_after_rollback(self):
        log = build_log()
        log.records[3] = replace(log.records[3], tag="00" * 32)
        log.rollback()
        log.append("expulsion", manager=2, target=9, reason="score")
        assert log.verify_all().ok


class TestRollover:
    def test_archive_verifies_standalone_and_seal_links(self, tmp_path):
        archive = tmp_path / "segment-0.jsonl"
        log = build_log()
        head = log.records[-1].tag
        archived_count, seal = log.rollover(str(archive))
        assert archived_count == 4
        assert seal.kind == ROLLOVER_KIND
        assert seal.data == {"prev_head": head, "archived": 4}
        assert log.verify_all().ok  # new segment verifies from genesis
        old = AuditLog.load(str(archive), key_seed="test-seed")
        assert old.verify_all().ok  # so does the archived one


class TestPersistence:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = build_log(path=str(path))
        log.close()
        loaded = AuditLog.load(str(path), key_seed="test-seed")
        assert loaded.records == log.records
        assert loaded.verify_all().ok

    def test_wrong_key_fails_verification(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        build_log(path=str(path)).close()
        loaded = AuditLog.load(str(path), key_seed="not-the-key")
        assert not loaded.verify_all().ok

    def test_flipped_byte_on_disk_detected_and_recovered(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        build_log(path=str(path)).close()
        lines = path.read_text().splitlines()
        record = json.loads(lines[3])
        record["data"]["target"] = 5  # the flipped byte
        lines[3] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")

        loaded = AuditLog.load(str(path), key_seed="test-seed")
        report = loaded.verify_all()
        assert not report.ok
        assert report.first_bad_seq == 3

        rollback = loaded.rollback()
        assert rollback.recovered
        assert rollback.snapshot is not None
        loaded.close()
        # The mirror was rewritten: a fresh load now verifies.
        assert AuditLog.load(str(path), key_seed="test-seed").verify_all().ok


class TestCliAuditVerify:
    def test_clean_chain_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        build_log(path=str(path)).close()
        code = cli_main(["audit-verify", str(path), "--key-seed", "test-seed"])
        assert code == 0
        assert "chain ok" in capsys.readouterr().out

    def test_tampered_chain_exits_one(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        build_log(path=str(path)).close()
        text = path.read_text()
        path.write_text(text.replace('"target":9', '"target":5', 1))
        code = cli_main(["audit-verify", str(path), "--key-seed", "test-seed"])
        assert code == 1
        assert "TAMPERED" in capsys.readouterr().out

    def test_recover_flag_rolls_back_and_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "audit.jsonl"
        build_log(path=str(path)).close()
        text = path.read_text()
        path.write_text(text.replace('"reason":"score"', '"reason":"xxxxx"', 1))
        code = cli_main(
            ["audit-verify", str(path), "--key-seed", "test-seed", "--recover"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered" in out
        assert AuditLog.load(str(path), key_seed="test-seed").verify_all().ok

    def test_missing_file_exits_two(self, tmp_path, capsys):
        code = cli_main(["audit-verify", str(tmp_path / "absent.jsonl")])
        assert code == 2
