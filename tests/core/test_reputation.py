"""Tests for the manager-based reputation substrate (§5.1, §6.2)."""

from dataclasses import replace

import pytest

from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import planetlab_params
from repro.core.reputation import (
    ManagerAssignment,
    ReputationManager,
    ScoreBoard,
    compensation_per_period,
)


@pytest.fixture
def params():
    gossip, lifting = planetlab_params()
    return replace(gossip, n=20), replace(
        lifting, managers=4, min_periods_before_expel=5, expel_quorum=0.5
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestManagerAssignment:
    def test_each_node_gets_m_managers(self):
        assignment = ManagerAssignment(range(30), managers=5, seed=1)
        for node in range(30):
            managers = assignment.managers_of(node)
            assert len(managers) == 5
            assert len(set(managers)) == 5

    def test_never_own_manager(self):
        assignment = ManagerAssignment(range(30), managers=5, seed=1)
        for node in range(30):
            assert node not in assignment.managers_of(node)

    def test_deterministic_from_seed(self):
        a = ManagerAssignment(range(30), 5, seed=9)
        b = ManagerAssignment(range(30), 5, seed=9)
        assert all(a.managers_of(n) == b.managers_of(n) for n in range(30))
        c = ManagerAssignment(range(30), 5, seed=10)
        assert any(a.managers_of(n) != c.managers_of(n) for n in range(30))

    def test_reverse_index(self):
        assignment = ManagerAssignment(range(20), 4, seed=2)
        for node in range(20):
            for manager in assignment.managers_of(node):
                assert node in assignment.managed_by(manager)
                assert assignment.is_manager_of(manager, node)

    def test_managers_clamped_to_population(self):
        assignment = ManagerAssignment(range(4), managers=10, seed=0)
        assert assignment.managers_per_node == 3

    def test_unknown_node_empty(self):
        assignment = ManagerAssignment(range(4), 2, seed=0)
        assert assignment.managers_of(99) == ()


class TestCompensation:
    def test_matches_closed_form(self, params):
        gossip, lifting = params
        expected = expected_blame_honest(
            gossip.fanout, gossip.request_size, lifting.p_reception, lifting.p_dcc
        )
        assert compensation_per_period(gossip, lifting) == pytest.approx(expected)

    def test_paper_value_at_analysis_params(self):
        from repro.config import analysis_params

        gossip, lifting = analysis_params()
        assert compensation_per_period(gossip, lifting) == pytest.approx(72.95, abs=0.01)


def make_manager(params, owner, clock, compensation=None):
    gossip, lifting = params
    assignment = ManagerAssignment(range(20), lifting.managers, seed=3)
    manager = ReputationManager(
        owner=owner,
        assignment=assignment,
        gossip=gossip,
        lifting=lifting,
        now=clock,
        compensation=compensation,
    )
    return manager, assignment


class TestScoring:
    def test_unmanaged_target_returns_none(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, owner=0, clock=clock)
        outsider = next(
            n for n in range(20) if not assignment.is_manager_of(0, n)
        )
        assert manager.normalized_score(outsider) is None

    def test_score_is_compensation_minus_rate(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, 0, clock, compensation=10.0)
        target = assignment.managed_by(0)[0]
        clock.now = 5.0  # 10 periods at T_g = 0.5
        manager.on_blame(target, 40.0)
        assert manager.normalized_score(target) == pytest.approx(10.0 - 40.0 / 10.0)

    def test_honest_blame_rate_scores_zero(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, 0, clock, compensation=16.0)
        target = assignment.managed_by(0)[0]
        clock.now = 10.0  # 20 periods
        manager.on_blame(target, 16.0 * 20)
        assert manager.normalized_score(target) == pytest.approx(0.0)

    def test_negative_blame_is_credit(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, 0, clock, compensation=0.0)
        target = assignment.managed_by(0)[0]
        clock.now = 1.0
        manager.on_blame(target, 10.0)
        manager.on_blame(target, -10.0)
        assert manager.normalized_score(target) == pytest.approx(0.0)

    def test_blame_for_unmanaged_dropped(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, 0, clock)
        outsider = next(n for n in range(20) if not assignment.is_manager_of(0, n))
        manager.on_blame(outsider, 100.0)  # silently ignored
        assert manager.normalized_score(outsider) is None


class TestExpulsionVoting:
    def _setup(self, params):
        clock = FakeClock()
        manager, assignment = make_manager(params, 0, clock, compensation=0.0)
        target = assignment.managed_by(0)[0]
        return clock, manager, assignment, target

    def test_no_vote_during_grace_period(self, params):
        clock, manager, _assignment, target = self._setup(params)
        clock.now = 1.0  # 2 periods < min_periods_before_expel=5
        manager.on_blame(target, 1000.0)
        assert manager.expulsion_candidates() == []

    def test_vote_after_grace_when_below_eta(self, params):
        clock, manager, _assignment, target = self._setup(params)
        clock.now = 5.0  # 10 periods
        manager.on_blame(target, 1000.0)  # score = -100 < -9.75
        assert manager.expulsion_candidates() == [target]

    def test_votes_only_once(self, params):
        clock, manager, _assignment, target = self._setup(params)
        clock.now = 5.0
        manager.on_blame(target, 1000.0)
        assert manager.expulsion_candidates() == [target]
        assert manager.expulsion_candidates() == []

    def test_quorum(self, params):
        clock, manager, _assignment, target = self._setup(params)
        # managers=4, quorum=0.5 -> 2 votes needed.
        assert manager.on_expel_vote(7, target) is False
        assert manager.on_expel_vote(8, target) is True
        # Further votes after expulsion don't re-trigger.
        assert manager.on_expel_vote(9, target) is False

    def test_duplicate_votes_not_counted(self, params):
        clock, manager, _assignment, target = self._setup(params)
        assert manager.on_expel_vote(7, target) is False
        assert manager.on_expel_vote(7, target) is False

    def test_mark_expelled_stops_candidates(self, params):
        clock, manager, _assignment, target = self._setup(params)
        clock.now = 5.0
        manager.on_blame(target, 1000.0)
        manager.mark_expelled(target)
        assert manager.expulsion_candidates() == []


class TestScoreBoard:
    def test_min_vote(self, params):
        gossip, lifting = params
        clock = FakeClock()
        assignment = ManagerAssignment(range(20), lifting.managers, seed=3)
        target = 5
        managers = {}
        for i, manager_id in enumerate(assignment.managers_of(target)):
            manager = ReputationManager(
                owner=manager_id,
                assignment=assignment,
                gossip=gossip,
                lifting=lifting,
                now=clock,
                compensation=0.0,
            )
            managers[manager_id] = manager
        clock.now = 1.0  # 2 periods
        # One manager received more blames (e.g. others' copies lost).
        blame_values = [2.0, 2.0, 8.0, 2.0]
        for value, manager in zip(blame_values, managers.values()):
            manager.on_blame(target, value)
        board = ScoreBoard(managers)
        assert board.score(target, assignment) == pytest.approx(-8.0 / 2.0)

    def test_missing_managers_skipped(self, params):
        gossip, lifting = params
        assignment = ManagerAssignment(range(20), lifting.managers, seed=3)
        board = ScoreBoard({})
        assert board.score(5, assignment) is None
        assert board.scores([5, 6], assignment) == {}

    def _population(self, params, clock, hosts=range(20)):
        gossip, lifting = params
        assignment = ManagerAssignment(range(20), lifting.managers, seed=3)
        managers = {
            owner: ReputationManager(
                owner=owner,
                assignment=assignment,
                gossip=gossip,
                lifting=lifting,
                now=clock,
            )
            for owner in hosts
        }
        return managers, assignment

    def test_vectorised_scores_bit_identical_to_scalar(self, params):
        """The numpy one-pass read must equal min-vote per node exactly."""
        clock = FakeClock()
        managers, assignment = self._population(params, clock)
        for i, manager in enumerate(managers.values()):
            for j, target in enumerate(assignment.managed_by(manager.owner)):
                manager.on_blame(target, 1.0 + 0.37 * ((i * 7 + j) % 11))
        clock.now = 1.7
        board = ScoreBoard(managers)
        vectorised = board.scores(range(20), assignment)
        scalar = {
            target: board.score(target, assignment)
            for target in range(20)
            if board.score(target, assignment) is not None
        }
        assert vectorised == scalar  # exact float equality, not approx

    def test_cached_layout_sees_new_blames_and_time(self, params):
        clock = FakeClock()
        managers, assignment = self._population(params, clock)
        board = ScoreBoard(managers)
        clock.now = 1.0
        first = board.scores(range(20), assignment)
        for manager in managers.values():
            for target in assignment.managed_by(manager.owner):
                manager.on_blame(target, 5.0)
        clock.now = 3.0
        second = board.scores(range(20), assignment)
        assert first != second
        scalar = {t: board.score(t, assignment) for t in range(20)}
        assert second == {t: v for t, v in scalar.items() if v is not None}

    def test_vectorised_scores_with_partial_manager_population(self, params):
        """Unreachable managers are skipped, exactly like the scalar path."""
        clock = FakeClock()
        managers, assignment = self._population(params, clock, hosts=range(0, 20, 2))
        clock.now = 2.0
        board = ScoreBoard(managers)
        vectorised = board.scores(range(20), assignment)
        scalar = {
            target: board.score(target, assignment)
            for target in range(20)
            if board.score(target, assignment) is not None
        }
        assert vectorised == scalar
        assert set(vectorised) == set(scalar)


class TestBatchedBlameApplication:
    """The per-period batch paths must match per-event application."""

    @staticmethod
    def _build(params, seed=3):
        gossip, lifting = params
        assignment = ManagerAssignment(range(gossip.n), lifting.managers, seed=seed)
        clock = FakeClock()
        managers = {
            node: ReputationManager(node, assignment, gossip, lifting, now=clock)
            for node in range(gossip.n)
        }
        return assignment, managers, clock

    def test_on_blame_batch_matches_per_event(self, params):
        assignment, managers, clock = self._build(params)
        clock.now = 40.0
        manager = managers[assignment.managers_of(5)[0]]
        twin = managers[assignment.managers_of(5)[1]]
        pairs = [(5, 3.0), (5, -1.5), (99, 7.0), (5, 0.25)]  # 99: not managed
        manager.on_blame_batch([t for t, _ in pairs], [v for _, v in pairs])
        for target, value in pairs:
            twin.on_blame(target, value)
        rec_a = manager.records[5]
        rec_b = twin.records[5]
        assert rec_a.blame_total == rec_b.blame_total  # bit-identical
        assert rec_a.blame_events == rec_b.blame_events

    def test_scoreboard_ingest_blames_routes_to_all_managers(self, params):
        gossip, lifting = params
        assignment, managers, clock = self._build(params)
        board = ScoreBoard(managers)
        reference = {
            node: ReputationManager(node, assignment, gossip, lifting, now=clock)
            for node in range(gossip.n)
        }
        targets = [4, 7, 4, 4, 7, 11]
        values = [2.0, 1.0, 0.5, -0.25, 3.0, 10.0]
        routed = board.ingest_blames(assignment, targets, values)
        assert routed == len(targets)
        for target, value in zip(targets, values):
            for manager_id in assignment.managers_of(target):
                reference[manager_id].on_blame(target, value)
        clock.now = 80.0
        scores = board.scores(list(range(gossip.n)), assignment)
        ref_board = ScoreBoard(reference)
        ref_scores = ref_board.scores(list(range(gossip.n)), assignment)
        for node in range(gossip.n):
            assert scores[node] == pytest.approx(ref_scores[node], abs=1e-12)
        # Blamed targets moved; untouched nodes sit at the compensation.
        assert scores[11] < scores[0]

    def test_ingest_blames_empty_and_mismatch(self, params):
        assignment, managers, _clock = self._build(params)
        board = ScoreBoard(managers)
        assert board.ingest_blames(assignment, [], []) == 0
        with pytest.raises(ValueError):
            board.ingest_blames(assignment, [1, 2], [1.0])
