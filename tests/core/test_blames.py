"""Table 1 conformance: blame values per attack."""

import pytest

from repro.core.blames import (
    fanout_decrease_blame,
    no_ack_blame,
    partial_serve_blame,
    unacknowledged_history_blame,
    witness_contradiction_blame,
)


class TestFanoutDecrease:
    def test_paper_example(self):
        # f = 7, f̂ = 6 (the PlanetLab freeriders): blame 1 per verifier.
        assert fanout_decrease_blame(7, 6) == 1.0

    def test_zero_when_compliant(self):
        assert fanout_decrease_blame(7, 7) == 0.0

    def test_never_negative(self):
        assert fanout_decrease_blame(7, 9) == 0.0

    def test_full_when_no_partners(self):
        assert fanout_decrease_blame(7, 0) == 7.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fanout_decrease_blame(0, 0)
        with pytest.raises(ValueError):
            fanout_decrease_blame(7, -1)


class TestNoAck:
    def test_equals_fanout(self):
        assert no_ack_blame(12) == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            no_ack_blame(0)


class TestPartialServe:
    def test_table1_formula(self):
        # f·(|R|-|S|)/|R|
        assert partial_serve_blame(7, 4, 1) == pytest.approx(7 * 3 / 4)

    def test_full_drop_equals_f(self):
        # "If the node did not serve any of the requested chunks, it is
        # blamed by f which corresponds to the same blame as if the node
        # did not propose those chunks."
        assert partial_serve_blame(7, 4, 0) == 7.0
        assert partial_serve_blame(7, 1, 0) == 7.0

    def test_full_serve_zero(self):
        assert partial_serve_blame(7, 4, 4) == 0.0

    def test_consistency_across_request_sizes(self):
        # Dropping everything always costs f, regardless of |R|.
        for request_size in (1, 2, 5, 10):
            assert partial_serve_blame(9, request_size, 0) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            partial_serve_blame(7, 0, 0)
        with pytest.raises(ValueError):
            partial_serve_blame(7, 4, 5)


class TestOtherBlames:
    def test_witness_contradiction_is_unit(self):
        # "blames p1 by the number of contradictory testimonies" — 1 each.
        assert witness_contradiction_blame() == 1.0

    def test_unacknowledged_history(self):
        # "blamed by 1 for each proposal in its history that is not
        # acknowledged by the alleged receiver."
        assert unacknowledged_history_blame(5) == 5.0
        assert unacknowledged_history_blame(0) == 0.0
        with pytest.raises(ValueError):
            unacknowledged_history_blame(-1)
