"""Unit tests for the verification engine (§5.2) against a fake host."""

import pytest

from repro.core.blames import (
    REASON_FANOUT_DECREASE,
    REASON_INVALID_PROPOSAL,
    REASON_NO_ACK,
    REASON_PARTIAL_SERVE,
    REASON_WITNESS_CONTRADICTION,
)
from repro.core.verification import VerificationEngine
from repro.wire import Ack, Confirm, ConfirmResponse


@pytest.fixture
def engine(fake_host):
    fake_host.forced_random = 0.0  # always trigger cross-checks
    return VerificationEngine(fake_host)


FANOUT = 4  # from the fake host's gossip params


def full_partners():
    return tuple(range(10, 10 + FANOUT))


class TestAckHappyPath:
    def test_complete_ack_no_blame(self, engine, fake_host):
        engine.on_serve_sent(requester=5, chunk_id=1)
        engine.on_serve_sent(requester=5, chunk_id=2)
        fake_host.sim.run(until=0.6)
        engine.on_ack(5, Ack(chunk_ids=(1, 2), partners=full_partners()))
        assert fake_host.blames == []

    def test_cross_check_sends_confirms_to_all_witnesses(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        confirms = [m for _d, m, _r in fake_host.sent if isinstance(m, Confirm)]
        assert len(confirms) == FANOUT
        assert all(c.proposer == 5 for c in confirms)

    def test_all_valid_responses_no_blame(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        for witness in full_partners():
            engine.on_confirm_response(witness, ConfirmResponse(proposer=5, valid=True))
        fake_host.sim.run()  # fire the confirm timeout
        assert fake_host.blames == []


class TestAckViolations:
    def test_fanout_decrease_blamed_f_minus_fhat(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=(10, 11)))  # f̂=2 < f=4
        assert (5, 2.0, REASON_FANOUT_DECREASE) in fake_host.blames

    def test_missing_ack_blamed_f_after_timeout(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        fake_host.sim.run(until=fake_host.lifting.ack_timeout + 0.1)
        engine.on_period_tick()
        assert (5, float(FANOUT), REASON_NO_ACK) in fake_host.blames

    def test_no_double_blame_after_sweep(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        fake_host.sim.run(until=fake_host.lifting.ack_timeout + 0.1)
        engine.on_period_tick()
        engine.on_period_tick()
        no_acks = [b for b in fake_host.blames if b[2] == REASON_NO_ACK]
        assert len(no_acks) == 1

    def test_ack_omitting_overdue_chunks_is_invalid_proposal(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_serve_sent(5, 2)
        fake_host.sim.run(until=fake_host.gossip.gossip_period + 0.05)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        invalid = [b for b in fake_host.blames if b[2] == REASON_INVALID_PROPOSAL]
        assert len(invalid) == 1
        assert invalid[0][1] == float(FANOUT)

    def test_fresh_chunks_not_counted_invalid(self, engine, fake_host):
        # A chunk served moments before the ack may legitimately belong to
        # the next propose phase — no blame yet.
        engine.on_serve_sent(5, 1)
        fake_host.sim.run(until=0.1)
        engine.on_serve_sent(5, 2)  # just served
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert all(b[2] != REASON_INVALID_PROPOSAL for b in fake_host.blames)

    def test_contradicting_witnesses_blamed_one_each(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        witnesses = full_partners()
        engine.on_confirm_response(witnesses[0], ConfirmResponse(5, True))
        engine.on_confirm_response(witnesses[1], ConfirmResponse(5, False))
        # witnesses[2], witnesses[3] never answer.
        fake_host.sim.run()
        contradictions = [
            b for b in fake_host.blames if b[2] == REASON_WITNESS_CONTRADICTION
        ]
        assert contradictions == [(5, 3.0, REASON_WITNESS_CONTRADICTION)]

    def test_pdcc_zero_skips_cross_check(self, fake_host):
        fake_host.forced_random = 0.99  # above any p_dcc < 1
        from dataclasses import replace

        fake_host.lifting = replace(fake_host.lifting, p_dcc=0.0)
        engine = VerificationEngine(fake_host)
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert not any(isinstance(m, Confirm) for _d, m, _r in fake_host.sent)

    def test_fanout_check_still_runs_without_cross_check(self, fake_host):
        from dataclasses import replace

        fake_host.forced_random = 0.99
        fake_host.lifting = replace(fake_host.lifting, p_dcc=0.0)
        engine = VerificationEngine(fake_host)
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=(10,)))
        assert (5, 3.0, REASON_FANOUT_DECREASE) in fake_host.blames


class TestDirectVerification:
    def test_all_chunks_served_no_blame(self, engine, fake_host):
        engine.on_request_sent(proposer=7, proposal_id=42, chunk_ids=(1, 2, 3))
        for c in (1, 2, 3):
            engine.on_serve_received(42, c)
        fake_host.sim.run()
        assert fake_host.blames == []

    def test_partial_serve_blame_value(self, engine, fake_host):
        engine.on_request_sent(7, 42, (1, 2, 3, 4))
        engine.on_serve_received(42, 1)
        fake_host.sim.run()
        assert (7, pytest.approx(FANOUT * 3 / 4), REASON_PARTIAL_SERVE) in [
            (t, v, r) for t, v, r in fake_host.blames
        ]

    def test_fully_ignored_request_blamed_f(self, engine, fake_host):
        engine.on_request_sent(7, 42, (1, 2))
        fake_host.sim.run()
        assert (7, float(FANOUT), REASON_PARTIAL_SERVE) in fake_host.blames

    def test_missing_chunks_reported_for_retry(self, engine, fake_host):
        engine.on_request_sent(7, 42, (1, 2, 3))
        engine.on_serve_received(42, 2)
        fake_host.sim.run()
        assert fake_host.expired == [(7, {1, 3})]

    def test_empty_request_ignored(self, engine, fake_host):
        engine.on_request_sent(7, 42, ())
        fake_host.sim.run()
        assert fake_host.blames == []

    def test_serve_for_unknown_proposal_ignored(self, engine):
        engine.on_serve_received(999, 1)  # must not raise


class TestBookkeeping:
    def test_counters(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        assert engine.pending_ack_count == 1
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert engine.pending_ack_count == 0
        assert engine.open_confirm_rounds == 1
        fake_host.sim.run()
        assert engine.open_confirm_rounds == 0

    def test_blames_by_reason_accumulates(self, engine, fake_host):
        engine.on_request_sent(7, 42, (1,))
        fake_host.sim.run()
        assert engine.blames_by_reason[REASON_PARTIAL_SERVE] == float(FANOUT)

    def test_partial_ack_keeps_exact_count(self, engine, fake_host):
        """Regression: a partial ack must not leave an empty per-requester
        entry behind (the old dict-of-dicts could strand one on the
        partial-pop path and overcount pending requesters)."""
        engine.on_serve_sent(5, 1)
        engine.on_serve_sent(5, 2)
        engine.on_serve_sent(8, 3)
        assert engine.pending_ack_count == 2
        # Ack only chunk 1 — requester 5 still owes chunk 2.
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert engine.pending_ack_count == 2
        # Ack the remainder: requester 5 must vanish entirely.
        engine.on_ack(5, Ack(chunk_ids=(2,), partners=full_partners()))
        assert engine.pending_ack_count == 1
        assert 5 not in engine._ack_live
        engine.on_ack(8, Ack(chunk_ids=(3,), partners=full_partners()))
        assert engine.pending_ack_count == 0
        assert engine._ack_n == 0 and engine._ack_live == {}

    def test_overdue_drop_path_keeps_exact_count(self, engine, fake_host):
        """The overdue-chunk pop inside ``on_ack`` (invalid-proposal path)
        must release the requester the moment its last row drops."""
        engine.on_serve_sent(5, 1)
        engine.on_serve_sent(5, 2)
        fake_host.sim.run(until=fake_host.gossip.gossip_period + 0.05)
        # Ack names chunk 1 only; chunk 2 is overdue and dropped with blame.
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert engine.pending_ack_count == 0
        assert engine._ack_live == {}

    def test_sweep_drop_path_keeps_exact_count(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        engine.on_serve_sent(8, 2)
        fake_host.sim.run(until=fake_host.lifting.ack_timeout + 0.1)
        engine.on_period_tick()
        assert engine.pending_ack_count == 0
        assert engine._ack_live == {} and engine._ack_n == 0

    def test_duplicate_serve_refreshes_not_duplicates(self, engine, fake_host):
        engine.on_serve_sent(5, 1)
        fake_host.sim.run(until=0.2)
        engine.on_serve_sent(5, 1)  # retry chain looped back to us
        assert engine.pending_ack_count == 1
        assert engine._ack_n == 1
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=full_partners()))
        assert engine.pending_ack_count == 0

    def test_purge_requester_drops_only_that_requester(self, engine):
        engine.on_serve_sent(5, 1)
        engine.on_serve_sent(8, 2)
        engine.on_serve_sent(5, 3)
        engine.purge_requester(5)
        assert engine.pending_ack_count == 1
        assert 5 not in engine._ack_live and 8 in engine._ack_live
        engine.purge_requester(99)  # absent requester is a no-op
        assert engine.pending_ack_count == 1

    def test_concurrent_confirm_rounds_same_proposer(self, engine, fake_host):
        # Two acks from the same proposer in flight: responses must be
        # matched FIFO per (proposer, witness).
        engine.on_serve_sent(5, 1)
        engine.on_ack(5, Ack(chunk_ids=(1,), partners=(10, 11, 12, 13)))
        engine.on_serve_sent(5, 2)
        engine.on_ack(5, Ack(chunk_ids=(2,), partners=(10, 11, 12, 13)))
        assert engine.open_confirm_rounds == 2
        for witness in (10, 11, 12, 13):
            engine.on_confirm_response(witness, ConfirmResponse(5, True))
            engine.on_confirm_response(witness, ConfirmResponse(5, True))
        fake_host.sim.run()
        assert fake_host.blames == []
