"""Unit tests for local history auditing (§5.3) against a fake host."""

import math

import pytest

from repro.core.audit import Auditor
from repro.core.blames import REASON_AUDIT_COMPENSATION, REASON_UNACKNOWLEDGED_HISTORY
from repro.wire import AuditRequest, AuditResponse, HistoryPollRequest, HistoryPollResponse


def uniform_history(periods, fanout, n_nodes, start_node=100):
    """A history whose partners are all distinct (maximum entropy)."""
    proposals = []
    node = start_node
    for period in range(1, periods + 1):
        partners = tuple((node + i) % n_nodes for i in range(fanout))
        node += fanout
        proposals.append((period, partners, (period,)))
    return tuple(proposals)


def concentrated_history(periods, fanout, colluders):
    """A history cycling over a tiny colluder set (low entropy)."""
    proposals = []
    for period in range(1, periods + 1):
        partners = tuple(colluders[(period + i) % len(colluders)] for i in range(fanout))
        proposals.append((period, partners, (period,)))
    return tuple(proposals)


@pytest.fixture
def auditor(fake_host):
    return Auditor(fake_host)


def drive_audit(auditor, fake_host, proposals, *, acknowledged=True, senders=None):
    """Run a full audit exchange against scripted witness answers."""
    target = 9
    assert auditor.start(target)
    auditor.on_audit_response(target, AuditResponse(proposals=proposals))
    polls = [m for _d, m, _r in fake_host.sent if isinstance(m, HistoryPollRequest)]
    for i, ((dst, poll, _r), _msg) in enumerate(
        [(entry, entry[1]) for entry in fake_host.sent if isinstance(entry[1], HistoryPollRequest)]
    ):
        witness = dst
        reply_senders = senders(witness) if senders is not None else tuple(
            100 + (witness * 7 + j) % 50 for j in range(6)
        )
        auditor.on_poll_response(
            witness,
            HistoryPollResponse(
                target=target,
                period=poll.period,
                acknowledged=acknowledged,
                confirm_senders=tuple(reply_senders),
            ),
        )
    return auditor.results[-1] if auditor.results else None


class TestAuditFlow:
    def test_sends_audit_request_over_tcp(self, auditor, fake_host):
        auditor.start(9)
        requests = [
            (d, m, r) for d, m, r in fake_host.sent if isinstance(m, AuditRequest)
        ]
        assert len(requests) == 1
        dst, msg, reliable = requests[0]
        assert dst == 9 and reliable is True
        assert msg.periods == fake_host.lifting.history_periods

    def test_duplicate_audit_refused(self, auditor):
        assert auditor.start(9)
        assert not auditor.start(9)

    def test_polls_every_alleged_partner(self, auditor, fake_host):
        proposals = uniform_history(4, 3, 1000)
        auditor.start(9)
        auditor.on_audit_response(9, AuditResponse(proposals=proposals))
        polls = [m for _d, m, _r in fake_host.sent if isinstance(m, HistoryPollRequest)]
        assert len(polls) == 4 * 3
        assert all(p.target == 9 for p in polls)

    def test_no_response_fails_audit(self, auditor, fake_host):
        auditor.start(9)
        fake_host.sim.run(until=Auditor.RESPONSE_TIMEOUT + 0.1)
        result = auditor.results[-1]
        assert not result.responded
        assert not result.passed
        assert fake_host.verdicts[-1][0] == 9

    def test_empty_history_finalizes_immediately(self, auditor, fake_host):
        auditor.start(9)
        auditor.on_audit_response(9, AuditResponse(proposals=()))
        assert auditor.results
        assert not auditor.results[-1].passed_period_count


class TestEntropyChecks:
    def test_uniform_history_passes_fanout(self, auditor, fake_host):
        proposals = uniform_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(auditor, fake_host, proposals)
        assert result.passed_fanout
        assert result.fanout_entropy == pytest.approx(
            math.log2(len(proposals) * fake_host.gossip.fanout)
        )

    def test_concentrated_history_fails_fanout(self, auditor, fake_host):
        proposals = concentrated_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, [1, 2, 3]
        )
        result = drive_audit(auditor, fake_host, proposals)
        assert not result.passed_fanout
        assert result.fanout_entropy <= math.log2(3) + 1e-9
        assert not result.passed

    def test_concentrated_fanin_fails(self, auditor, fake_host):
        # Histories look fine but every witness reports the same two
        # confirm senders — the man-in-the-middle signature.
        proposals = uniform_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(
            auditor, fake_host, proposals, senders=lambda _w: (1, 2)
        )
        assert not result.passed_fanin
        assert not result.passed

    def test_diverse_fanin_passes(self, auditor, fake_host):
        proposals = uniform_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(auditor, fake_host, proposals)
        assert result.passed_fanin

    def test_verdict_reported_to_host(self, auditor, fake_host):
        proposals = concentrated_history(8, fake_host.gossip.fanout, [1, 2])
        drive_audit(auditor, fake_host, proposals)
        target, result = fake_host.verdicts[-1]
        assert target == 9
        assert not result.passed


class TestPeriodCountCheck:
    def test_half_empty_history_fails(self, auditor, fake_host):
        # Stretched gossip period -> too few propose events (§5.3).
        proposals = uniform_history(
            fake_host.lifting.history_periods // 3, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(auditor, fake_host, proposals)
        assert not result.passed_period_count
        assert not result.passed


class TestAposterioriCrossCheck:
    def test_unacknowledged_entries_blamed(self, auditor, fake_host):
        proposals = uniform_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(auditor, fake_host, proposals, acknowledged=False)
        entries = result.polled_entries
        assert result.unacknowledged == entries
        blames = [b for b in fake_host.blames if b[2] == REASON_UNACKNOWLEDGED_HISTORY]
        assert blames == [(9, float(entries), REASON_UNACKNOWLEDGED_HISTORY)]

    def test_compensation_credit_applied(self, auditor, fake_host):
        proposals = uniform_history(
            fake_host.lifting.history_periods, fake_host.gossip.fanout, 1000
        )
        result = drive_audit(auditor, fake_host, proposals)
        credits = [b for b in fake_host.blames if b[2] == REASON_AUDIT_COMPENSATION]
        assert len(credits) == 1
        expected = -(1.0 - fake_host.lifting.p_reception) * result.polled_entries
        assert credits[0][1] == pytest.approx(expected)

    def test_poll_timeout_finalizes_with_partial_testimony(self, auditor, fake_host):
        proposals = uniform_history(6, fake_host.gossip.fanout, 1000)
        auditor.start(9)
        auditor.on_audit_response(9, AuditResponse(proposals=proposals))
        # Only one witness answers; the deadline must still close the audit.
        polls = [
            (d, m) for d, m, _r in fake_host.sent if isinstance(m, HistoryPollRequest)
        ]
        witness, poll = polls[0]
        auditor.on_poll_response(
            witness,
            HistoryPollResponse(
                target=9, period=poll.period, acknowledged=True, confirm_senders=(1,)
            ),
        )
        fake_host.sim.run(until=Auditor.POLL_TIMEOUT + Auditor.RESPONSE_TIMEOUT + 1)
        assert auditor.results


class TestShortHistoryThreshold:
    def test_threshold_scales_with_observed_size(self):
        gamma = 8.95
        full = 600
        # A full window uses γ unchanged; a half window is allowed one
        # bit less.
        assert Auditor._effective_threshold(gamma, 600, full) == pytest.approx(gamma)
        assert Auditor._effective_threshold(gamma, 300, full) == pytest.approx(gamma - 1.0)
        # Never raises the bar above γ.
        assert Auditor._effective_threshold(gamma, 1200, full) == pytest.approx(gamma)

    def test_young_node_short_diverse_history_not_auto_guilty(self, auditor, fake_host):
        # A young node has |F_h| ≪ n_h·f: its entropy ceiling
        # log2(|F_h|) sits below γ, so against the raw threshold every
        # young node would be expelled.  The shortfall-lowered threshold
        # must let a *diverse* short history pass the fanout check.
        periods = 3  # of the 8-period window: 12 entries vs n_h·f = 32
        proposals = uniform_history(
            periods, fake_host.gossip.fanout, fake_host.gossip.n
        )
        result = drive_audit(auditor, fake_host, proposals)
        fanout_size = periods * fake_host.gossip.fanout
        assert result.fanout_size == fanout_size
        # Max achievable entropy is below the raw γ — the raw threshold
        # would auto-expel; the scaled one must not.
        assert math.log2(fanout_size) < fake_host.lifting.gamma
        assert result.passed_fanout

    def test_young_concentrated_history_still_fails(self, auditor, fake_host):
        # The lowered threshold is not a free pass: a short history
        # concentrated on two colluders still fails.
        proposals = concentrated_history(3, fake_host.gossip.fanout, [4, 5])
        result = drive_audit(auditor, fake_host, proposals)
        assert not result.passed_fanout
