"""Unit tests for the expulsion controller."""

import pytest

from repro.core.detector import ExpulsionController, ExpulsionRecord
from repro.membership.full import FullMembership
from repro.sim.engine import Simulator
from repro.sim.network import Network


class Stub:
    def __init__(self, node_id):
        self.node_id = node_id

    def on_message(self, src, message):
        pass


@pytest.fixture
def setup(rng):
    sim = Simulator()
    network = Network(sim)
    for i in range(5):
        network.register(Stub(i))
    membership = FullMembership(rng, range(5))
    return sim, network, membership


class TestEnforcement:
    def test_expel_disconnects_and_deregisters(self, setup):
        sim, network, membership = setup
        controller = ExpulsionController(network, [membership], enabled=True)
        assert controller.expel(3, "score")
        assert not network.is_connected(3)
        assert not membership.contains(3)
        assert controller.is_expelled(3)

    def test_double_expel_is_noop(self, setup):
        _sim, network, membership = setup
        controller = ExpulsionController(network, [membership], enabled=True)
        assert controller.expel(3, "score")
        assert not controller.expel(3, "audit")
        assert controller.records[3].reason == "score"  # first reason wins

    def test_observation_mode_records_only(self, setup):
        _sim, network, membership = setup
        controller = ExpulsionController(network, [membership], enabled=False)
        assert controller.expel(3, "audit")
        assert network.is_connected(3)
        assert membership.contains(3)
        assert not controller.is_expelled(3)  # not enforced
        assert 3 in controller.expelled_nodes()

    def test_callback_invoked(self, setup):
        _sim, network, membership = setup
        seen = []
        controller = ExpulsionController(
            network, [membership], enabled=True, on_expel=seen.append
        )
        controller.expel(2, "audit")
        assert len(seen) == 1
        assert isinstance(seen[0], ExpulsionRecord)
        assert seen[0].node == 2 and seen[0].enforced

    def test_record_timestamps_use_sim_clock(self, setup):
        sim, network, membership = setup
        controller = ExpulsionController(network, [membership], enabled=True)
        sim.call_later(4.0, lambda: controller.expel(1, "score"))
        sim.run()
        assert controller.records[1].time == pytest.approx(4.0)

    def test_records_by_reason(self, setup):
        _sim, network, membership = setup
        controller = ExpulsionController(network, [membership], enabled=True)
        controller.expel(1, "score")
        controller.expel(2, "audit")
        controller.expel(3, "audit")
        assert {r.node for r in controller.records_by_reason("audit")} == {2, 3}
        assert {r.node for r in controller.records_by_reason("score")} == {1}
