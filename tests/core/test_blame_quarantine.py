"""Blame quarantine under suspicion (churn-tolerant reputation).

While the failure detector suspects a node, its managers divert blames
into a quarantine buffer instead of the score; the buffer is dropped on
refutation and folded in on confirmed death.  These tests pin that
record-level state machine (the cluster-level wiring is covered by
``tests/experiments/test_churn.py``).
"""

from dataclasses import replace

import pytest

from repro.config import planetlab_params
from repro.core.reputation import ManagerAssignment, ReputationManager


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def manager():
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=20)
    lifting = replace(lifting, managers=4, min_periods_before_expel=5, expel_quorum=0.5)
    assignment = ManagerAssignment(range(20), managers=4, seed=7)
    clock = FakeClock()
    owner = 0
    mgr = ReputationManager(owner, assignment, gossip, lifting, now=clock)
    mgr.clock = clock  # test hook: drive the clock directly
    return mgr


def a_target(manager):
    """Some node this manager holds a record for."""
    return next(iter(manager.records))


class TestQuarantineLifecycle:
    def test_blames_divert_while_suspected(self, manager):
        target = a_target(manager)
        assert manager.quarantine_target(target)
        manager.on_blame(target, 5.0)
        manager.on_blame(target, 2.0)
        record = manager.records[target]
        assert record.blame_total == 0.0
        assert record.quarantined_total == 7.0
        assert record.quarantined_events == 2

    def test_quarantine_is_idempotent_and_scoped(self, manager):
        target = a_target(manager)
        assert manager.quarantine_target(target)
        assert not manager.quarantine_target(target)  # already suspected
        assert not manager.quarantine_target(9999)  # not managed here
        assert manager.quarantines_started == 1

    def test_discard_drops_held_blames(self, manager):
        target = a_target(manager)
        manager.quarantine_target(target)
        manager.on_blame(target, 9.0)
        assert manager.discard_quarantine(target)
        record = manager.records[target]
        assert record.blame_total == 0.0
        assert record.quarantined_total == 0.0
        assert not record.suspected
        assert manager.quarantines_discarded == 1
        # Post-refutation blames hit the score again.
        manager.on_blame(target, 1.0)
        assert record.blame_total == 1.0

    def test_release_folds_held_blames_into_score(self, manager):
        target = a_target(manager)
        manager.on_blame(target, 1.0)
        manager.quarantine_target(target)
        manager.on_blame(target, 9.0)
        assert manager.release_quarantine(target)
        record = manager.records[target]
        assert record.blame_total == 10.0
        assert record.blame_events == 2
        assert record.quarantined_total == 0.0
        assert manager.quarantines_released == 1

    def test_resolution_needs_open_quarantine(self, manager):
        target = a_target(manager)
        assert not manager.discard_quarantine(target)
        assert not manager.release_quarantine(target)

    def test_expelled_target_cannot_be_quarantined(self, manager):
        target = a_target(manager)
        manager.mark_expelled(target)
        assert not manager.quarantine_target(target)


class TestVotingInteraction:
    def test_suspects_are_skipped_by_expulsion_sweep(self, manager):
        target = a_target(manager)
        # Pile on enough blame that the compensated score is far below η.
        manager.on_blame(target, 1e6)
        manager.clock.now = 100.0  # past the grace period
        manager.quarantine_target(target)
        assert target not in manager.expulsion_candidates()
        # Released blames make it votable again.
        manager.release_quarantine(target)
        assert target in manager.expulsion_candidates()

    def test_released_blames_count_toward_score(self, manager):
        target = a_target(manager)
        manager.clock.now = 10.0
        baseline = manager.normalized_score(target)
        manager.quarantine_target(target)
        manager.on_blame(target, 50.0)
        assert manager.normalized_score(target) == baseline  # held back
        manager.release_quarantine(target)
        assert manager.normalized_score(target) < baseline


class TestAuditTrail:
    def test_quarantine_events_are_chained(self, manager):
        entries = []

        class Log:
            def append(self, kind, **fields):
                entries.append(kind)

        manager.audit_log = Log()
        target = a_target(manager)
        manager.quarantine_target(target)
        manager.discard_quarantine(target)
        manager.quarantine_target(target)
        manager.on_blame(target, 3.0)
        manager.release_quarantine(target)
        assert entries == [
            "blame_quarantine",
            "quarantine_discard",
            "blame_quarantine",
            "quarantine_release",
        ]
