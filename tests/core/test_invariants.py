"""The invariant monitor: clean runs stay clean, breaches get flagged once.

The monitor's whole value is asymmetry: a healthy deployment produces
zero violations sweep after sweep, while a single synthetic breach —
a mutated blame total, a resurrected expellee, a leaked quarantine
buffer — is reported exactly once with a nameable invariant.  Fake
managers keep the breach surgical; one real ``SimCluster`` backs the
clean-run claim.
"""

from dataclasses import replace

import pytest

from repro.config import FreeriderDegree, planetlab_params
from repro.core.invariants import InvariantMonitor, monitor_for_cluster
from repro.experiments.cluster import ClusterConfig, SimCluster


class FakeRecord:
    def __init__(self, blame_events=0, blame_total=0.0, suspected=False,
                 quarantined_events=0):
        self.blame_events = blame_events
        self.blame_total = blame_total
        self.suspected = suspected
        self.quarantined_events = quarantined_events


class FakeManager:
    def __init__(self, records=None):
        self.records = records or {}
        self.quarantines_started = 0
        self.quarantines_discarded = 0
        self.quarantines_released = 0

    def suspected_records(self):
        return sum(1 for r in self.records.values() if r.suspected)


class FakeVerdict:
    def __init__(self, ok):
        self.ok = ok

    def __repr__(self):
        return f"FakeVerdict(ok={self.ok})"


class FakeAuditLog:
    def __init__(self, ok=True):
        self.ok = ok

    def verify_all(self):
        return FakeVerdict(self.ok)


def make_monitor(*, managers=None, honest=(1, 2, 3), adversaries=(9,),
                 expelled=None, audit_logs=()):
    expelled = expelled if expelled is not None else set()
    return InvariantMonitor(
        managers=managers or {},
        honest_ids=honest,
        adversary_ids=adversaries,
        is_expelled=expelled.__contains__,
        node_ids=tuple(honest) + tuple(adversaries),
        audit_logs=audit_logs,
        clock=lambda: 42.0,
    ), expelled


class TestCleanSweeps:
    def test_empty_deployment_is_clean(self):
        monitor, _ = make_monitor()
        assert monitor.check() == []
        assert monitor.summary() == {"checks": 1, "violations": 0, "by_invariant": {}}

    def test_clean_cluster_run_has_zero_violations(self):
        gossip, lifting = planetlab_params()
        gossip = replace(gossip, n=16, chunk_size=1400)
        cluster = SimCluster(ClusterConfig(
            gossip=gossip, lifting=lifting, seed=5, loss_rate=0.04,
            freerider_fraction=0.125,
            freerider_degree=FreeriderDegree.uniform(0.5),
            expulsion_enabled=True,
        ))
        monitor = cluster.attach_invariants()
        cluster.run(until=8.0)
        monitor.check()
        summary = monitor.summary()
        assert summary["checks"] >= 3
        assert summary["violations"] == 0

    def test_adversary_expulsion_is_not_wrongful(self):
        monitor, expelled = make_monitor()
        expelled.add(9)  # the adversary goes: by design, not a breach
        assert monitor.check() == []


class TestSyntheticBreaches:
    def test_honest_expulsion_under_honest_quorum_is_wrongful(self):
        monitor, expelled = make_monitor()
        expelled.add(2)
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["wrongful_expulsion"]
        assert "2" in fresh[0].detail
        assert fresh[0].at == 42.0

    def test_resurrected_expellee_breaks_permanence(self):
        monitor, expelled = make_monitor()
        expelled.add(9)
        assert monitor.check() == []
        expelled.discard(9)  # the dead walk
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["expulsion_permanence"]

    def test_blame_total_moving_without_event_breaks_monotonicity(self):
        record = FakeRecord(blame_events=3, blame_total=5.0)
        monitor, _ = make_monitor(managers={1: FakeManager({7: record})})
        assert monitor.check() == []
        record.blame_total = 6.5  # silent mutation, no event
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["score_monotonicity"]

    def test_decreasing_blame_events_breaks_monotonicity(self):
        record = FakeRecord(blame_events=3, blame_total=5.0)
        monitor, _ = make_monitor(managers={1: FakeManager({7: record})})
        assert monitor.check() == []
        record.blame_events = 2
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["score_monotonicity"]

    def test_blame_with_event_is_fine(self):
        record = FakeRecord(blame_events=3, blame_total=5.0)
        monitor, _ = make_monitor(managers={1: FakeManager({7: record})})
        assert monitor.check() == []
        record.blame_events = 4
        record.blame_total = 6.5
        assert monitor.check() == []

    def test_leaked_quarantine_buffer_breaks_conservation(self):
        record = FakeRecord(suspected=False, quarantined_events=2)
        monitor, _ = make_monitor(managers={1: FakeManager({7: record})})
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["quarantine_conservation"]

    def test_quarantine_counter_imbalance_breaks_conservation(self):
        manager = FakeManager({7: FakeRecord()})
        manager.quarantines_started = 2
        manager.quarantines_released = 1  # one quarantine unaccounted for
        monitor, _ = make_monitor(managers={1: manager})
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["quarantine_conservation"]

    def test_broken_audit_chain_is_flagged(self):
        monitor, _ = make_monitor(audit_logs=(FakeAuditLog(ok=False),))
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["audit_chain"]

    def test_healthy_audit_chain_is_not(self):
        monitor, _ = make_monitor(audit_logs=(FakeAuditLog(ok=True),))
        assert monitor.check() == []


class TestReporting:
    def test_each_breach_reported_once_across_sweeps(self):
        monitor, expelled = make_monitor()
        expelled.add(2)
        assert len(monitor.check()) == 1
        for _ in range(5):
            assert monitor.check() == []  # still broken, already reported
        assert monitor.summary()["violations"] == 1
        assert monitor.summary()["by_invariant"] == {"wrongful_expulsion": 1}

    def test_summary_tallies_by_invariant(self):
        record = FakeRecord(suspected=False, quarantined_events=1)
        monitor, expelled = make_monitor(
            managers={1: FakeManager({7: record})},
            audit_logs=(FakeAuditLog(ok=False),),
        )
        expelled.add(2)
        monitor.check()
        summary = monitor.summary()
        assert summary["violations"] == 3
        assert set(summary["by_invariant"]) == {
            "wrongful_expulsion", "quarantine_conservation", "audit_chain"
        }


class TestQuorumAwareness:
    def test_adversary_held_quorum_excuses_the_expulsion(self):
        # When the target's managers are majority-adversarial, an honest
        # expulsion is the *adversary's* doing, not a protocol breach.
        class Assignment:
            def managers_of(self, target):
                return (9, 8, 1)  # 2/3 adversarial >= quorum 0.5

        monitor = InvariantMonitor(
            managers={},
            honest_ids=(1, 2),
            adversary_ids=(8, 9),
            is_expelled={2}.__contains__,
            node_ids=(1, 2, 8, 9),
            assignment=Assignment(),
            expel_quorum=0.5,
        )
        assert monitor.check() == []

    def test_honest_quorum_makes_it_wrongful(self):
        class Assignment:
            def managers_of(self, target):
                return (9, 1, 2)  # 1/3 adversarial < quorum

        monitor = InvariantMonitor(
            managers={},
            honest_ids=(1, 2, 3),
            adversary_ids=(9,),
            is_expelled={3}.__contains__,
            node_ids=(1, 2, 3, 9),
            assignment=Assignment(),
            expel_quorum=0.5,
        )
        fresh = monitor.check()
        assert [v.invariant for v in fresh] == ["wrongful_expulsion"]


class TestClusterWiring:
    def test_monitor_for_cluster_reads_live_state(self):
        gossip, lifting = planetlab_params()
        gossip = replace(gossip, n=12, chunk_size=1400)
        cluster = SimCluster(ClusterConfig(
            gossip=gossip, lifting=lifting, seed=2, loss_rate=0.02,
            expulsion_enabled=True,
        ))
        monitor = monitor_for_cluster(cluster)
        assert set(monitor.managers) <= set(cluster.node_ids)
        assert monitor.honest_ids == cluster.honest_ids
        assert monitor.expel_quorum == cluster.config.lifting.expel_quorum
        assert monitor.clock() == cluster.sim.now
