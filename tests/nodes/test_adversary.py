"""The adversary-policy framework: registry, behaviours, cluster wiring.

Each adversary's *mechanism* is tested in isolation against a recording
fake node — the adaptive freerider walks its ladder under synthetic
score feedback, the launderer splits its credit budget, the stuffer
respects its start period, the equivocator splits the requester
population — and the cluster wiring tests prove a ``ClusterConfig``
string is all it takes to arm a deployment.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import adversary
from repro.adversary import (
    AdaptiveFreeriderBehavior,
    AdversaryContext,
    EquivocatorBehavior,
    LaunderingColluderBehavior,
    StuffingCampaign,
    SybilStufferBehavior,
    available,
    create,
    degree_ladder,
)
from repro.analysis.freerider_blames import expected_blame_excess
from repro.config import FreeriderDegree, planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.nodes.colluder import Coalition


def make_context(freeriders=(1, 2, 3), honest=(10, 11, 12, 13), seed=0):
    gossip, lifting = planetlab_params()
    return AdversaryContext(
        gossip=gossip,
        lifting=lifting,
        freerider_ids=frozenset(freeriders),
        honest_ids=frozenset(honest),
        rng=np.random.default_rng(seed),
    )


class FakeScoreReader:
    def __init__(self):
        self.queries = []

    def query(self, target, callback):
        self.queries.append((target, callback))


class FakeNode:
    """Just enough node surface for a behaviour under test."""

    def __init__(self, node_id=1, eta=-9.75):
        self.node_id = node_id
        _gossip, lifting = planetlab_params()
        self.lifting = replace(lifting, eta=eta)
        self.score_reader = FakeScoreReader()
        self.blames = []

    def send_blame(self, target, value, reason):
        self.blames.append((target, value, reason))


class TestRegistry:
    def test_all_four_adversaries_registered(self):
        assert set(available()) >= {"adaptive", "coalition", "sybil_blame", "equivocator"}

    def test_create_coerces_stringly_params(self):
        policy = create("sybil_blame", {"rate": "1.5", "victims": "3"})
        assert policy.rate == 1.5
        assert policy.victim_count == 3

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ValueError, match="adaptive"):
            create("nope")


class TestAdaptiveFreerider:
    def test_ladder_start_rung_sits_under_the_budget(self):
        ctx = make_context()
        ladder, start = degree_ladder(ctx, headroom=0.8)
        gossip, lifting = ctx.gossip, ctx.lifting
        p_r = 1.0 - lifting.assumed_loss_rate
        budget = 0.8 * -lifting.eta

        def excess(degree):
            return expected_blame_excess(
                degree, gossip.fanout, gossip.request_size, p_r, lifting.p_dcc
            )

        assert excess(ladder[start]) <= budget
        if start + 1 < len(ladder):
            assert excess(ladder[start + 1]) > budget

    def test_more_headroom_never_lowers_the_start_rung(self):
        ctx = make_context()
        _, cautious = degree_ladder(ctx, headroom=0.4)
        _, bold = degree_ladder(ctx, headroom=0.9)
        assert bold >= cautious

    def make_behavior(self, rung=2, **kwargs):
        ladder = [FreeriderDegree.uniform(d) for d in (0.0, 0.2, 0.4, 0.6)]
        behavior = AdaptiveFreeriderBehavior(ladder, rung, **kwargs)
        node = FakeNode()
        behavior.bind(node)
        return behavior, node

    def test_score_checks_follow_the_cadence(self):
        behavior, node = self.make_behavior(check_every=5)
        for period in range(11):
            behavior.on_period_start(period)
        assert [t for t, _cb in node.score_reader.queries] == [1, 1, 1]  # 0, 5, 10

    def test_bad_score_retreats_a_rung(self):
        behavior, node = self.make_behavior(rung=2, retreat_at=0.6)
        behavior._on_own_score(0.7 * -9.75)  # score -6.8 is below 0.6·η
        assert behavior.rung == 1
        assert behavior.degree == behavior.ladder[1]
        assert behavior.adjustments == 1

    def test_comfortable_score_advances_a_rung(self):
        behavior, _node = self.make_behavior(rung=2, advance_at=0.25)
        behavior._on_own_score(-1.0)  # well above 0.25·η = -2.4
        assert behavior.rung == 3

    def test_middling_score_holds_the_rung(self):
        behavior, _node = self.make_behavior(rung=2)
        behavior._on_own_score(0.4 * -9.75)  # between the two thresholds
        assert behavior.rung == 2
        assert behavior.adjustments == 0

    def test_silent_managers_are_a_noop(self):
        behavior, _node = self.make_behavior(rung=2)
        behavior._on_own_score(None)
        assert behavior.rung == 2

    def test_ladder_ends_clamp(self):
        behavior, _node = self.make_behavior(rung=0)
        behavior._on_own_score(-100.0)  # terrible score, nowhere to retreat
        assert behavior.rung == 0
        behavior, _node = self.make_behavior(rung=3)
        behavior._on_own_score(0.0)  # perfect score, nowhere to advance
        assert behavior.rung == 3


class TestLaunderingColluder:
    def make_behavior(self, members=(1, 2, 3), launder=2.0):
        behavior = LaunderingColluderBehavior(
            FreeriderDegree.uniform(0.4), Coalition(members), launder=launder
        )
        behavior.bind(FakeNode(node_id=1))
        return behavior

    def test_budget_split_across_co_members_as_credit(self):
        behavior = self.make_behavior(launder=2.0)
        behavior.on_period_start(0)
        node = behavior.node
        assert sorted(t for t, _v, _r in node.blames) == [2, 3]
        assert all(v == -1.0 for _t, v, _r in node.blames)
        assert all(r == "laundered-credit" for _t, _v, r in node.blames)
        assert behavior.credits_sent == 2.0

    def test_zero_budget_sends_nothing(self):
        behavior = self.make_behavior(launder=0.0)
        behavior.on_period_start(0)
        assert behavior.node.blames == []

    def test_singleton_coalition_has_no_one_to_pay(self):
        behavior = self.make_behavior(members=(1,), launder=2.0)
        behavior.on_period_start(0)
        assert behavior.node.blames == []


class TestSybilStuffer:
    def make_behavior(self, rate=1.0, start=5, victims=(10, 11), members=(1, 2)):
        campaign = StuffingCampaign(victims, rate, start)
        behavior = SybilStufferBehavior(
            FreeriderDegree.uniform(0.5), campaign, frozenset(members)
        )
        behavior.bind(FakeNode(node_id=1))
        return behavior

    def test_campaign_waits_for_its_start_period(self):
        behavior = self.make_behavior(start=5)
        for period in range(5):
            behavior.on_period_start(period)
        assert behavior.node.blames == []
        behavior.on_period_start(5)
        assert [(t, v) for t, v, _r in behavior.node.blames] == [(10, 1.0), (11, 1.0)]
        assert behavior.campaign.blames_stuffed == 2.0

    def test_stuffers_never_blame_each_other(self):
        behavior = self.make_behavior(members=(1, 2))
        assert not behavior.should_blame(2)
        assert behavior.should_blame(10)

    def test_policy_picks_victims_among_the_honest(self):
        policy = create("sybil_blame", {"victims": 2})
        ctx = make_context()
        policy.prepare(ctx)
        victims = policy.campaign.victims
        assert len(victims) == 2
        assert set(victims) <= ctx.honest_ids
        built = policy.build(1)
        assert built.members == ctx.freerider_ids


class TestEquivocator:
    def test_population_split_is_inconsistent_but_deterministic(self):
        behavior = EquivocatorBehavior(deny_share=0.5)
        behavior.bind(FakeNode(node_id=1))
        answers = {
            requester: behavior.confirm_answer(requester, proposer=7, truthful=True)
            for requester in range(20)
        }
        assert set(answers.values()) == {True, False}  # genuinely split
        again = {
            requester: behavior.confirm_answer(requester, proposer=7, truthful=True)
            for requester in range(20)
        }
        assert answers == again  # per-requester, the lie is stable

    def test_denied_poll_withholds_the_sender_log(self):
        behavior = EquivocatorBehavior(deny_share=1.0)
        behavior.bind(FakeNode(node_id=1))
        ack, senders = behavior.poll_answer(3, target=7, truthful_ack=True,
                                            truthful_senders=[4, 5])
        assert ack is False
        assert senders == []
        assert behavior.lies_told == 1

    def test_zero_share_is_fully_honest(self):
        behavior = EquivocatorBehavior(deny_share=0.0)
        behavior.bind(FakeNode(node_id=1))
        for requester in range(10):
            assert behavior.confirm_answer(requester, 7, True) is True
        assert behavior.lies_told == 0


class TestClusterWiring:
    def make_cluster(self, **changes):
        gossip, lifting = planetlab_params()
        gossip = replace(gossip, n=12, chunk_size=1400)
        kwargs = dict(seed=3, loss_rate=0.02, freerider_fraction=0.25,
                      expulsion_enabled=True)
        kwargs.update(changes)
        return SimCluster(ClusterConfig(gossip=gossip, lifting=lifting, **kwargs))

    def test_config_string_arms_the_freeriders(self):
        cluster = self.make_cluster(
            adversary="coalition", adversary_params=(("launder", "1.5"),)
        )
        for nid in cluster.freerider_ids:
            behavior = cluster.nodes[nid].behavior
            assert isinstance(behavior, LaunderingColluderBehavior)
            assert behavior.launder == 1.5
        for nid in cluster.honest_ids:
            assert not isinstance(cluster.nodes[nid].behavior,
                                  LaunderingColluderBehavior)

    def test_policy_describe_is_exposed(self):
        cluster = self.make_cluster(adversary="equivocator")
        assert cluster.adversary_policy.describe()["policy"] == "equivocator"

    def test_unknown_adversary_fails_fast(self):
        with pytest.raises(ValueError, match="available"):
            self.make_cluster(adversary="not-a-policy")

    def test_no_adversary_leaves_legacy_paths_untouched(self):
        cluster = self.make_cluster()
        assert cluster.adversary_policy is None
