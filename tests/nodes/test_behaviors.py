"""Tests for the behaviour policies (honest / freerider / colluder)."""

import numpy as np
import pytest

from repro.config import FreeriderDegree, planetlab_params
from repro.membership.full import FullMembership
from repro.nodes.behavior import HonestBehavior
from repro.nodes.colluder import Coalition, ColludingBehavior
from repro.nodes.freerider import FreeriderBehavior


class StubNode:
    """The minimal node surface behaviours touch."""

    def __init__(self, node_id, rng, sampler, fanout=7):
        self.node_id = node_id
        self.rng = rng
        self.sampler = sampler
        gossip, _ = planetlab_params()
        from dataclasses import replace

        self.gossip = replace(gossip, n=100, fanout=fanout)


@pytest.fixture
def stub(rng):
    sampler = FullMembership(rng, range(100))
    return StubNode(0, rng, sampler)


class TestHonest:
    def test_selects_full_fanout(self, stub):
        behavior = HonestBehavior()
        behavior.bind(stub)
        assert len(behavior.select_partners(7)) == 7

    def test_identity_hooks(self, stub):
        behavior = HonestBehavior()
        behavior.bind(stub)
        by_server = {1: [10, 11], 2: [12]}
        assert behavior.propose_filter(by_server) == by_server
        assert behavior.serve_filter([1, 2, 3]) == [1, 2, 3]
        assert behavior.ack_partners((4, 5)) == (4, 5)
        assert behavior.witness_valid(9, True) is True
        assert behavior.witness_valid(9, False) is False
        assert behavior.should_blame(9) is True
        assert behavior.serve_origin() == 0
        assert behavior.period_stride() == 1
        assert behavior.poll_acknowledge(9, False) is False
        assert behavior.poll_confirm_senders(9, [1, 2]) == [1, 2]
        snapshot = ((1, (2, 3), (4,)),)
        assert behavior.history_snapshot(snapshot) == snapshot


class TestFreerider:
    def test_reduced_fanout(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(delta1=1 / 7, delta2=0, delta3=0))
        behavior.bind(stub)
        assert len(behavior.select_partners(7)) == 6

    def test_full_delta1_contacts_nobody(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(delta1=1.0, delta2=0, delta3=0))
        behavior.bind(stub)
        assert behavior.select_partners(7) == []

    def test_propose_filter_drops_whole_servers(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(0, 0.5, 0))
        behavior.bind(stub)
        by_server = {i: [i * 10] for i in range(200)}
        kept = behavior.propose_filter(by_server)
        # Servers are dropped atomically (footnote 1: fewest sources).
        assert all(v == by_server[k] for k, v in kept.items())
        assert len(kept) == pytest.approx(100, abs=30)

    def test_propose_filter_zero_delta_is_identity(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(0, 0, 0))
        behavior.bind(stub)
        by_server = {1: [2]}
        assert behavior.propose_filter(by_server) is by_server

    def test_serve_filter_rate(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(0, 0, 0.3))
        behavior.bind(stub)
        requested = list(range(10_000))
        served = behavior.serve_filter(requested)
        assert len(served) == pytest.approx(7_000, abs=300)

    def test_period_stride(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(0, 0, 0), period_stride=3)
        behavior.bind(stub)
        assert behavior.period_stride() == 3

    def test_still_verifies(self, stub):
        behavior = FreeriderBehavior(FreeriderDegree(0.1, 0.1, 0.1))
        assert behavior.verifies


class TestCoalition:
    def test_membership(self):
        coalition = Coalition([1, 2, 3])
        assert 2 in coalition
        assert 9 not in coalition
        assert sorted(coalition.others(2)) == [1, 3]
        assert len(coalition) == 3


class TestColluder:
    def _behavior(self, stub, bias=0.5, **kwargs):
        coalition = Coalition(range(10))  # ids 0..9 collude
        behavior = ColludingBehavior(
            FreeriderDegree(0, 0, 0), coalition, bias=bias, **kwargs
        )
        behavior.bind(stub)
        return behavior, coalition

    def test_bias_prefers_colluders(self, stub):
        behavior, coalition = self._behavior(stub, bias=0.8)
        colluder_picks = 0
        total = 0
        for _ in range(300):
            partners = behavior.select_partners(7)
            total += len(partners)
            colluder_picks += sum(1 for p in partners if p in coalition)
        assert colluder_picks / total > 0.5

    def test_zero_bias_behaves_like_uniform(self, stub):
        behavior, coalition = self._behavior(stub, bias=0.0)
        partners = behavior.select_partners(7)
        assert len(partners) == 7

    def test_partners_distinct(self, stub):
        behavior, _ = self._behavior(stub, bias=0.9)
        for _ in range(100):
            partners = behavior.select_partners(7)
            assert len(set(partners)) == len(partners)

    def test_covers_up_witnesses(self, stub):
        behavior, _ = self._behavior(stub)
        assert behavior.witness_valid(3, truthful=False) is True  # colluder
        assert behavior.witness_valid(50, truthful=False) is False  # honest

    def test_never_blames_coalition(self, stub):
        behavior, _ = self._behavior(stub)
        assert behavior.should_blame(3) is False
        assert behavior.should_blame(50) is True

    def test_poll_cover_up(self, stub):
        behavior, _ = self._behavior(stub)
        assert behavior.poll_acknowledge(3, truthful=False) is True
        assert behavior.poll_acknowledge(50, truthful=False) is False

    def test_poll_confirm_senders_fabricated_when_empty(self, stub):
        behavior, _ = self._behavior(stub)
        fabricated = behavior.poll_confirm_senders(3, [])
        assert fabricated  # plausible non-empty answer for a colluder
        truthful = behavior.poll_confirm_senders(50, [42])
        assert truthful == [42]

    def test_mitm_ack_names_colluders(self, stub):
        behavior, coalition = self._behavior(stub, man_in_the_middle=True)
        forged = behavior.ack_partners((50, 51, 52))
        assert forged
        assert all(p in coalition for p in forged)

    def test_mitm_spoofs_serve_origin(self, stub):
        behavior, coalition = self._behavior(stub, man_in_the_middle=True)
        origins = {behavior.serve_origin() for _ in range(50)}
        assert origins <= set(coalition.members) - {0}

    def test_no_mitm_keeps_identity(self, stub):
        behavior, _ = self._behavior(stub, man_in_the_middle=False)
        assert behavior.serve_origin() == 0
        assert behavior.ack_partners((50, 51)) == (50, 51)

    def test_forged_history_replaces_partners(self, stub):
        behavior, coalition = self._behavior(stub, forge_history=True)
        snapshot = ((1, (1, 2, 3), (9,)), (2, (4, 5, 6), (10,)))
        forged = behavior.history_snapshot(snapshot)
        assert len(forged) == 2
        for (period, partners, chunks), (fp, fpartners, fchunks) in zip(snapshot, forged):
            assert fp == period
            assert fchunks == chunks
            assert len(fpartners) == len(partners)
