"""StageProbe bookkeeping with a synthetic (transport-free) frame flow."""

import pytest

from repro.loadgen import ArrivalSchedule, RateStep, StageProbe
from repro.loadgen.probe import decode_seq, encode_seq
from repro.wire import Propose, Serve


def frame(seq, origin=-1):
    return Serve(
        proposal_id=encode_seq(seq), chunk_id=1 << 20, payload_size=1, origin=origin
    )


def probe_for(rate=100.0, phases=2):
    steps = [RateStep(rate=rate, duration=1.0) for _ in range(phases)]
    probe = StageProbe(ArrivalSchedule(steps, seed=0))
    probe.begin(0.0)
    return probe


class TestSeqEncoding:
    def test_roundtrip(self):
        for seq in (0, 1, 17, 10_000):
            assert decode_seq(frame(seq)) == seq

    def test_real_proposal_ids_are_not_ours(self):
        # Real protocol proposal ids count up from 0 — never decoded.
        for proposal_id in (0, 1, 500):
            serve = Serve(proposal_id=proposal_id, chunk_id=3, payload_size=1, origin=2)
            assert decode_seq(serve) is None

    def test_non_serve_messages_ignored(self):
        assert decode_seq(Propose(proposal_id=0, chunk_ids=(1,))) is None
        assert decode_seq("garbage") is None
        assert decode_seq(None) is None


class TestStageAccounting:
    def test_full_frame_lifecycle(self):
        probe = probe_for()
        seq = 5
        t_sched = probe.schedule.times[seq]
        probe.on_sent(seq, t_sched + 0.001, accepted=True)
        message = frame(seq)
        probe.on_ingest(src=-2, message=message, t_ingest=t_sched + 0.002, accepted=True)
        batch = [(t_sched + 0.002, 0, -2, message)]
        probe.on_dispatched(batch, 0, 1, t_sched + 0.003, t_sched + 0.004)

        assert probe.sent[0] == 1
        assert probe.ingested[0] == 1
        assert probe.done[0] == 1
        stage = probe.histograms[0]
        assert stage["ingress"].count == 1
        assert stage["queue"].count == 1
        assert stage["dispatch"].count == 1
        assert stage["sojourn"].count == 1
        # sojourn anchors at the *scheduled* time: 4ms end to end.
        assert stage["sojourn"].max_recorded == pytest.approx(0.004)
        assert stage["queue"].max_recorded == pytest.approx(0.001)

    def test_refused_send_counts_without_latency_sample(self):
        probe = probe_for()
        probe.on_sent(3, 0.5, accepted=False)
        assert probe.refused[0] == 1
        assert probe.sent[0] == 0
        assert probe.histograms[0]["ingress"].count == 0

    def test_rejected_ingest_counted_not_recorded(self):
        probe = probe_for()
        probe.on_sent(3, 0.01, accepted=True)
        probe.on_ingest(src=-2, message=frame(3), t_ingest=0.02, accepted=False)
        assert probe.rejected[0] == 1
        assert probe.ingested[0] == 0
        assert probe.histograms[0]["ingress"].count == 0

    def test_ingest_without_send_timestamp_skips_ingress_histogram(self):
        # A frame can reach ingest without a recorded send time (probe
        # attached mid-flight); counters advance, no bogus sample.
        probe = probe_for()
        probe.on_ingest(src=-2, message=frame(7), t_ingest=0.1, accepted=True)
        assert probe.ingested[0] == 1
        assert probe.histograms[0]["ingress"].count == 0

    def test_eviction_attributed_to_phase(self):
        probe = probe_for(rate=100.0, phases=2)
        seq_phase1 = probe.schedule.phase_counts()[0] + 3
        probe.on_evicted((0.0, 0, -2, frame(seq_phase1)))
        assert probe.evicted == [0, 1]
        # Foreign entries in the queue are not ours to count.
        probe.on_evicted((0.0, 0, 4, Serve(proposal_id=9, chunk_id=1, payload_size=1, origin=4)))
        assert probe.evicted == [0, 1]

    def test_dispatch_ignores_protocol_traffic_in_batch(self):
        probe = probe_for()
        ours = frame(0)
        theirs = Serve(proposal_id=2, chunk_id=7, payload_size=1, origin=3)
        batch = [(0.01, 0, -2, ours), (0.01, 0, 3, theirs)]
        probe.on_dispatched(batch, 0, 2, 0.02, 0.03)
        assert probe.done[0] == 1
        assert probe.histograms[0]["queue"].count == 1


class TestReports:
    def _run_phase(self, probe, phase_index, drop_every=0):
        lo = sum(probe.schedule.phase_counts()[:phase_index])
        hi = lo + probe.schedule.phase_counts()[phase_index]
        for seq in range(lo, hi):
            t = float(probe.schedule.times[seq])
            probe.on_sent(seq, t, accepted=True)
            message = frame(seq)
            if drop_every and (seq - lo) % drop_every == 0:
                probe.on_ingest(src=-2, message=message, t_ingest=t + 1e-4, accepted=False)
                continue
            probe.on_ingest(src=-2, message=message, t_ingest=t + 1e-4, accepted=True)
            batch = [(t + 1e-4, 0, -2, message)]
            probe.on_dispatched(batch, 0, 1, t + 2e-4, t + 3e-4)

    def test_phase_report_counters_and_goodput(self):
        probe = probe_for(rate=100.0, phases=2)
        self._run_phase(probe, 0)
        self._run_phase(probe, 1, drop_every=4)
        report = probe.phase_report()
        assert report[0]["done"] == 100
        assert report[0]["goodput_rate"] == pytest.approx(100.0)
        assert report[1]["rejected"] == 25
        assert report[1]["done"] == 75
        assert set(report[0]["stages"]) == {"ingress", "queue", "dispatch", "sojourn"}
        assert report[0]["stages"]["sojourn"]["p99"] == pytest.approx(3e-4, rel=0.1)

    def test_overall_report_merges_phases(self):
        probe = probe_for(rate=100.0, phases=2)
        self._run_phase(probe, 0)
        self._run_phase(probe, 1)
        overall = probe.overall_report()
        assert overall["offered"] == 200
        assert overall["done"] == 200
        merged = probe.merged_stage("sojourn")
        assert merged.count == 200
        assert overall["stage_means"]["queue"] == pytest.approx(1e-4, rel=0.1)
