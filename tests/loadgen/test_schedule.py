"""Arrival schedules: determinism, phase accounting, rate ladders.

The whole open-loop design rests on the schedule being a pure function
of ``(steps, seed, arrivals)`` — same inputs, bit-identical arrival
times on any machine — so determinism is the first property pinned.
"""

import numpy as np
import pytest

from repro.loadgen import ArrivalSchedule, RateStep, rate_ladder


def ladder():
    return rate_ladder(start=100.0, step=50.0, count=4, duration=2.0)


class TestRateLadder:
    def test_arithmetic_progression(self):
        steps = ladder()
        assert [s.rate for s in steps] == [100.0, 150.0, 200.0, 250.0]
        assert all(s.duration == 2.0 for s in steps)

    def test_flat_ladder_allowed(self):
        steps = rate_ladder(start=300.0, step=0.0, count=3, duration=1.0)
        assert [s.rate for s in steps] == [300.0, 300.0, 300.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_ladder(start=0.0, step=10.0, count=2, duration=1.0)
        with pytest.raises(ValueError):
            rate_ladder(start=10.0, step=-1.0, count=2, duration=1.0)
        with pytest.raises(ValueError):
            rate_ladder(start=10.0, step=1.0, count=0, duration=1.0)
        with pytest.raises(ValueError):
            RateStep(rate=10.0, duration=0.0)


class TestDeterminism:
    @pytest.mark.parametrize("arrivals", ["uniform", "poisson"])
    def test_same_seed_same_schedule(self, arrivals):
        a = ArrivalSchedule(ladder(), seed=7, arrivals=arrivals)
        b = ArrivalSchedule(ladder(), seed=7, arrivals=arrivals)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.phase_of, b.phase_of)

    def test_different_seed_different_poisson_schedule(self):
        a = ArrivalSchedule(ladder(), seed=7, arrivals="poisson")
        b = ArrivalSchedule(ladder(), seed=8, arrivals="poisson")
        assert not np.array_equal(a.times, b.times)

    def test_per_phase_seeding_is_independent_of_earlier_phases(self):
        # Phase i's arrivals depend only on (seed, i), so reusing the
        # same rung at the same index inside a longer ladder reproduces
        # the same offsets — partial sweep re-runs line up exactly.
        short = ArrivalSchedule(ladder()[:2], seed=3, arrivals="poisson")
        long = ArrivalSchedule(ladder(), seed=3, arrivals="poisson")
        assert np.array_equal(short.phases[1].times, long.phases[1].times)


class TestStructure:
    def test_uniform_counts_and_spacing(self):
        schedule = ArrivalSchedule(ladder(), seed=0, arrivals="uniform")
        assert schedule.phase_counts() == [200, 300, 400, 500]
        assert schedule.total_count == 1400
        assert schedule.total_duration == pytest.approx(8.0)
        # Constant gap inside each phase.
        gaps = np.diff(schedule.phases[0].times)
        assert np.allclose(gaps, 1.0 / 100.0)

    def test_times_strictly_increasing_and_inside_phases(self):
        for arrivals in ("uniform", "poisson"):
            schedule = ArrivalSchedule(ladder(), seed=5, arrivals=arrivals)
            assert np.all(np.diff(schedule.times) > 0.0)
            for phase in schedule.phases:
                assert np.all(phase.times >= phase.start)
                assert np.all(phase.times < phase.end)

    def test_phase_of_matches_phase_partition(self):
        schedule = ArrivalSchedule(ladder(), seed=1, arrivals="poisson")
        counts = np.bincount(schedule.phase_of, minlength=len(schedule.phases))
        assert list(counts) == schedule.phase_counts()

    def test_poisson_count_near_expectation(self):
        steps = [RateStep(rate=1000.0, duration=4.0)]
        schedule = ArrivalSchedule(steps, seed=11, arrivals="poisson")
        # 4000 expected arrivals, sd ~63; ±5 sd is a deterministic check
        # at a fixed seed, not a flaky statistical one.
        assert 3700 <= schedule.total_count <= 4300

    def test_describe_is_json_safe(self):
        import json

        schedule = ArrivalSchedule(ladder(), seed=0)
        payload = json.loads(json.dumps(schedule.describe()))
        assert payload["total_count"] == schedule.total_count
        assert len(payload["phases"]) == 4
        assert payload["phases"][2]["rate"] == 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSchedule([], seed=0)
        with pytest.raises(ValueError):
            ArrivalSchedule(ladder(), arrivals="bursty")
