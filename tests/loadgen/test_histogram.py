"""The log-linear latency histogram: accuracy, merging, serialisation.

The load-bearing property is the percentile error bound: the reported
percentile must be >= the exact (nearest-rank, sorted-array) percentile
and within one bucket width of it.  Merging must be exact — recording a
stream into shards and merging the shards must equal recording the
whole stream into one histogram — because the probe aggregates
per-phase shards into the overall report.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen import HISTOGRAM_SCHEMA, LatencyHistogram
from repro.metrics import exact_percentile

# Small geometry so Hypothesis runs stay fast; the bound must hold for
# any geometry, so a couple of parametrised cases pin the default too.
SMALL = dict(min_value=1e-4, max_value=10.0, subbuckets=8)

samples = st.lists(
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)
quantiles = st.sampled_from([0.0, 50.0, 90.0, 99.0, 99.9, 100.0])


class TestBucketGeometry:
    def test_underflow_and_overflow_buckets(self):
        hist = LatencyHistogram(**SMALL)
        assert hist.bucket_index(0.0) == 0
        assert hist.bucket_index(-1.0) == 0
        assert hist.bucket_index(hist.min_value) == 0
        assert hist.bucket_index(hist.max_value) == len(hist.counts) - 1
        assert hist.bucket_index(1e9) == len(hist.counts) - 1

    def test_bucket_bounds_tile_the_range(self):
        hist = LatencyHistogram(**SMALL)
        # Inner buckets tile [min_value, ...) contiguously with no gaps.
        previous_upper = hist.min_value
        for index in range(1, len(hist.counts) - 1):
            lower, upper = hist.bucket_bounds(index)
            assert lower == pytest.approx(previous_upper)
            assert upper > lower
            previous_upper = upper
        assert previous_upper >= hist.max_value

    @given(
        value=st.floats(
            min_value=1e-4, max_value=10.0, allow_nan=False, allow_infinity=False
        )
    )
    def test_every_value_lands_inside_its_bucket(self, value):
        hist = LatencyHistogram(**SMALL)
        index = hist.bucket_index(value)
        lower, upper = hist.bucket_bounds(index)
        assert lower <= value <= upper or index == 0

    def test_bucket_edge_values_stay_in_range(self):
        hist = LatencyHistogram(**SMALL)
        # Exact bucket edges (both sides of each boundary) must resolve
        # to a bucket whose bounds contain them up to float rounding —
        # an edge may land one ULP across the seam, never further.
        slop = 1e-12
        for index in range(1, len(hist.counts) - 1):
            lower, upper = hist.bucket_bounds(index)
            for value in (lower, math.nextafter(upper, 0.0)):
                where = hist.bucket_index(value)
                got_lower, got_upper = hist.bucket_bounds(where)
                assert got_lower * (1.0 - slop) <= value <= got_upper * (1.0 + slop)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(subbuckets=0)


class TestPercentiles:
    def test_empty_histogram_is_nan(self):
        hist = LatencyHistogram(**SMALL)
        assert math.isnan(hist.percentile(50.0))
        assert math.isnan(hist.mean)
        assert all(math.isnan(v) for v in hist.percentiles().values())

    def test_single_sample_reports_itself(self):
        hist = LatencyHistogram(**SMALL)
        hist.record(0.25)
        for q in (0.0, 50.0, 99.0, 100.0):
            value = hist.percentile(q)
            assert value <= 0.25  # clamped to max_recorded
            assert value >= hist.bucket_bounds(hist.bucket_index(0.25))[0]

    @settings(max_examples=200, deadline=None)
    @given(values=samples, q=quantiles)
    def test_percentile_within_one_bucket_of_sorted_reference(self, values, q):
        hist = LatencyHistogram(**SMALL)
        hist.record_many(values)
        exact = exact_percentile(values, q)
        reported = hist.percentile(q)
        index = hist.bucket_index(exact)
        lower, upper = hist.bucket_bounds(index)
        # Reported value never understates the exact percentile by more
        # than the containing bucket's lower edge, and never overstates
        # it past the bucket's upper edge (overflow clamps to max).
        assert reported >= lower
        assert reported <= min(upper, max(values)) or math.isinf(upper)

    def test_percentile_bounds_on_default_geometry(self):
        hist = LatencyHistogram()
        values = [((i * 2654435761) % 100_000) / 100_000 * 2.0 for i in range(10_000)]
        hist.record_many(values)
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = exact_percentile(values, q)
            reported = hist.percentile(q)
            width = hist.bucket_width(hist.bucket_index(exact))
            assert exact <= reported <= exact + width

    def test_percentile_validates_range(self):
        hist = LatencyHistogram(**SMALL)
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)


class TestMerge:
    @settings(max_examples=100, deadline=None)
    @given(a=samples, b=samples, c=samples)
    def test_merge_equals_recording_everything(self, a, b, c):
        whole = LatencyHistogram(**SMALL)
        whole.record_many(a + b + c)
        shards = []
        for chunk in (a, b, c):
            shard = LatencyHistogram(**SMALL)
            shard.record_many(chunk)
            shards.append(shard)
        merged = LatencyHistogram.merged(shards)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.min_recorded == whole.min_recorded
        assert merged.max_recorded == whole.max_recorded

    @settings(max_examples=100, deadline=None)
    @given(a=samples, b=samples, c=samples)
    def test_merge_is_associative(self, a, b, c):
        def shard(chunk):
            hist = LatencyHistogram(**SMALL)
            hist.record_many(chunk)
            return hist

        left = shard(a).merge(shard(b)).merge(shard(c))
        right = shard(a).merge(shard(b).merge(shard(c)))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.total == pytest.approx(right.total)

    def test_merge_rejects_geometry_mismatch(self):
        with pytest.raises(ValueError, match="different geometry"):
            LatencyHistogram(subbuckets=32).merge(LatencyHistogram(subbuckets=16))

    def test_copy_is_independent(self):
        hist = LatencyHistogram(**SMALL)
        hist.record(0.5)
        clone = hist.copy()
        clone.record(1.0)
        assert hist.count == 1
        assert clone.count == 2

    def test_merged_of_nothing_is_empty_default(self):
        merged = LatencyHistogram.merged([])
        assert merged.count == 0


class TestSerialisation:
    @settings(max_examples=50, deadline=None)
    @given(values=samples)
    def test_roundtrip_preserves_state(self, values):
        hist = LatencyHistogram(**SMALL)
        hist.record_many(values)
        payload = json.loads(json.dumps(hist.to_dict()))
        restored = LatencyHistogram.from_dict(payload)
        assert restored.counts == hist.counts
        assert restored.count == hist.count
        assert restored.min_recorded == hist.min_recorded
        assert restored.max_recorded == hist.max_recorded
        assert restored.percentile(99.0) == hist.percentile(99.0)

    def test_schema_tag_present_and_checked(self):
        hist = LatencyHistogram(**SMALL)
        assert hist.to_dict()["schema"] == HISTOGRAM_SCHEMA
        with pytest.raises(ValueError, match="unsupported histogram schema"):
            LatencyHistogram.from_dict({"schema": "bogus/9"})

    def test_empty_histogram_serialises_none_extremes(self):
        payload = LatencyHistogram(**SMALL).to_dict()
        assert payload["min_recorded"] is None
        assert payload["max_recorded"] is None
        assert payload["counts"] == {}
