"""Knee detection over (offered, goodput) phase pairs."""

import json

import pytest

from repro.loadgen import detect_knee


class TestDetectKnee:
    def test_clean_knee_in_the_middle(self):
        report = detect_knee([100, 200, 300, 400], [99, 198, 250, 260])
        assert report.saturated
        assert report.first_saturated_phase == 2
        assert report.knee_phase == 1
        assert report.knee_rate == 200
        assert report.ratios[0] == pytest.approx(0.99)

    def test_never_saturates(self):
        report = detect_knee([100, 200], [99, 195])
        assert not report.saturated
        assert report.knee_phase == 1  # last phase still tracked
        assert report.knee_rate is None
        assert report.first_saturated_phase is None

    def test_saturated_from_the_first_phase(self):
        report = detect_knee([100, 200], [10, 20])
        assert report.saturated
        assert report.first_saturated_phase == 0
        assert report.knee_phase is None
        assert report.knee_rate is None

    def test_knee_is_first_failure_even_if_later_phases_recover(self):
        # A transient dip counts: the knee marks the first departure.
        report = detect_knee([100, 200, 300], [99, 100, 299])
        assert report.first_saturated_phase == 1
        assert report.knee_rate == 100

    def test_tolerance_boundary_is_inclusive(self):
        report = detect_knee([100], [90], tolerance=0.9)
        assert not report.saturated
        report = detect_knee([100], [89.9], tolerance=0.9)
        assert report.saturated

    def test_zero_offered_counts_as_saturated(self):
        report = detect_knee([0.0, 100.0], [0.0, 100.0])
        assert report.saturated
        assert report.first_saturated_phase == 0

    def test_to_dict_json_safe_and_extras_merged(self):
        report = detect_knee([100, 200], [99, 150])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["saturated"] is True
        assert payload["knee_rate"] == 100
        assert payload["ratios"] == [0.99, 0.75]

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_knee([100], [99, 98])
        with pytest.raises(ValueError):
            detect_knee([], [])
        with pytest.raises(ValueError):
            detect_knee([100], [99], tolerance=0.0)
        with pytest.raises(ValueError):
            detect_knee([100], [99], tolerance=1.5)
