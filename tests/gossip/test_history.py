"""Tests for the bounded local history log."""

import pytest
from hypothesis import given, strategies as st

from repro.gossip.history import LocalHistory


@pytest.fixture
def history():
    h = LocalHistory(max_periods=5)
    h.begin_period(1)
    return h


class TestRecording:
    def test_requires_open_period(self):
        h = LocalHistory(5)
        with pytest.raises(ValueError):
            h.record_fanin(3)

    def test_proposal(self, history):
        history.record_proposal((1, 2, 3), (10, 11))
        records = history.records()
        assert records[-1].proposal == ((1, 2, 3), (10, 11))

    def test_fanin(self, history):
        history.record_fanin(7)
        history.record_fanin(7)
        assert history.fanin_multiset().count(7) == 2

    def test_received_proposals_accumulate(self, history):
        history.record_received_proposal(4, (1, 2))
        history.record_received_proposal(4, (3,))
        assert history.was_proposed_by(4, (1, 2, 3))

    def test_confirm_senders(self, history):
        history.record_confirm_sender(proposer=9, verifier=2)
        history.record_confirm_sender(proposer=9, verifier=3)
        assert history.confirm_senders_about(9) == [2, 3]
        assert history.confirm_senders_about(8) == []


class TestBounding:
    def test_ring_evicts_old_periods(self):
        h = LocalHistory(max_periods=3)
        for period in range(1, 10):
            h.begin_period(period)
            h.record_proposal((period,), (period,))
        records = h.records()
        assert len(records) == 3
        assert [r.period for r in records] == [7, 8, 9]

    def test_window_query(self):
        h = LocalHistory(max_periods=10)
        for period in range(1, 8):
            h.begin_period(period)
            h.record_proposal((period,), ())
        assert [r.period for r in h.records(last=2)] == [6, 7]

    @given(st.integers(min_value=1, max_value=40))
    def test_memory_bound_invariant(self, periods):
        h = LocalHistory(max_periods=4)
        for p in range(periods):
            h.begin_period(p)
        assert len(h) == min(4, periods)


class TestMultisets:
    def test_fanout_multiset_counts_partners(self):
        h = LocalHistory(10)
        h.begin_period(1)
        h.record_proposal((1, 2), (100,))
        h.begin_period(2)
        h.record_proposal((2, 3), (101,))
        fanout = h.fanout_multiset()
        assert fanout.count(2) == 2
        assert fanout.count(1) == fanout.count(3) == 1
        assert len(fanout) == 4

    def test_fanout_window(self):
        h = LocalHistory(10)
        for p in range(1, 6):
            h.begin_period(p)
            h.record_proposal((p,), ())
        assert sorted(h.fanout_multiset(last=2).elements()) == [4, 5]

    def test_proposal_count_detects_stretched_period(self):
        # A node that proposes every other period has half the proposals
        # — §5.3's gossip-period check.
        h = LocalHistory(20)
        for p in range(1, 11):
            h.begin_period(p)
            if p % 2 == 0:
                h.record_proposal((p,), (p,))
        assert h.proposal_count() == 5
        assert h.proposal_count(last=4) == 2


class TestWitnessQueries:
    def test_was_proposed_by_requires_all_chunks(self, history):
        history.record_received_proposal(4, (1, 2))
        assert history.was_proposed_by(4, (1,))
        assert not history.was_proposed_by(4, (1, 3))

    def test_was_proposed_by_window(self):
        h = LocalHistory(10)
        h.begin_period(1)
        h.record_received_proposal(4, (1,))
        for p in range(2, 6):
            h.begin_period(p)
        assert h.was_proposed_by(4, (1,))
        assert not h.was_proposed_by(4, (1,), last=2)

    def test_received_any_proposal_from(self, history):
        history.record_received_proposal(4, (1,))
        assert history.received_any_proposal_from(4)
        assert not history.received_any_proposal_from(5)


class TestSnapshot:
    def test_snapshot_form(self):
        h = LocalHistory(10)
        h.begin_period(1)
        h.record_proposal((1, 2), (5,))
        h.begin_period(2)  # no proposal this period
        h.begin_period(3)
        h.record_proposal((3,), (6,))
        snapshot = h.proposals_snapshot()
        assert snapshot == ((1, (1, 2), (5,)), (3, (3,), (6,)))

    def test_current_period(self):
        h = LocalHistory(5)
        assert h.current_period is None
        h.begin_period(9)
        assert h.current_period == 9


class TestRingWraparound:
    """Pin the flattened ring's behaviour across slot reuse."""

    def test_indexes_forget_evicted_proposers(self):
        h = LocalHistory(max_periods=3)
        h.begin_period(1)
        h.record_received_proposal(42, (1, 2))
        h.record_confirm_sender(proposer=42, verifier=7)
        assert h.was_proposed_by(42, (1,))
        assert h.confirm_senders_about(42) == [7]
        for period in range(2, 6):  # wraps past period 1
            h.begin_period(period)
        assert not h.was_proposed_by(42, (1,))
        assert not h.received_any_proposal_from(42)
        assert h.confirm_senders_about(42) == []

    def test_incremental_fanout_matches_rescan_after_wrap(self):
        h = LocalHistory(max_periods=4)
        for period in range(1, 12):
            h.begin_period(period)
            if period % 3 != 0:  # leave holes: periods without proposals
                h.record_proposal((period % 5, (period + 1) % 5), (period,))
        expected = {}
        for record in h.records():
            if record.proposal is not None:
                for partner in record.proposal[0]:
                    expected[partner] = expected.get(partner, 0) + 1
        fanout = h.fanout_multiset()
        assert dict(fanout.items()) == expected
        assert h.proposal_count() == sum(
            1 for r in h.records() if r.proposal is not None
        )

    def test_window_queries_after_many_wraps(self):
        h = LocalHistory(max_periods=5)
        for period in range(1, 101):
            h.begin_period(period)
            h.record_received_proposal(1, (period,))
        # Only the last 5 periods' chunks are visible, windows included.
        assert h.was_proposed_by(1, (100,))
        assert h.was_proposed_by(1, (96,))
        assert not h.was_proposed_by(1, (95,))
        assert h.was_proposed_by(1, (99,), last=2)
        assert not h.was_proposed_by(1, (98,), last=2)

    def test_records_are_reused_in_place(self):
        h = LocalHistory(max_periods=2)
        h.begin_period(1)
        first = h.records()[-1]
        h.begin_period(2)
        h.begin_period(3)  # wraps onto the slot of period 1
        reused = h.records()[-1]
        assert reused is first
        assert reused.period == 3
        assert reused.proposal is None
        assert reused.fanin == []
        assert reused.received_proposals == {}
        assert reused.confirm_senders == {}

    def test_fanin_lazy_scan_respects_window(self):
        h = LocalHistory(max_periods=3)
        for period in range(1, 6):
            h.begin_period(period)
            h.record_fanin(period)
        assert sorted(h.fanin_multiset().elements()) == [3, 4, 5]
        assert sorted(h.fanin_multiset(last=1).elements()) == [5]

    def test_confirm_senders_window_after_wrap(self):
        h = LocalHistory(max_periods=4)
        for period in range(1, 9):
            h.begin_period(period)
            h.record_confirm_sender(proposer=2, verifier=period)
        assert h.confirm_senders_about(2) == [5, 6, 7, 8]
        assert h.confirm_senders_about(2, last=2) == [7, 8]
