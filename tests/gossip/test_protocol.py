"""Protocol-node integration tests on a tiny simulated deployment.

These drive real :class:`GossipNode` objects through the simulator and
assert three-phase dissemination semantics (§3) and the LiFTinG hooks.
"""

import pytest

from repro.gossip.chunks import SOURCE_ID
from repro.wire import Ack, Blame, Confirm, Propose, Request, Serve


@pytest.fixture
def running_cluster(small_cluster_factory):
    cluster = small_cluster_factory(loss_rate=0.0)
    cluster.run(until=6.0)
    return cluster


class TestDissemination:
    def test_chunks_reach_almost_everyone(self, running_cluster):
        emitted = running_cluster.source.emitted
        assert emitted > 0
        # Chunks emitted early should be almost everywhere by now.  With
        # a small fanout, infect-and-die gossip misses a node on a few
        # percent of chunks — that residue is expected protocol
        # behaviour, not a bug (the stream tolerates it).
        early = [c.chunk_id for c in running_cluster.source.chunks if c.created_at < 2.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in running_cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.93
        assert min(ratios) > 0.6

    def test_infect_and_die_single_proposal_per_chunk(self, running_cluster):
        # Each node proposes a chunk at most once: total proposal entries
        # mentioning chunk c are bounded by n.
        from collections import Counter

        mentions = Counter()
        for node in running_cluster.nodes.values():
            seen = set()
            for record in node.history.records():
                if record.proposal:
                    for chunk in record.proposal[1]:
                        assert chunk not in seen, "chunk proposed twice by one node"
                        seen.add(chunk)
                    mentions.update(set(record.proposal[1]))

    def test_stats_track_activity(self, running_cluster):
        node = next(iter(running_cluster.nodes.values()))
        assert node.stats.proposals_received > 0
        assert node.stats.chunks_received > 0

    def test_requests_only_for_missing_chunks(self, running_cluster):
        # Duplicate serves should be rare when pending tracking works.
        total_received = sum(
            n.stats.chunks_received for n in running_cluster.nodes.values()
        )
        total_duplicates = sum(
            n.stats.duplicate_serves for n in running_cluster.nodes.values()
        )
        assert total_duplicates < 0.25 * total_received

    def test_fanin_logged_per_period(self, running_cluster):
        node = next(iter(running_cluster.nodes.values()))
        assert len(node.history.fanin_multiset()) > 0


class TestMessageFlow:
    def test_all_message_kinds_flow(self, running_cluster):
        kinds = set(running_cluster.trace.kinds())
        assert {"Propose", "Request", "Serve", "Ack", "Confirm", "ConfirmResponse"} <= kinds

    def test_invalid_request_ignored(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=2.0)
        node = cluster.nodes[0]
        served_before = node.stats.chunks_served
        # Requests are served synchronously; a request for a proposal id
        # that does not exist must not serve anything (§4.2).
        node.on_message(1, Request(proposal_id=999_999, chunk_ids=(0,)))
        assert node.stats.chunks_served == served_before

    def test_request_from_non_partner_ignored(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=3.0)
        # Find a node with a live proposal and a non-partner.
        for node in cluster.nodes.values():
            if node._sent_proposals:
                pid, record = next(iter(node._sent_proposals.items()))
                outsiders = [
                    n for n in cluster.node_ids
                    if n not in record.partners and n != node.node_id
                ]
                served_before = node.stats.chunks_served
                node.on_message(outsiders[0], Request(pid, tuple(record.chunk_ids)))
                assert node.stats.chunks_served == served_before
                return
        pytest.fail("no proposals found")

    def test_acks_sent_to_servers_not_source(self, running_cluster):
        # Ack messages exist, and none are addressed to the source (it is
        # registered on the network, so sends to it would be delivered).
        assert running_cluster.trace.sent_count("Ack") > 0


class TestLiftingDisabled:
    def test_no_verification_traffic(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.0)
        cluster.run(until=4.0)
        kinds = set(cluster.trace.kinds())
        assert "Ack" not in kinds
        assert "Confirm" not in kinds
        assert "Blame" not in kinds

    def test_dissemination_still_works(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.0)
        cluster.run(until=5.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 2.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.93

    def test_lost_serves_retried_without_engine(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.08)
        cluster.run(until=8.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 3.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.9


class TestScoresUnderLoss:
    def test_honest_scores_near_zero_without_loss(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, compensation=0.0)
        cluster.run(until=8.0)
        scores = list(cluster.scores().values())
        # No loss + no misbehaviour: blames stem only from rare timing
        # races; the population must sit essentially at zero.
        import numpy as np

        assert np.mean(scores) > -0.5
        assert np.median(scores) == 0.0

    def test_loss_generates_wrongful_blames(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.08, compensation=0.0)
        cluster.run(until=8.0)
        scores = cluster.scores()
        assert min(scores.values()) < 0.0


class TestDispatchTable:
    def test_unknown_message_type_silently_dropped(self, small_cluster_factory):
        cluster = small_cluster_factory()
        node = cluster.nodes[0]

        class Strange:
            pass

        node.on_message(1, Strange())  # must not raise

    def test_lifting_disabled_node_ignores_verification_messages(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False)
        node = cluster.nodes[0]
        assert node.engine is None
        node.on_message(1, Ack(chunk_ids=(1,), partners=(2,)))
        node.on_message(1, Blame(target=2, value=1.0))

    def test_dispatch_covers_every_wire_message(self, small_cluster_factory):
        """A fully-equipped node (manager + engine + auditor) must have a
        handler for every message class the protocol can receive."""
        import repro.wire as wire

        cluster = small_cluster_factory()
        node = cluster.nodes[0]
        assert node.manager is not None and node.engine is not None
        expected = {
            wire.Propose, wire.Request, wire.Serve, wire.Ack, wire.Confirm,
            wire.ConfirmResponse, wire.Blame, wire.ExpelVote, wire.ScoreQuery,
            wire.ScoreReply, wire.AuditRequest, wire.AuditResponse,
            wire.HistoryPollRequest, wire.HistoryPollResponse,
            wire.Ping, wire.PingAck, wire.PingReq, wire.MembershipUpdate,
        }
        assert set(node._dispatch.keys()) == expected
        # SWIM messages are only handled when a failure detector is
        # configured; without one they pre-seed to the drop path.
        for cls in (wire.Ping, wire.PingAck, wire.PingReq, wire.MembershipUpdate):
            assert node._dispatch[cls] is None


class TestOfferPruning:
    def _fresh_node(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        return cluster, cluster.nodes[0]

    def test_stale_entries_pruned_within_a_live_list(self, small_cluster_factory):
        cluster, node = self._fresh_node(small_cluster_factory)
        period = node.gossip.gossip_period
        cluster.sim.run(until=10 * period)
        now = node.clock()
        # one chunk with many stale offers and one fresh one
        node._offers[999] = [
            (src, 1, now - 5 * period) for src in range(2, 12)
        ] + [(1, 2, now)]
        node._prune_offers()
        assert node._offers[999] == [(1, 2, now)]

    def test_fully_stale_lists_dropped(self, small_cluster_factory):
        cluster, node = self._fresh_node(small_cluster_factory)
        period = node.gossip.gossip_period
        cluster.sim.run(until=10 * period)
        now = node.clock()
        node._offers[999] = [(2, 1, now - 5 * period)]
        node._offers[1000] = []
        node._prune_offers()
        assert 999 not in node._offers
        assert 1000 not in node._offers

    def test_per_chunk_offer_lists_bounded(self, small_cluster_factory):
        from repro.gossip.protocol import MAX_OFFERS_PER_CHUNK

        cluster, node = self._fresh_node(small_cluster_factory)
        chunk_id = 777_777  # never served: stays missing, keeps collecting offers
        for src in range(1, MAX_OFFERS_PER_CHUNK + 8):
            node.on_message(src, Propose(proposal_id=src, chunk_ids=(chunk_id,)))
        offers = node._offers[chunk_id]
        assert len(offers) == MAX_OFFERS_PER_CHUNK
        # the oldest entries were evicted, the newest kept
        assert offers[-1][0] == MAX_OFFERS_PER_CHUNK + 7
        assert offers[0][0] == 8
