"""Protocol-node integration tests on a tiny simulated deployment.

These drive real :class:`GossipNode` objects through the simulator and
assert three-phase dissemination semantics (§3) and the LiFTinG hooks.
"""

import pytest

from repro.gossip.chunks import SOURCE_ID
from repro.wire import Ack, Blame, Confirm, Propose, Request, Serve


@pytest.fixture
def running_cluster(small_cluster_factory):
    cluster = small_cluster_factory(loss_rate=0.0)
    cluster.run(until=6.0)
    return cluster


class TestDissemination:
    def test_chunks_reach_almost_everyone(self, running_cluster):
        emitted = running_cluster.source.emitted
        assert emitted > 0
        # Chunks emitted early should be almost everywhere by now.  With
        # a small fanout, infect-and-die gossip misses a node on a few
        # percent of chunks — that residue is expected protocol
        # behaviour, not a bug (the stream tolerates it).
        early = [c.chunk_id for c in running_cluster.source.chunks if c.created_at < 2.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in running_cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.93
        assert min(ratios) > 0.6

    def test_infect_and_die_single_proposal_per_chunk(self, running_cluster):
        # Each node proposes a chunk at most once: total proposal entries
        # mentioning chunk c are bounded by n.
        from collections import Counter

        mentions = Counter()
        for node in running_cluster.nodes.values():
            seen = set()
            for record in node.history.records():
                if record.proposal:
                    for chunk in record.proposal[1]:
                        assert chunk not in seen, "chunk proposed twice by one node"
                        seen.add(chunk)
                    mentions.update(set(record.proposal[1]))

    def test_stats_track_activity(self, running_cluster):
        node = next(iter(running_cluster.nodes.values()))
        assert node.stats.proposals_received > 0
        assert node.stats.chunks_received > 0

    def test_requests_only_for_missing_chunks(self, running_cluster):
        # Duplicate serves should be rare when pending tracking works.
        total_received = sum(
            n.stats.chunks_received for n in running_cluster.nodes.values()
        )
        total_duplicates = sum(
            n.stats.duplicate_serves for n in running_cluster.nodes.values()
        )
        assert total_duplicates < 0.25 * total_received

    def test_fanin_logged_per_period(self, running_cluster):
        node = next(iter(running_cluster.nodes.values()))
        assert len(node.history.fanin_multiset()) > 0


class TestMessageFlow:
    def test_all_message_kinds_flow(self, running_cluster):
        kinds = set(running_cluster.trace.kinds())
        assert {"Propose", "Request", "Serve", "Ack", "Confirm", "ConfirmResponse"} <= kinds

    def test_invalid_request_ignored(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=2.0)
        node = cluster.nodes[0]
        served_before = node.stats.chunks_served
        # Requests are served synchronously; a request for a proposal id
        # that does not exist must not serve anything (§4.2).
        node.on_message(1, Request(proposal_id=999_999, chunk_ids=(0,)))
        assert node.stats.chunks_served == served_before

    def test_request_from_non_partner_ignored(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=3.0)
        # Find a node with a live proposal and a non-partner.
        for node in cluster.nodes.values():
            if node._sent_proposals:
                pid, record = next(iter(node._sent_proposals.items()))
                outsiders = [
                    n for n in cluster.node_ids
                    if n not in record.partners and n != node.node_id
                ]
                served_before = node.stats.chunks_served
                node.on_message(outsiders[0], Request(pid, tuple(record.chunk_ids)))
                assert node.stats.chunks_served == served_before
                return
        pytest.fail("no proposals found")

    def test_acks_sent_to_servers_not_source(self, running_cluster):
        # Ack messages exist, and none are addressed to the source (it is
        # registered on the network, so sends to it would be delivered).
        assert running_cluster.trace.sent_count("Ack") > 0


class TestLiftingDisabled:
    def test_no_verification_traffic(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.0)
        cluster.run(until=4.0)
        kinds = set(cluster.trace.kinds())
        assert "Ack" not in kinds
        assert "Confirm" not in kinds
        assert "Blame" not in kinds

    def test_dissemination_still_works(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.0)
        cluster.run(until=5.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 2.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.93

    def test_lost_serves_retried_without_engine(self, small_cluster_factory):
        cluster = small_cluster_factory(lifting_enabled=False, loss_rate=0.08)
        cluster.run(until=8.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 3.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in cluster.nodes.values()
        ]
        assert sum(ratios) / len(ratios) > 0.9


class TestScoresUnderLoss:
    def test_honest_scores_near_zero_without_loss(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, compensation=0.0)
        cluster.run(until=8.0)
        scores = list(cluster.scores().values())
        # No loss + no misbehaviour: blames stem only from rare timing
        # races; the population must sit essentially at zero.
        import numpy as np

        assert np.mean(scores) > -0.5
        assert np.median(scores) == 0.0

    def test_loss_generates_wrongful_blames(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.08, compensation=0.0)
        cluster.run(until=8.0)
        scores = cluster.scores()
        assert min(scores.values()) < 0.0
