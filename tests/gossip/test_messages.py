"""Wire-size and category tests for every message type.

Byte-accurate sizes matter: Table 5's overhead percentages are computed
from them.
"""

import pytest

from repro.sim.trace import (
    CATEGORY_DATA,
    CATEGORY_REPUTATION,
    CATEGORY_VERIFICATION,
    message_category,
    message_kind,
)
from repro.wire import (
    Ack,
    AuditRequest,
    AuditResponse,
    Blame,
    Confirm,
    ConfirmResponse,
    ExpelVote,
    HistoryPollRequest,
    HistoryPollResponse,
    Propose,
    Request,
    ScoreQuery,
    ScoreReply,
    Serve,
    TCP_HEADER,
    UDP_HEADER,
)


class TestDataMessages:
    def test_propose_size_scales_with_chunks(self):
        empty = Propose(1, ())
        three = Propose(1, (1, 2, 3))
        assert three.wire_size() - empty.wire_size() == 3 * 4
        assert empty.wire_size() == UDP_HEADER + 1 + 4

    def test_request_size(self):
        assert Request(1, (9,)).wire_size() == UDP_HEADER + 1 + 4 + 4

    def test_serve_carries_payload(self):
        serve = Serve(proposal_id=1, chunk_id=2, payload_size=4096, origin=3)
        assert serve.wire_size() == UDP_HEADER + 1 + 4 + 4 + 6 + 4096

    def test_data_category(self):
        for msg in (Propose(1, ()), Request(1, ()), Serve(1, 2, 10, 3)):
            assert message_category(msg) == CATEGORY_DATA


class TestVerificationMessages:
    def test_ack_size(self):
        ack = Ack(chunk_ids=(1, 2), partners=(10, 11, 12))
        assert ack.wire_size() == UDP_HEADER + 1 + 2 * 4 + 3 * 6

    def test_confirm_size(self):
        confirm = Confirm(proposer=5, chunk_ids=(1, 2, 3))
        assert confirm.wire_size() == UDP_HEADER + 1 + 6 + 3 * 4

    def test_confirm_response_is_tiny(self):
        assert ConfirmResponse(proposer=5, valid=True).wire_size() == UDP_HEADER + 1 + 6 + 1

    def test_verification_category(self):
        for msg in (
            Ack((), ()),
            Confirm(1, ()),
            ConfirmResponse(1, True),
            AuditRequest(50),
            AuditResponse(()),
            HistoryPollRequest(1, 2, ()),
            HistoryPollResponse(1, 2, True, ()),
        ):
            assert message_category(msg) == CATEGORY_VERIFICATION


class TestReputationMessages:
    def test_blame_size_excludes_reason(self):
        short = Blame(target=1, value=7.0, reason="")
        long = Blame(target=1, value=7.0, reason="a very long diagnostic reason")
        assert short.wire_size() == long.wire_size() == UDP_HEADER + 1 + 6 + 4

    def test_reputation_category(self):
        for msg in (Blame(1, 1.0), ScoreQuery(1), ScoreReply(1, 0.0, True), ExpelVote(1)):
            assert message_category(msg) == CATEGORY_REPUTATION


class TestAuditMessages:
    def test_audit_request_uses_tcp_header(self):
        assert AuditRequest(50).wire_size() == TCP_HEADER + 1 + 4

    def test_audit_response_scales_with_history(self):
        empty = AuditResponse(())
        one = AuditResponse(((1, (10, 11), (100, 101, 102)),))
        assert one.wire_size() - empty.wire_size() == 4 + 2 * 6 + 3 * 4

    def test_history_poll_sizes(self):
        request = HistoryPollRequest(target=1, period=5, chunk_ids=(1, 2))
        assert request.wire_size() == TCP_HEADER + 1 + 6 + 4 + 2 * 4
        response = HistoryPollResponse(
            target=1, period=5, acknowledged=True, confirm_senders=(7, 8)
        )
        assert response.wire_size() == TCP_HEADER + 1 + 6 + 4 + 1 + 2 * 6


class TestTraceHelpers:
    def test_message_kind_is_class_name(self):
        assert message_kind(Propose(1, ())) == "Propose"

    def test_messages_are_hashable_and_frozen(self):
        msg = Propose(1, (1, 2))
        assert hash(msg) == hash(Propose(1, (1, 2)))
        with pytest.raises(Exception):
            msg.proposal_id = 2
