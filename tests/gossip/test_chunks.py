"""Tests for chunking and the stream source."""

import pytest

from repro.config import GossipParams
from repro.gossip.chunks import SOURCE_ID, Chunk, ChunkStore, StreamSource
from repro.membership.full import FullMembership
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.wire import Serve


class TestChunkStore:
    def test_add_and_lookup(self):
        store = ChunkStore()
        assert store.add(1, size=100, received_at=2.0, created_at=1.0)
        assert 1 in store
        assert store.size_of(1) == 100
        assert store.received_at(1) == 2.0
        assert store.delay_of(1) == pytest.approx(1.0)

    def test_duplicate_rejected(self):
        store = ChunkStore()
        store.add(1, 100, 2.0, 1.0)
        assert not store.add(1, 100, 3.0, 1.0)
        assert store.received_at(1) == 2.0  # first reception wins

    def test_len_and_ids(self):
        store = ChunkStore()
        for i in range(5):
            store.add(i, 10, float(i), 0.0)
        assert len(store) == 5
        assert sorted(store.chunk_ids()) == list(range(5))

    def test_chunk_validates_size(self):
        with pytest.raises(ValueError):
            Chunk(chunk_id=0, created_at=0.0, size=0)


class Sink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.serves = []

    def on_message(self, src, message):
        self.serves.append((src, message))


class TestStreamSource:
    def _build(self, rng, n=10, rate=674.0, chunk=4096):
        sim = Simulator()
        network = Network(sim)
        params = GossipParams(
            n=n, fanout=3, stream_rate_kbps=rate, chunk_size=chunk, source_fanout=3
        )
        membership = FullMembership(rng, range(n))
        sinks = {i: Sink(i) for i in range(n)}
        for sink in sinks.values():
            network.register(sink)
        source = StreamSource(sim, network, membership, params)
        network.register(source)
        return sim, source, sinks, params

    def test_emission_rate(self, rng):
        sim, source, _sinks, params = self._build(rng)
        source.start(first_at=0.0)
        sim.run(until=10.0)
        expected = 10.0 / params.chunk_interval
        assert source.emitted == pytest.approx(expected, abs=2)

    def test_pushes_to_fanout_targets(self, rng):
        sim, source, sinks, _params = self._build(rng)
        source.start(first_at=0.0)
        sim.run(until=0.3)
        total = sum(len(s.serves) for s in sinks.values())
        assert total == source.emitted * 3 or total >= (source.emitted - 1) * 3

    def test_serves_carry_source_origin(self, rng):
        sim, source, sinks, _params = self._build(rng)
        source.start(first_at=0.0)
        sim.run(until=0.5)
        for sink in sinks.values():
            for src, msg in sink.serves:
                assert isinstance(msg, Serve)
                assert src == SOURCE_ID
                assert msg.origin == SOURCE_ID

    def test_created_at_lookup(self, rng):
        sim, source, _sinks, params = self._build(rng)
        source.start(first_at=0.0)
        sim.run(until=1.0)
        assert source.created_at(0) == pytest.approx(0.0)
        assert source.created_at(1) == pytest.approx(params.chunk_interval)

    def test_stop_halts_emission(self, rng):
        sim, source, _sinks, _params = self._build(rng)
        source.start(first_at=0.0)
        sim.run(until=1.0)
        emitted = source.emitted
        source.stop()
        sim.run(until=5.0)
        assert source.emitted == emitted

    def test_stop_after(self, rng):
        sim, source, _sinks, _params = self._build(rng)
        source.stop_after = 1.0
        source.start(first_at=0.0)
        sim.run(until=5.0)
        assert source.emitted <= 1.0 / source.params.chunk_interval + 1

    def test_chunks_per_second_param(self):
        params = GossipParams(n=10, fanout=3, stream_rate_kbps=674.0, chunk_size=4096)
        assert params.chunks_per_second == pytest.approx(674.0 * 125 / 4096)
        assert params.chunk_interval == pytest.approx(4096 / (674.0 * 125))
