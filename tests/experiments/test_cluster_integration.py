"""End-to-end integration: freeriders, colluders, audits, expulsion."""

import numpy as np
import pytest

from repro.config import FreeriderDegree


class TestFreeriderDetection:
    def test_freeriders_score_below_honest(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.25, 0.3, 0.3),
            loss_rate=0.02,
            compensation=0.0,
        )
        cluster.run(until=12.0)
        scores = cluster.scores()
        honest = [s for n, s in scores.items() if n not in cluster.freerider_ids]
        freeriders = [s for n, s in scores.items() if n in cluster.freerider_ids]
        assert np.mean(freeriders) < np.mean(honest) - 2.0

    def test_heavier_freeriding_blamed_more(self, small_cluster_factory):
        def mean_freerider_score(degree):
            cluster = small_cluster_factory(
                freerider_fraction=0.25,
                freerider_degree=degree,
                loss_rate=0.0,
                compensation=0.0,
            )
            cluster.run(until=10.0)
            scores = cluster.scores()
            return float(
                np.mean([s for n, s in scores.items() if n in cluster.freerider_ids])
            )

        mild = mean_freerider_score(FreeriderDegree(0.0, 0.1, 0.1))
        heavy = mean_freerider_score(FreeriderDegree(0.25, 0.4, 0.4))
        assert heavy < mild

    def test_detection_report(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.25, 0.4, 0.4),
            loss_rate=0.02,
            compensation=0.0,
        )
        cluster.run(until=12.0)
        honest_scores = [
            s for n, s in cluster.scores().items() if n not in cluster.freerider_ids
        ]
        eta = float(np.percentile(honest_scores, 2)) - 0.5
        report = cluster.detection(eta=eta)
        assert report.detection > 0.6
        assert report.false_positives <= 0.1


class TestExpulsion:
    def test_score_based_expulsion_removes_freeriders(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.3, 0.5, 0.5),
            loss_rate=0.0,
            compensation=0.0,
            expulsion_enabled=True,
            eta=-4.0,
            min_periods_before_expel=8,
        )
        cluster.run(until=15.0)
        expelled = set(cluster.controller.expelled_nodes())
        assert expelled, "nobody was expelled"
        # Expulsions should hit freeriders overwhelmingly.
        wrongful = expelled - cluster.freerider_ids
        assert len(wrongful) <= max(1, 0.2 * len(expelled))

    def test_observation_mode_records_without_enforcing(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.3, 0.5, 0.5),
            loss_rate=0.0,
            compensation=0.0,
            expulsion_enabled=False,
            eta=-4.0,
            min_periods_before_expel=8,
        )
        cluster.run(until=15.0)
        assert cluster.controller.expelled_nodes()  # recorded
        for node_id in cluster.controller.expelled_nodes():
            assert cluster.network.is_connected(node_id)  # not enforced

    def test_expelled_nodes_stop_receiving_stream(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.3, 0.5, 0.5),
            loss_rate=0.0,
            compensation=0.0,
            expulsion_enabled=True,
            eta=-4.0,
            min_periods_before_expel=8,
        )
        cluster.run(until=20.0)
        records = cluster.controller.records
        assert records
        node_id, record = next(iter(records.items()))
        node = cluster.nodes[node_id]
        late_chunks = [
            c.chunk_id
            for c in cluster.source.chunks
            if c.created_at > record.time + 2.0
        ]
        owned_late = sum(1 for c in late_chunks if c in node.store)
        assert owned_late <= 0.1 * max(1, len(late_chunks))


class TestAudits:
    def test_audit_of_honest_node_passes(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, gamma=3.0)
        cluster.run(until=8.0)
        auditor = cluster.nodes[0]
        target = 5
        results = []
        auditor.auditor.start(target, on_complete=results.append)
        cluster.sim.run(until=cluster.sim.now + 15.0)
        assert results, "audit did not complete"
        assert results[0].passed, (
            f"honest node failed audit: fanout H={results[0].fanout_entropy:.2f} "
            f"fanin H={results[0].fanin_entropy:.2f} "
            f"periods={results[0].proposal_count}"
        )

    def test_audit_detects_biased_colluders(self, small_cluster_factory):
        cluster = small_cluster_factory(
            freerider_fraction=0.3,
            freerider_degree=FreeriderDegree(0, 0, 0),
            colluding=True,
            collusion_bias=0.95,
            loss_rate=0.0,
            gamma=3.0,
        )
        cluster.run(until=8.0)
        honest_auditor = next(
            nid for nid in cluster.node_ids if nid not in cluster.freerider_ids
        )
        target = next(iter(cluster.freerider_ids))
        results = []
        cluster.nodes[honest_auditor].auditor.start(target, on_complete=results.append)
        cluster.sim.run(until=cluster.sim.now + 15.0)
        assert results
        assert not results[0].passed_fanout
        assert not results[0].passed

    def test_audit_detects_mitm_via_fanin(self, small_cluster_factory):
        # MITM colluders pass direct cross-checks but their confirm
        # senders concentrate on the coalition (§5.3).
        cluster = small_cluster_factory(
            freerider_fraction=0.3,
            freerider_degree=FreeriderDegree(0, 0, 0),
            colluding=True,
            collusion_bias=0.0,  # partner selection looks uniform
            man_in_the_middle=True,
            loss_rate=0.0,
            gamma=3.0,
        )
        cluster.run(until=8.0)
        honest_auditor = next(
            nid for nid in cluster.node_ids if nid not in cluster.freerider_ids
        )
        target = next(iter(cluster.freerider_ids))
        results = []
        cluster.nodes[honest_auditor].auditor.start(target, on_complete=results.append)
        cluster.sim.run(until=cluster.sim.now + 15.0)
        assert results
        result = results[0]
        assert not result.passed_fanin or result.unacknowledged > 0 or not result.passed

    def test_forged_history_draws_blames(self, small_cluster_factory):
        # Forging honest names into the history: the alleged receivers
        # deny, so unacknowledged blames pile up (§5.3).
        cluster = small_cluster_factory(
            freerider_fraction=0.3,
            freerider_degree=FreeriderDegree(0, 0, 0),
            colluding=True,
            collusion_bias=0.9,
            forge_history=True,
            loss_rate=0.0,
            gamma=3.0,
        )
        cluster.run(until=8.0)
        honest_auditor = next(
            nid for nid in cluster.node_ids if nid not in cluster.freerider_ids
        )
        target = next(iter(cluster.freerider_ids))
        results = []
        cluster.nodes[honest_auditor].auditor.start(target, on_complete=results.append)
        cluster.sim.run(until=cluster.sim.now + 15.0)
        assert results
        # Forged partners were never really proposed to.
        assert results[0].unacknowledged > 0.3 * results[0].polled_entries


class TestColluderCoverUps:
    def test_cover_up_reduces_coalition_blames(self, small_cluster_factory):
        def freerider_blame_mean(colluding):
            cluster = small_cluster_factory(
                freerider_fraction=0.3,
                freerider_degree=FreeriderDegree(0.2, 0.4, 0.4),
                colluding=colluding,
                collusion_bias=0.8 if colluding else 0.0,
                loss_rate=0.0,
                compensation=0.0,
            )
            cluster.run(until=10.0)
            scores = cluster.scores()
            return float(
                np.mean([s for n, s in scores.items() if n in cluster.freerider_ids])
            )

        independent = freerider_blame_mean(colluding=False)
        covered = freerider_blame_mean(colluding=True)
        # Coalition members serve mostly each other and cover each other
        # up, so direct verification blames them far less.
        assert covered > independent


class TestDegradedNodes:
    def test_degraded_nodes_blamed_more(self, small_cluster_factory):
        cluster = small_cluster_factory(
            degraded_fraction=0.2,
            degraded_loss=0.25,
            loss_rate=0.01,
            compensation=0.0,
        )
        cluster.run(until=10.0)
        scores = cluster.scores()
        degraded = [s for n, s in scores.items() if n in cluster.degraded_ids]
        healthy = [
            s
            for n, s in scores.items()
            if n not in cluster.degraded_ids and n not in cluster.freerider_ids
        ]
        assert np.mean(degraded) < np.mean(healthy)


class TestSeededDeterminismGolden:
    """Pin the exact trace of a fixed-seed deployment.

    The fast simulation kernel (inline heap entries, block-buffered
    samplers, type-keyed dispatch) is required to be bit-for-bit
    deterministic; these golden counters catch any refactor that
    silently perturbs event ordering or RNG streams.  An *intentional*
    protocol-behaviour change should update the constants (and say so in
    its changelog entry).
    """

    def test_fixed_seed_trace_is_bit_for_bit_stable(self, small_cluster_factory):
        cluster = small_cluster_factory()  # seed=42, loss_rate=0.03
        cluster.run(until=5.0)
        trace = cluster.trace
        assert cluster.sim.events_processed == 19339
        assert trace.sent_count() == 15151
        assert trace.delivered_count() == 14504
        assert trace.lost_count() == 470
        assert trace.category_bytes("data") == 9515255
        assert trace.category_bytes("verification") == 331606
        assert trace.category_bytes("reputation") == 65676
        assert trace.sent_count("Serve") == 4482
        assert trace.sent_count("Confirm") == 3308
