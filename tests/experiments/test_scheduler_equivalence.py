"""Heap-vs-calendar scheduler equivalence and large-n determinism pins.

PR 4 replaced per-message binary-heap delivery scheduling with the
calendar-queue :class:`~repro.sim.engine.DeliveryTimeline` plus batched
(coalesced) dispatch.  The contract is *exact* equivalence: the same
seed must produce the same event firing order — and therefore the same
traces, scores and RNG streams — under either scheduler.  These tests
pin that at deployment scale; ``tests/sim/test_timeline.py`` pins the
engine-level mechanics.
"""

import hashlib
from collections import Counter

import pytest

from repro.experiments.cluster import SimCluster
from repro.experiments.scaling import scaling_config
from repro.wire import Blame, Propose, Serve


def trace_fingerprint(cluster) -> str:
    """A stable hash of everything the message plane observably did.

    Integer counters only (no float formatting), so the value is
    machine-independent for a deterministic run.
    """
    trace = cluster.trace
    sent = sorted(
        (cls.__name__, src, entry[0], entry[1])
        for cls, per in trace._sent.items()
        for src, entry in per.items()
    )
    delivered = sorted((cls.__name__, n) for cls, n in trace._delivered.items())
    lost = sorted((cls.__name__, n) for cls, n in trace._lost.items())
    blob = repr(
        (cluster.sim.events_processed, cluster.sim._sequence, sent, delivered, lost)
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class TestClusterSchedulerEquivalence:
    def test_timeline_matches_heap_bit_for_bit(self, small_cluster_factory):
        """Full deployment A/B: both schedulers, same seed, same world."""
        runs = {}
        for timeline in (True, False):
            cluster = small_cluster_factory(
                freerider_fraction=0.25,
                loss_rate=0.03,
                delivery_timeline=timeline,
            )
            cluster.run(until=8.0)
            runs[timeline] = (
                trace_fingerprint(cluster),
                cluster.sim.events_processed,
                sorted(cluster.scores().items()),
            )
        assert runs[True] == runs[False]
        assert runs[True][1] > 10_000  # the scenario produced real load

    def test_timeline_is_actually_in_use(self, small_cluster_factory):
        cluster = small_cluster_factory()
        assert cluster.network._timeline is cluster.sim.timeline
        assert cluster.sim.timeline is not None
        heap_only = small_cluster_factory(delivery_timeline=False)
        assert heap_only.network._timeline is None
        assert heap_only.sim.timeline is None


class TestBatchDispatch:
    def test_batch_runs_fire_in_a_real_deployment(self, small_cluster_factory):
        """Same-destination runs must actually reach the batch tables."""
        cluster = small_cluster_factory(loss_rate=0.02)
        assert cluster.network._batch_runs  # width fits under min latency
        counts = Counter()
        receivers = cluster.network._receivers
        for node_id, (endpoint, dispatch, batch) in receivers.items():
            if batch is None:
                continue

            def wrap(cls, handler):
                def counting(entries, lo, hi, _cls=cls, _handler=handler):
                    counts[_cls.__name__] += hi - lo
                    _handler(entries, lo, hi)

                return counting

            receivers[node_id] = (
                endpoint,
                dispatch,
                {cls: wrap(cls, handler) for cls, handler in batch.items()},
            )
        cluster.run(until=10.0)
        assert sum(counts.values()) > 0, "no delivery run was ever coalesced"

    def test_serve_batch_equals_per_message(self, small_cluster_factory):
        a = small_cluster_factory()
        b = small_cluster_factory()
        a.run(until=0.5)  # let the source mint some chunks (identically)
        b.run(until=0.5)
        node_a, node_b = a.nodes[3], b.nodes[3]
        serves = [
            Serve(proposal_id=7, chunk_id=k, payload_size=512, origin=5)
            for k in range(6)
        ]
        entries = [[0.6 + 0.001 * k, k, 5, 3, serves[k]] for k in range(6)]
        node_a.batch_dispatch_table[Serve](entries, 0, len(entries))
        for e in entries:
            b.sim.now = e[0]
            node_b.dispatch_table[Serve](e[2], e[4])
        assert a.sim.now == b.sim.now
        assert node_a.store.chunk_ids() == node_b.store.chunk_ids()
        assert [node_a.store.received_at(c) for c in node_a.store.chunk_ids()] == [
            node_b.store.received_at(c) for c in node_b.store.chunk_ids()
        ]
        assert node_a.stats.chunks_received == node_b.stats.chunks_received

    def test_blame_batch_equals_per_message(self, small_cluster_factory):
        a = small_cluster_factory()
        b = small_cluster_factory()
        node_a, node_b = a.nodes[1], b.nodes[1]
        targets = node_a.manager.assignment.managed_by(1)
        assert targets, "node 1 manages nobody in this seed — pick another node"
        blames = [Blame(target=targets[k % len(targets)], value=0.5 + k, reason="t") for k in range(5)]
        entries = [[0.2, k, 9, 1, blames[k]] for k in range(5)]
        node_a.manager.on_blame_entries(entries, 0, len(entries))
        for e in entries:
            node_b.manager.on_blame_message(e[2], e[4])
        for target in targets:
            ra = node_a.manager.records[target]
            rb = node_b.manager.records[target]
            assert ra.blame_total == rb.blame_total
            assert ra.blame_events == rb.blame_events

    def test_on_message_batch_equals_per_message(self, small_cluster_factory):
        """The generic batch entry point: mixed-type span, same effects."""
        a = small_cluster_factory()
        b = small_cluster_factory()
        a.run(until=0.5)
        b.run(until=0.5)
        node_a, node_b = a.nodes[2], b.nodes[2]
        messages = [
            Propose(proposal_id=11, chunk_ids=(1, 2)),
            Propose(proposal_id=12, chunk_ids=(2, 3)),
            Serve(proposal_id=11, chunk_id=1, payload_size=256, origin=4),
        ]
        entries = [[0.6 + 0.001 * k, k, 4, 2, m] for k, m in enumerate(messages)]
        node_a.on_message_batch(entries, 0, len(entries))
        for e in entries:
            b.sim.now = e[0]
            node_b.on_message(e[2], e[4])
        assert node_a.stats.proposals_received == node_b.stats.proposals_received
        assert node_a.stats.chunks_received == node_b.stats.chunks_received
        assert node_a._pending_chunks == node_b._pending_chunks
        assert a.sim._sequence == b.sim._sequence  # identical request fan-out


class TestCluster1000Golden:
    """Satellite: the large-n determinism pin for the new scheduler.

    A short fixed-seed window of the 1000-node deployment, hashed.  An
    *intentional* protocol change should update the constants (and say
    so in its changelog entry); anything else moving this hash has
    silently perturbed event ordering or RNG streams at large n.
    """

    GOLDEN_SHA256 = "e221731370e3457cc6fe4a8ca3ebb70ef9543ddc68567bcdb40f8e0c2a3c9265"
    GOLDEN_EVENTS = 176062

    def test_cluster1000_fixed_seed_trace_hash(self):
        cluster = SimCluster(scaling_config(1000, seed=1))
        cluster.run(until=2.5)
        assert cluster.sim.events_processed == self.GOLDEN_EVENTS
        assert trace_fingerprint(cluster) == self.GOLDEN_SHA256
