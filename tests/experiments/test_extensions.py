"""Tests for the extension features: protocol score reads, sporadic
audits, churn, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.config import FreeriderDegree


class TestScoreReader:
    def test_message_based_read_matches_oracle(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, compensation=0.0)
        cluster.run(until=6.0)
        reader_node = cluster.nodes[0]
        target = 5
        results = []
        reader_node.score_reader.query(target, results.append)
        cluster.sim.run(until=cluster.sim.now + 3.0)
        assert len(results) == 1
        oracle = cluster.scoreboard.score(target, cluster.assignment)
        assert results[0] == pytest.approx(oracle, abs=0.5)

    def test_query_unknown_target_returns_none(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=2.0)
        results = []
        cluster.nodes[0].score_reader.query(99_999, results.append)
        cluster.sim.run(until=cluster.sim.now + 3.0)
        assert results == [None]


class TestSporadicAudits:
    def test_scheduler_produces_audit_results(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, p_audit=0.05, gamma=3.0)
        cluster.run(until=15.0)
        results = cluster.audit_results()
        assert results, "no sporadic audits ran"
        # Honest-only system: audits should pass overwhelmingly.
        passed = sum(1 for r in results if r.passed)
        assert passed >= 0.8 * len(results)

    def test_sporadic_audits_flag_biased_colluders(self, small_cluster_factory):
        # γ must clear the small-scale honest *fanin* spread (wider than
        # fanout, as in Figure 13b) while staying above the coalition's
        # concentrated histories (~log2 of the coalition size ≈ 2.5).
        cluster = small_cluster_factory(
            loss_rate=0.0,
            p_audit=0.08,
            gamma=3.1,
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0, 0, 0),
            colluding=True,
            collusion_bias=0.95,
            expulsion_enabled=True,
        )
        cluster.run(until=20.0)
        audit_expulsions = cluster.controller.records_by_reason("audit")
        if audit_expulsions:  # audits are stochastic; when they hit, they hit right
            wrongful = [r for r in audit_expulsions if r.node not in cluster.freerider_ids]
            assert len(wrongful) <= 0.34 * len(audit_expulsions)


class TestChurn:
    def test_leaving_node_stops_receiving(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=4.0)
        leaver = 3
        cluster.leave(leaver)
        leave_time = cluster.sim.now
        cluster.run(until=10.0)
        node = cluster.nodes[leaver]
        late = [c.chunk_id for c in cluster.source.chunks if c.created_at > leave_time + 1.0]
        owned_late = sum(1 for c in late if c in node.store)
        assert owned_late == 0

    def test_leaver_not_sampled(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=2.0)
        cluster.leave(3)
        assert not cluster.membership.contains(3)

    def test_rejoin_resumes_participation(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0)
        cluster.run(until=3.0)
        cluster.leave(3)
        cluster.run(until=6.0)
        cluster.rejoin(3)
        rejoin_time = cluster.sim.now
        cluster.run(until=14.0)
        node = cluster.nodes[3]
        late = [
            c.chunk_id
            for c in cluster.source.chunks
            if rejoin_time + 1.0 < c.created_at < cluster.sim.now - 3.0
        ]
        owned = sum(1 for c in late if c in node.store)
        assert owned >= 0.8 * max(1, len(late))


class TestCli:
    def test_analyze_command(self, capsys):
        assert cli_main(["analyze", "--fanout", "12", "--loss", "0.07"]) == 0
        out = capsys.readouterr().out
        assert "72.9" in out  # Eq. 5
        assert "Eq.7" in out

    def test_detect_command_small(self, capsys):
        code = cli_main(
            [
                "detect",
                "--nodes", "40",
                "--duration", "8",
                "--seed", "3",
                "--freeriders", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection" in out
        assert "overhead" in out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
