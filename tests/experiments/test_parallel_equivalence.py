"""Parallel fan-out must reproduce the serial experiments bit for bit.

Every ``run_*`` experiment accepts ``jobs=``; these tests pin the
determinism contract of :mod:`repro.runtime.parallel`: the job list —
and with it every seed and RNG stream — is fixed before fan-out, so
``jobs=2`` produces byte-identical results to ``jobs=1``.

"Byte-identical" is asserted with ``pickle.dumps`` where the result
contains no numpy arrays, and with exact ``tobytes()`` equality per
array otherwise (the raw pickle stream of an *aggregate* can differ
across process boundaries for equal values, because serial results may
share memoized sub-objects such as dtype instances that pool-returned
results cannot share).
"""

import math
import pickle

import numpy as np
import pytest

from repro.experiments.calibration import CalibrationResult, calibrate
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig14 import run_fig14
from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5


def assert_bit_identical(a, b):
    """Recursive exact (bitwise) equality for experiment results."""
    assert type(a) is type(b)
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape
        assert a.tobytes() == b.tobytes()
    elif isinstance(a, dict):
        assert list(a.keys()) == list(b.keys())
        for key in a:
            assert_bit_identical(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert_bit_identical(left, right)
    elif isinstance(a, float):
        assert (math.isnan(a) and math.isnan(b)) or a == b
    elif hasattr(a, "__dict__") and not isinstance(a, type):
        assert_bit_identical(vars(a), vars(b))
    else:
        assert a == b


class TestFig1Equivalence:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(n=24, duration=4.0, seed=7, lags=[0.0, 2.0, 4.0])
        return run_fig1(jobs=1, **kwargs), run_fig1(jobs=2, **kwargs)

    def test_parallel_bit_identical_to_serial(self, results):
        serial, fanned = results
        assert_bit_identical(serial, fanned)

    def test_result_pickle_round_trip(self, results):
        serial, _fanned = results
        clone = pickle.loads(pickle.dumps(serial))
        assert_bit_identical(serial, clone)


class TestTable5Equivalence:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(
            n=24,
            duration=2.0,
            seed=31,
            rates_kbps=(674.0, 1082.0),
            p_dcc_values=(0.0, 1.0),
        )
        return run_table5(jobs=1, **kwargs), run_table5(jobs=2, **kwargs)

    def test_parallel_byte_identical_to_serial(self, results):
        serial, fanned = results
        # Table5Result carries no arrays: the full pickle streams match.
        assert pickle.dumps(serial) == pickle.dumps(fanned)

    def test_cells_cover_the_grid(self, results):
        serial, _fanned = results
        assert set(serial.cells) == {
            (674.0, 0.0),
            (674.0, 1.0),
            (1082.0, 0.0),
            (1082.0, 1.0),
        }

    def test_result_pickle_round_trip(self, results):
        serial, _fanned = results
        clone = pickle.loads(pickle.dumps(serial))
        assert pickle.dumps(clone) == pickle.dumps(serial)


class TestMonteCarloEquivalence:
    def test_fig11_parallel_bit_identical(self):
        kwargs = dict(n=800, freeriders=80, rounds=10, seed=13, shards=4)
        serial = run_fig11(jobs=1, **kwargs)
        fanned = run_fig11(jobs=2, **kwargs)
        assert_bit_identical(serial, fanned)

    def test_fig11_shard_count_changes_streams_but_not_jobs(self):
        # The RNG layout depends on the (fixed) shard count only.
        base = run_fig11(n=800, freeriders=80, rounds=10, seed=13, shards=4)
        other = run_fig11(n=800, freeriders=80, rounds=10, seed=13, shards=2)
        assert base.sample.honest.shape == other.sample.honest.shape
        assert not np.array_equal(base.sample.honest, other.sample.honest)

    def test_fig12_parallel_bit_identical(self):
        kwargs = dict(deltas=[0.0, 0.05, 0.1], rounds=10, samples_per_point=400, seed=17)
        serial = run_fig12(jobs=1, **kwargs)
        fanned = run_fig12(jobs=3, **kwargs)
        assert_bit_identical(serial, fanned)


class TestClusterExperimentEquivalence:
    def test_table3_parallel_bit_identical(self):
        kwargs = dict(n=24, duration=2.0, seed=29, fanout_sweep=(4, 5))
        serial = run_table3(jobs=1, **kwargs)
        fanned = run_table3(jobs=2, **kwargs)
        assert_bit_identical(serial, fanned)

    def test_fig14_parallel_byte_identical(self):
        kwargs = dict(
            n=24,
            seed=23,
            times=(3.0, 4.0),
            p_dcc_values=(1.0, 0.5),
            calibration_duration=3.0,
        )
        serial = run_fig14(jobs=1, **kwargs)
        fanned = run_fig14(jobs=2, **kwargs)
        assert pickle.dumps(serial) == pickle.dumps(fanned)


class TestResultPickling:
    """Job results cross the process boundary: all must pickle cleanly."""

    def test_calibration_result_round_trip(self, small_gossip, small_lifting):
        result = calibrate(
            small_gossip, small_lifting, seed=3, duration=4.0, n=16, loss_rate=0.05
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert isinstance(clone, CalibrationResult)

    def test_fig11_result_round_trip(self):
        result = run_fig11(n=200, freeriders=20, rounds=5, seed=13, shards=2)
        clone = pickle.loads(pickle.dumps(result))
        assert_bit_identical(result, clone)

    def test_fig12_result_round_trip(self):
        result = run_fig12(deltas=[0.0, 0.1], rounds=5, samples_per_point=100, seed=17)
        clone = pickle.loads(pickle.dumps(result))
        assert_bit_identical(result, clone)

    def test_table3_result_round_trip(self):
        result = run_table3(n=24, duration=2.0, seed=29, fanout_sweep=(4, 5))
        clone = pickle.loads(pickle.dumps(result))
        assert_bit_identical(result, clone)

    def test_fig14_result_round_trip(self):
        result = run_fig14(
            n=24,
            seed=23,
            times=(3.0,),
            p_dcc_values=(1.0,),
            calibration_duration=3.0,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert pickle.dumps(clone) == pickle.dumps(result)
