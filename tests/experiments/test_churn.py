"""Churn-tolerant membership, end to end (the PR's acceptance property).

The headline claim: under scripted crash/restart churn, an honest node
that restarts within the suspicion window is NEVER expelled, while a
true freerider in the *same run* still is.  One deterministic deployment
(module-scoped — ~2 s of wall clock) backs the whole class; the cheaper
leave/rejoin edge cases run on tiny unstarted clusters.
"""

from dataclasses import replace

import pytest

from repro.config import FreeriderDegree, planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.membership.base import STATUS_EXPELLED, STATUS_LEFT
from repro.membership.failure_detector import FailureDetectorParams
from repro.runtime.faults import FaultSchedule

DURATION = 14.0


def make_cluster(n=30, **changes) -> SimCluster:
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=n, chunk_size=1400)
    kwargs = dict(
        seed=3,
        loss_rate=0.04,
        freerider_fraction=0.15,
        freerider_degree=FreeriderDegree.uniform(0.25),
        expulsion_enabled=True,
        failure_detector=FailureDetectorParams(),
    )
    kwargs.update(changes)
    return SimCluster(ClusterConfig(gossip=gossip, lifting=lifting, **kwargs))


@pytest.fixture(scope="module")
def churn_run():
    """30 nodes, 4 honest victims crash-restarting (2 s downtime, inside
    the 4 s suspicion window), freeriders untouched, run past the
    expulsion grace period."""
    cluster = make_cluster()
    victims = sorted(cluster.honest_ids)[:4]
    cluster.attach_faults(FaultSchedule.churn(victims, DURATION, downtime=2.0))
    cluster.run(until=DURATION)
    return cluster, victims


class TestAcceptance:
    def test_restarting_honest_nodes_never_expelled(self, churn_run):
        cluster, victims = churn_run
        expelled = set(cluster.controller.expelled_nodes())
        assert not expelled & set(victims)
        assert not expelled & cluster.honest_ids  # no wrongful expulsion at all

    def test_freeriders_still_expelled_in_same_run(self, churn_run):
        cluster, _ = churn_run
        expelled = set(cluster.controller.expelled_nodes())
        assert cluster.freerider_ids, "config must include freeriders"
        assert cluster.freerider_ids <= expelled

    def test_victims_were_actually_suspected_and_refuted(self, churn_run):
        cluster, victims = churn_run
        summary = cluster.churn_summary()
        # The protection was exercised, not vacuous: every victim's
        # outage raised a suspicion, every restart refuted one.
        assert summary["crashes"] == len(victims)
        assert summary["restarts"] == len(victims)
        assert summary["suspicions"] >= len(victims)
        assert summary["refutations"] >= len(victims)
        assert summary["confirmed_dead"] == 0

    def test_quarantine_protected_the_suspects(self, churn_run):
        cluster, _ = churn_run
        summary = cluster.churn_summary()
        assert summary["quarantines_started"] > 0
        assert summary["quarantines_discarded"] > 0
        # Refuted suspicion leaves nothing pending on any *live* host.
        # Expelled freeriders' managers never observe the refutation
        # (they are disconnected); their frozen records have no
        # authority and are allowed to stay open.
        open_on_live_hosts = [
            (host, record.target)
            for host, node in cluster.nodes.items()
            if node.manager is not None
            and not cluster.controller.is_expelled(host)
            for record in node.manager.records.values()
            if record.suspected
        ]
        assert open_on_live_hosts == []

    def test_recovery_delay_measured(self, churn_run):
        cluster, _ = churn_run
        summary = cluster.churn_summary()
        assert summary["mean_recovery_delay"] is not None
        assert 0.0 <= summary["mean_recovery_delay"] < 4.0 * 0.5  # window

    def test_membership_converged_back(self, churn_run):
        cluster, victims = churn_run
        # Every victim is back in the directory, unsuspected.
        for node in victims:
            assert cluster.membership.contains(node)
        assert cluster.membership.suspected_nodes() == []


class TestLeaveRejoinEdgeCases:
    """Satellite: graceful-departure corner cases on an unstarted cluster."""

    @pytest.fixture
    def cluster(self):
        return make_cluster(n=12, freerider_fraction=0.0)

    def test_double_leave_is_noop(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        assert cluster.leave(node)
        assert not cluster.leave(node)
        assert cluster.churn_monitor.leaves == 1

    def test_leave_then_rejoin_bumps_incarnation(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        cluster.leave(node)
        assert cluster.membership.status_of(node) == STATUS_LEFT
        assert cluster.rejoin(node)
        assert cluster.membership.contains(node)
        assert cluster.membership.incarnation_of(node) >= 1
        assert cluster.churn_monitor.rejoins == 1

    def test_rejoin_of_expelled_node_refused(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        cluster.controller.expel(node, "scores")
        assert not cluster.rejoin(node)
        assert cluster.membership.status_of(node) == STATUS_EXPELLED
        assert cluster.churn_monitor.rejoins_refused == 1

    def test_leave_during_expulsion_vote_still_lands(self, cluster):
        # The node departs gracefully while its managers are mid-vote;
        # the quorum lands anyway — expulsion is terminal and the ledger
        # refuses the later rejoin.
        node = sorted(cluster.honest_ids)[0]
        assert cluster.leave(node)
        cluster.controller.expel(node, "quorum reached after leave")
        assert cluster.membership.status_of(node) == STATUS_EXPELLED
        assert not cluster.rejoin(node)

    def test_fault_crash_of_already_left_node_only_flags_plane(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        plane = cluster.attach_faults(FaultSchedule())
        cluster.leave(node)
        cluster._crash(node, plane)
        # No double-disconnect, no spurious crash metric: the node had
        # already deregistered; only the fault-plane flag flips.
        assert cluster.churn_monitor.crashes == 0
        assert node in plane.crashed
        assert cluster.membership.status_of(node) == STATUS_LEFT

    def test_restart_of_never_crashed_node_is_noop(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        plane = cluster.attach_faults(FaultSchedule())
        cluster._restart(node, plane)
        assert cluster.churn_monitor.restarts == 0
        assert cluster.membership.contains(node)
