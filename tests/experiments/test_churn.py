"""Churn-tolerant membership, end to end (the PR's acceptance property).

The headline claim: under scripted crash/restart churn, an honest node
that restarts within the suspicion window is NEVER expelled, while a
true freerider in the *same run* still is.  One deterministic deployment
(module-scoped — ~2 s of wall clock) backs the whole class; the cheaper
leave/rejoin edge cases run on tiny unstarted clusters.
"""

from dataclasses import replace

import pytest

from repro.config import FreeriderDegree, planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.membership.base import STATUS_EXPELLED, STATUS_LEFT
from repro.membership.failure_detector import FailureDetectorParams
from repro.runtime.faults import FaultSchedule

# Long enough for the *last* restarting victim to re-confirm the
# expelled freeriders dead: readmission now purges peers' stale ack
# expectations (no cross-incarnation blame), which shifts the late-run
# suspicion timing by about a period compared to the pre-SoA trajectory.
DURATION = 16.0


def make_cluster(n=30, **changes) -> SimCluster:
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=n, chunk_size=1400)
    kwargs = dict(
        seed=3,
        loss_rate=0.04,
        freerider_fraction=0.15,
        freerider_degree=FreeriderDegree.uniform(0.25),
        expulsion_enabled=True,
        failure_detector=FailureDetectorParams(),
    )
    kwargs.update(changes)
    return SimCluster(ClusterConfig(gossip=gossip, lifting=lifting, **kwargs))


@pytest.fixture(scope="module")
def churn_run():
    """30 nodes, 4 honest victims crash-restarting (2 s downtime, inside
    the 4 s suspicion window), freeriders untouched, run past the
    expulsion grace period."""
    cluster = make_cluster()
    victims = sorted(cluster.honest_ids)[:4]
    cluster.attach_faults(FaultSchedule.churn(victims, DURATION, downtime=2.0))
    cluster.run(until=DURATION)
    return cluster, victims


class TestAcceptance:
    def test_restarting_honest_nodes_never_expelled(self, churn_run):
        cluster, victims = churn_run
        expelled = set(cluster.controller.expelled_nodes())
        assert not expelled & set(victims)
        assert not expelled & cluster.honest_ids  # no wrongful expulsion at all

    def test_freeriders_still_expelled_in_same_run(self, churn_run):
        cluster, _ = churn_run
        expelled = set(cluster.controller.expelled_nodes())
        assert cluster.freerider_ids, "config must include freeriders"
        assert cluster.freerider_ids <= expelled

    def test_victims_were_actually_suspected_and_refuted(self, churn_run):
        cluster, victims = churn_run
        summary = cluster.churn_summary()
        # The protection was exercised, not vacuous: every victim's
        # outage raised a suspicion, every restart refuted one.
        assert summary["crashes"] == len(victims)
        assert summary["restarts"] == len(victims)
        assert summary["suspicions"] >= len(victims)
        assert summary["refutations"] >= len(victims)
        assert summary["confirmed_dead"] == 0

    def test_quarantine_protected_the_suspects(self, churn_run):
        cluster, _ = churn_run
        summary = cluster.churn_summary()
        assert summary["quarantines_started"] > 0
        assert summary["quarantines_discarded"] > 0
        # Refuted suspicion leaves nothing pending on any *live* host.
        # Expelled freeriders' managers never observe the refutation
        # (they are disconnected); their frozen records have no
        # authority and are allowed to stay open.
        open_on_live_hosts = [
            (host, record.target)
            for host, node in cluster.nodes.items()
            if node.manager is not None
            and not cluster.controller.is_expelled(host)
            for record in node.manager.records.values()
            if record.suspected
        ]
        assert open_on_live_hosts == []

    def test_recovery_delay_measured(self, churn_run):
        cluster, _ = churn_run
        summary = cluster.churn_summary()
        assert summary["mean_recovery_delay"] is not None
        assert 0.0 <= summary["mean_recovery_delay"] < 4.0 * 0.5  # window

    def test_membership_converged_back(self, churn_run):
        cluster, victims = churn_run
        # Every victim is back in the directory, unsuspected.
        for node in victims:
            assert cluster.membership.contains(node)
        assert cluster.membership.suspected_nodes() == []


class TestLeaveRejoinEdgeCases:
    """Satellite: graceful-departure corner cases on an unstarted cluster."""

    @pytest.fixture
    def cluster(self):
        return make_cluster(n=12, freerider_fraction=0.0)

    def test_double_leave_is_noop(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        assert cluster.leave(node)
        assert not cluster.leave(node)
        assert cluster.churn_monitor.leaves == 1

    def test_leave_then_rejoin_bumps_incarnation(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        cluster.leave(node)
        assert cluster.membership.status_of(node) == STATUS_LEFT
        assert cluster.rejoin(node)
        assert cluster.membership.contains(node)
        assert cluster.membership.incarnation_of(node) >= 1
        assert cluster.churn_monitor.rejoins == 1

    def test_rejoin_of_expelled_node_refused(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        cluster.controller.expel(node, "scores")
        assert not cluster.rejoin(node)
        assert cluster.membership.status_of(node) == STATUS_EXPELLED
        assert cluster.churn_monitor.rejoins_refused == 1

    def test_leave_during_expulsion_vote_still_lands(self, cluster):
        # The node departs gracefully while its managers are mid-vote;
        # the quorum lands anyway — expulsion is terminal and the ledger
        # refuses the later rejoin.
        node = sorted(cluster.honest_ids)[0]
        assert cluster.leave(node)
        cluster.controller.expel(node, "quorum reached after leave")
        assert cluster.membership.status_of(node) == STATUS_EXPELLED
        assert not cluster.rejoin(node)

    def test_fault_crash_of_already_left_node_only_flags_plane(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        plane = cluster.attach_faults(FaultSchedule())
        cluster.leave(node)
        cluster._crash(node, plane)
        # No double-disconnect, no spurious crash metric: the node had
        # already deregistered; only the fault-plane flag flips.
        assert cluster.churn_monitor.crashes == 0
        assert node in plane.crashed
        assert cluster.membership.status_of(node) == STATUS_LEFT

    def test_restart_of_never_crashed_node_is_noop(self, cluster):
        node = sorted(cluster.honest_ids)[0]
        plane = cluster.attach_faults(FaultSchedule())
        cluster._restart(node, plane)
        assert cluster.churn_monitor.restarts == 0
        assert cluster.membership.contains(node)


class TestReadmissionRemap:
    """Satellite: a bumped-incarnation readmit must land on a clean
    pooled slot and purge every peer's stale ack expectations — no
    transient state (or the blames it would draw) leaks across
    incarnations."""

    @pytest.fixture
    def cluster(self):
        return make_cluster(n=12, freerider_fraction=0.0)

    def test_readmit_remaps_to_zeroed_columns(self, cluster):
        node_id = sorted(cluster.honest_ids)[0]
        node = cluster.nodes[node_id]
        slot = node._state_slot
        pool = cluster.state_pool
        # Dirty every pooled block of the first incarnation's slot.
        pool.fresh.append(slot, 7, 3)
        pool.pending.append(slot, 9)
        pool.blame.append(slot, 4, 2.0)
        capacity_before = cluster.registry.capacity

        cluster.leave(node_id)
        assert cluster.rejoin(node_id)

        new_slot = cluster.registry.slot_of(node_id)
        assert node._state_slot == new_slot
        assert cluster.registry.node_at(new_slot) == node_id
        assert cluster.membership.incarnation_of(node_id) >= 1
        # The retired slot went through the free-list (no growth) and
        # every recycled column starts zeroed.
        assert cluster.registry.capacity == capacity_before
        for rows in (pool.fresh, pool.pending, pool.blame):
            assert rows.count(new_slot) == 0
            assert not rows.col0[new_slot].any()
        assert not pool.blame.col1[new_slot].any()

    def test_readmit_purges_peers_stale_ack_rows(self, cluster):
        victim, peer_a, peer_b = sorted(cluster.honest_ids)[:3]
        # Two peers served the victim's first incarnation and still
        # expect acks; a third requester's expectation must survive.
        cluster.nodes[peer_a].engine.on_serve_sent(victim, 101)
        cluster.nodes[peer_b].engine.on_serve_sent(victim, 102)
        cluster.nodes[peer_b].engine.on_serve_sent(peer_a, 103)
        assert cluster.nodes[peer_a].engine.pending_ack_count == 1
        assert cluster.nodes[peer_b].engine.pending_ack_count == 2

        cluster.leave(victim)
        assert cluster.rejoin(victim)

        assert victim not in cluster.nodes[peer_a].engine._ack_live
        assert victim not in cluster.nodes[peer_b].engine._ack_live
        assert cluster.nodes[peer_a].engine.pending_ack_count == 0
        # The unrelated expectation against peer_a is untouched.
        assert cluster.nodes[peer_b].engine.pending_ack_count == 1

    def test_readmitted_node_draws_no_blame_from_stale_acks(self, cluster):
        victim, peer = sorted(cluster.honest_ids)[:2]
        engine = cluster.nodes[peer].engine
        engine.on_serve_sent(victim, 55)
        cluster.leave(victim)
        assert cluster.rejoin(victim)
        # Push the clock past the ack timeout: without the purge this
        # sweep would blame the *new* incarnation for the old one's debt.
        cluster.sim.run(until=cluster.nodes[peer].lifting.ack_timeout + 1.0)
        engine.on_period_tick()
        from repro.core.blames import REASON_NO_ACK

        assert engine.blames_by_reason[REASON_NO_ACK] == 0.0
