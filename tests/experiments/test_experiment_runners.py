"""Scaled-down runs of every figure/table experiment.

These check that each runner produces series with the paper's *shape*;
the full-scale numbers live in the benchmark harness.
"""

import math

import numpy as np
import pytest

from repro.config import FreeriderDegree
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.calibration import calibrate


class TestFig10:
    def test_mean_centered_and_sigma(self):
        result = run_fig10(n=20_000, seed=5)
        assert result.compensation == pytest.approx(72.95, abs=0.01)
        assert abs(result.mean) < 0.5
        assert 15.0 < result.stddev < 28.0

    def test_pdf_sums_to_one(self):
        result = run_fig10(n=5_000, seed=5)
        _centers, fractions = result.pdf()
        assert fractions.sum() == pytest.approx(1.0, abs=0.02)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(n=4_000, freeriders=400, rounds=50, seed=5)

    def test_two_disjoint_modes(self, result):
        # "the probability density function is split into two disjoint
        # modes separated by a gap" (§6.3.1).
        assert result.gap > 0

    def test_detection_above_99_at_delta_01(self, result):
        assert result.detection > 0.99

    def test_false_positives_below_1_percent(self, result):
        # η = -9.75 was chosen for β < 1 %.
        assert result.false_positives < 0.01

    def test_cdf_series_shape(self, result):
        hx, hf, fx, ff = result.cdf_series()
        assert hf[-1] == pytest.approx(1.0)
        assert ff[-1] == pytest.approx(1.0)
        assert np.median(fx) < np.median(hx)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig12(deltas=[0.0, 0.02, 0.035, 0.05, 0.1, 0.15], rounds=50,
                         samples_per_point=1_500, seed=5)

    def test_detection_monotone_in_delta(self, result):
        detections = list(result.detection)
        assert detections == sorted(detections)

    def test_saturates_past_delta_01(self, result):
        # "Beyond 10% of freeriding, a node is detected over 99% of the
        # time."
        assert result.detection_at(0.1) > 0.99
        assert result.detection_at(0.15) > 0.99

    def test_gain_formula(self, result):
        assert result.gain_at(0.035) == pytest.approx(1 - (1 - 0.035) ** 3, abs=0.01)

    def test_wise_region_detection_moderate(self, result):
        # Around the 10 %-gain point detection is neither ~0 nor ~1 —
        # the paper puts it near 50 %.
        mid = result.detection_at(0.035)
        assert 0.1 < mid < 0.95


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        # γ = 8.95 is calibrated for the paper's n = 10,000 (smaller
        # systems force more duplicates into a 600-pick history and sit
        # lower), so this test runs at full scale.
        return run_fig13(n=10_000, seed=5)

    def test_fanout_below_max(self, result):
        lo, hi = result.fanout_range
        assert hi <= result.max_entropy + 1e-9
        assert lo > result.max_entropy - 0.3

    def test_fanin_wider_than_fanout(self, result):
        fo_lo, fo_hi = result.fanout_range
        fi_lo, fi_hi = result.fanin_range
        assert fi_hi > fo_hi  # fanin can exceed log2(n_h f)

    def test_false_expulsions_negligible_at_gamma(self, result):
        # "the probability of wrongfully expelling the inspected node
        # during local auditing is negligible when γ is set to 8.95".
        assert result.fanout_false_expulsions == 0.0
        assert result.fanin_false_expulsions <= 0.002

    def test_fanout_range_matches_paper(self, result):
        # Paper: observed fanout entropy in [9.11, 9.21].
        lo, hi = result.fanout_range
        assert lo == pytest.approx(9.11, abs=0.03)
        assert hi == pytest.approx(9.21, abs=0.03)

    def test_max_entropy_is_papers_9_23(self, result):
        assert result.max_entropy == pytest.approx(9.23, abs=0.005)


class TestCalibration:
    def test_calibration_produces_positive_compensation(self, small_gossip, small_lifting):
        result = calibrate(
            small_gossip, small_lifting, seed=3, duration=6.0, n=24, loss_rate=0.05
        )
        assert result.compensation > 0
        assert result.score_stddev >= 0

    def test_eta_rule_negative(self, small_gossip, small_lifting):
        result = calibrate(
            small_gossip, small_lifting, seed=3, duration=6.0, n=24, loss_rate=0.05
        )
        eta = result.eta_for_false_positives(0.01)
        assert eta < 0
        # Tighter β target → more negative threshold.
        assert result.eta_for_false_positives(0.001) < eta
