"""Failure-injection tests: the system must degrade gracefully."""

import numpy as np
import pytest

from repro.config import FreeriderDegree


class TestHeavyLoss:
    def test_dissemination_survives_15_percent_loss(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.15)
        cluster.run(until=10.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 4.0]
        ratios = [
            sum(1 for c in early if c in node.store) / len(early)
            for node in cluster.nodes.values()
        ]
        assert float(np.mean(ratios)) > 0.75

    def test_min_vote_reads_survive_blame_message_loss(self, small_cluster_factory):
        # With lossy UDP the managers' copies diverge; min-vote reads the
        # most-blamed copy, so scores remain defined and finite.
        cluster = small_cluster_factory(loss_rate=0.12, compensation=0.0)
        cluster.run(until=10.0)
        scores = cluster.scores()
        assert len(scores) == len(cluster.node_ids)
        assert all(np.isfinite(s) for s in scores.values())

    def test_detection_still_works_under_heavy_loss(self, small_cluster_factory):
        cluster = small_cluster_factory(
            loss_rate=0.12,
            compensation=0.0,
            freerider_fraction=0.25,
            freerider_degree=FreeriderDegree(0.3, 0.5, 0.5),
        )
        cluster.run(until=12.0)
        scores = cluster.scores()
        honest = [s for n, s in scores.items() if n not in cluster.freerider_ids]
        freeriders = [s for n, s in scores.items() if n in cluster.freerider_ids]
        assert np.mean(freeriders) < np.mean(honest)


class TestExpelledNodeContainment:
    def test_expelled_node_cannot_blame(self, small_cluster_factory):
        # Expulsion must be *enforced* for containment to apply.
        cluster = small_cluster_factory(
            loss_rate=0.0, compensation=0.0, expulsion_enabled=True
        )
        cluster.run(until=4.0)
        victim = 7
        attacker = 3
        cluster.controller.expel(attacker, "test")
        # The attacker's blames no longer reach managers.
        before = cluster.scoreboard.score(victim, cluster.assignment)
        node = cluster.nodes[attacker]
        for _ in range(50):
            node.send_blame(victim, 10.0, "spite")
        node._flush_blames()
        cluster.sim.run(until=cluster.sim.now + 2.0)
        after = cluster.scoreboard.score(victim, cluster.assignment)
        # Only the attacker's own-manager copy (if any) could move; the
        # min-vote may shift only if the attacker manages the victim.
        if attacker not in cluster.assignment.managers_of(victim):
            assert after == pytest.approx(before, abs=1e-6)

    def test_expelled_auditors_verdicts_are_void(self, small_cluster_factory):
        cluster = small_cluster_factory(loss_rate=0.0, expulsion_enabled=True)
        cluster.run(until=6.0)
        auditor_id, target_id = 0, 5
        cluster.nodes[auditor_id].auditor.start(target_id)
        cluster.controller.expel(auditor_id, "test")
        # The audit times out (the target's TCP response is dropped at the
        # expelled auditor) and must NOT expel the innocent target.
        cluster.sim.run(until=cluster.sim.now + 15.0)
        assert not cluster.controller.is_expelled(target_id)


class TestSlowNodes:
    def test_bandwidth_starved_node_lags_but_system_healthy(self, small_cluster_factory):
        cluster = small_cluster_factory(
            loss_rate=0.02,
            degraded_fraction=0.15,
            degraded_loss=0.0,
            degraded_upload=8_000.0,  # ~64 kbps uplink
        )
        cluster.run(until=10.0)
        early = [c.chunk_id for c in cluster.source.chunks if c.created_at < 4.0]
        healthy = [
            nid
            for nid in cluster.node_ids
            if nid not in cluster.degraded_ids
        ]
        ratios = [
            sum(1 for c in early if c in cluster.nodes[nid].store) / len(early)
            for nid in healthy
        ]
        assert float(np.mean(ratios)) > 0.9

    def test_starved_nodes_accumulate_more_blame(self, small_cluster_factory):
        # PlanetLab-grade poor nodes are lossy *and* bandwidth-starved
        # (the Figure 14 model); bandwidth alone mostly delays their
        # witness answers, which blames their *proposers* instead.
        cluster = small_cluster_factory(
            loss_rate=0.02,
            compensation=0.0,
            degraded_fraction=0.15,
            degraded_loss=0.12,
            degraded_upload=40_000.0,
        )
        cluster.run(until=12.0)
        scores = cluster.scores()
        starved = [s for n, s in scores.items() if n in cluster.degraded_ids]
        healthy = [
            s
            for n, s in scores.items()
            if n not in cluster.degraded_ids and n not in cluster.freerider_ids
        ]
        # Paper §7.3: poor-capability nodes cannot contribute their fair
        # share and are blamed like freeriders.
        assert np.mean(starved) < np.mean(healthy)
