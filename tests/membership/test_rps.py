"""Tests for the gossip-based random peer sampling service."""

import numpy as np
import pytest

from repro.membership.rps import GossipPeerSampling


@pytest.fixture
def rps(rng):
    service = GossipPeerSampling(rng, range(60), view_size=8)
    service.step(rounds=10)
    return service


class TestViews:
    def test_view_size_bounded(self, rps):
        for node in range(60):
            view = rps.view_of(node)
            assert 1 <= len(view) <= 8

    def test_views_never_contain_self(self, rps):
        for node in range(60):
            assert node not in rps.view_of(node)

    def test_view_size_clamped_to_population(self, rng):
        service = GossipPeerSampling(rng, range(4), view_size=20)
        assert service.view_size == 3

    def test_rejects_tiny_population(self, rng):
        with pytest.raises(ValueError):
            GossipPeerSampling(rng, [1])


class TestSampling:
    def test_sample_excludes_self_and_is_distinct(self, rps):
        for node in (0, 17, 59):
            partners = rps.sample(node, 5)
            assert node not in partners
            assert len(set(partners)) == len(partners)

    def test_sample_size_limited_by_view(self, rps):
        assert len(rps.sample(0, 50)) <= 8

    def test_unknown_caller_returns_empty(self, rps):
        assert rps.sample(999, 3) == []


class TestShuffling:
    def test_views_evolve(self, rng):
        service = GossipPeerSampling(rng, range(40), view_size=6)
        before = {n: set(service.view_of(n)) for n in range(40)}
        service.step(rounds=20)
        changed = sum(1 for n in range(40) if set(service.view_of(n)) != before[n])
        assert changed > 30

    def test_indegree_reasonably_balanced(self, rng):
        service = GossipPeerSampling(rng, range(80), view_size=8)
        service.step(rounds=30)
        indegrees = np.array(list(service.indegree_distribution().values()))
        assert indegrees.mean() == pytest.approx(8.0, rel=0.15)
        # No node should be wildly over-represented after mixing.
        assert indegrees.max() <= 8 * 4

    def test_coverage_over_time(self, rng):
        # Union of samples over many periods touches most of the system —
        # the property LiFTinG's entropy audit relies on.
        service = GossipPeerSampling(rng, range(50), view_size=8)
        seen = set()
        for _ in range(40):
            service.step()
            seen.update(service.sample(0, 4))
        assert len(seen) >= 35


class TestRemoval:
    def test_removed_node_not_sampled(self, rng):
        service = GossipPeerSampling(rng, range(30), view_size=6)
        service.step(rounds=5)
        service.remove(7)
        service.step(rounds=10)
        for node in range(30):
            if node == 7:
                continue
            assert 7 not in service.sample(node, 5)

    def test_alive_nodes_reflects_removal(self, rng):
        service = GossipPeerSampling(rng, range(10), view_size=4)
        service.remove(3)
        assert 3 not in service.alive_nodes()
        assert len(service.alive_nodes()) == 9

    def test_dead_entries_heal_out_of_views(self, rng):
        service = GossipPeerSampling(rng, range(30), view_size=6)
        service.step(rounds=5)
        service.remove(7)
        service.step(rounds=40)
        holders = sum(1 for n in range(30) if 7 in service.view_of(n))
        assert holders <= 3  # residual stale entries are rare


class TestVectorizedAgainstScalarReference:
    """The numpy engine must sample like the scalar dict reference."""

    @staticmethod
    def _indegrees(vectorized, seed=23, n=120, view_size=8, rounds=30):
        service = GossipPeerSampling(
            np.random.default_rng(seed), range(n), view_size=view_size,
            vectorized=vectorized,
        )
        service.step(rounds=rounds)
        return service, np.array(list(service.indegree_distribution().values()))

    def test_uniformity_matches_scalar_reference(self):
        scalar, scalar_ind = self._indegrees(vectorized=False)
        vector, vector_ind = self._indegrees(vectorized=True)
        # Same total mass: every alive view stays full in both engines.
        assert vector_ind.mean() == pytest.approx(scalar_ind.mean(), rel=0.02)
        # Spread (the uniformity deviation gamma must tolerate) must not
        # degrade versus the reference beyond run-to-run noise.
        assert vector_ind.std() <= scalar_ind.std() * 1.5 + 1.0
        assert vector_ind.max() <= max(scalar_ind.max() * 2, 4 * 8)

    def test_sample_frequencies_close_to_uniform_both_engines(self):
        for vectorized in (False, True):
            service, _ = self._indegrees(vectorized=vectorized, rounds=10)
            counts = np.zeros(120)
            for _ in range(120):
                service.step()
                for peer in service.sample(0, 4):
                    counts[peer] += 1
            counts[0] = counts.mean()  # self never sampled; neutralise
            # No node is starved or wildly over-sampled at stationarity.
            assert counts.max() <= counts.mean() * 6
            assert (counts > 0).mean() > 0.8

    def test_vectorized_views_stay_well_formed(self):
        service, _ = self._indegrees(vectorized=True)
        for node in range(120):
            view = service.view_of(node)
            assert 1 <= len(view) <= 8
            assert node not in view
            assert len(set(view)) == len(view)

    def test_batched_aging_ages_whole_round_once(self):
        service = GossipPeerSampling(
            np.random.default_rng(3), range(40), view_size=6, vectorized=True
        )
        ages_before = service._ages.copy()
        service.step()
        # Every surviving pre-round entry aged at least... entries churn,
        # but the matrix-level invariant is simple: ages are bounded by
        # the round count (fresh pushes reset to 0).
        assert service._ages.max() <= service.rounds
        assert (service._ages >= 0).all()
        assert ages_before.max() == 0
