"""Tests for the gossip-based random peer sampling service."""

import numpy as np
import pytest

from repro.membership.rps import GossipPeerSampling


@pytest.fixture
def rps(rng):
    service = GossipPeerSampling(rng, range(60), view_size=8)
    service.step(rounds=10)
    return service


class TestViews:
    def test_view_size_bounded(self, rps):
        for node in range(60):
            view = rps.view_of(node)
            assert 1 <= len(view) <= 8

    def test_views_never_contain_self(self, rps):
        for node in range(60):
            assert node not in rps.view_of(node)

    def test_view_size_clamped_to_population(self, rng):
        service = GossipPeerSampling(rng, range(4), view_size=20)
        assert service.view_size == 3

    def test_rejects_tiny_population(self, rng):
        with pytest.raises(ValueError):
            GossipPeerSampling(rng, [1])


class TestSampling:
    def test_sample_excludes_self_and_is_distinct(self, rps):
        for node in (0, 17, 59):
            partners = rps.sample(node, 5)
            assert node not in partners
            assert len(set(partners)) == len(partners)

    def test_sample_size_limited_by_view(self, rps):
        assert len(rps.sample(0, 50)) <= 8

    def test_unknown_caller_returns_empty(self, rps):
        assert rps.sample(999, 3) == []


class TestShuffling:
    def test_views_evolve(self, rng):
        service = GossipPeerSampling(rng, range(40), view_size=6)
        before = {n: set(service.view_of(n)) for n in range(40)}
        service.step(rounds=20)
        changed = sum(1 for n in range(40) if set(service.view_of(n)) != before[n])
        assert changed > 30

    def test_indegree_reasonably_balanced(self, rng):
        service = GossipPeerSampling(rng, range(80), view_size=8)
        service.step(rounds=30)
        indegrees = np.array(list(service.indegree_distribution().values()))
        assert indegrees.mean() == pytest.approx(8.0, rel=0.15)
        # No node should be wildly over-represented after mixing.
        assert indegrees.max() <= 8 * 4

    def test_coverage_over_time(self, rng):
        # Union of samples over many periods touches most of the system —
        # the property LiFTinG's entropy audit relies on.
        service = GossipPeerSampling(rng, range(50), view_size=8)
        seen = set()
        for _ in range(40):
            service.step()
            seen.update(service.sample(0, 4))
        assert len(seen) >= 35


class TestRemoval:
    def test_removed_node_not_sampled(self, rng):
        service = GossipPeerSampling(rng, range(30), view_size=6)
        service.step(rounds=5)
        service.remove(7)
        service.step(rounds=10)
        for node in range(30):
            if node == 7:
                continue
            assert 7 not in service.sample(node, 5)

    def test_alive_nodes_reflects_removal(self, rng):
        service = GossipPeerSampling(rng, range(10), view_size=4)
        service.remove(3)
        assert 3 not in service.alive_nodes()
        assert len(service.alive_nodes()) == 9

    def test_dead_entries_heal_out_of_views(self, rng):
        service = GossipPeerSampling(rng, range(30), view_size=6)
        service.step(rounds=5)
        service.remove(7)
        service.step(rounds=40)
        holders = sum(1 for n in range(30) if 7 in service.view_of(n))
        assert holders <= 3  # residual stale entries are rare
