"""Tests for the full-membership uniform sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.membership.full import FullMembership


class TestSampling:
    def test_excludes_caller(self, rng):
        fm = FullMembership(rng, range(10))
        for _ in range(200):
            assert 3 not in fm.sample(caller=3, count=5)

    def test_returns_distinct(self, rng):
        fm = FullMembership(rng, range(10))
        for _ in range(100):
            partners = fm.sample(caller=0, count=6)
            assert len(set(partners)) == len(partners) == 6

    def test_caps_at_population(self, rng):
        fm = FullMembership(rng, range(5))
        assert len(fm.sample(caller=0, count=10)) == 4

    def test_zero_count(self, rng):
        fm = FullMembership(rng, range(5))
        assert fm.sample(caller=0, count=0) == []

    def test_negative_count_rejected(self, rng):
        fm = FullMembership(rng, range(5))
        with pytest.raises(ValueError):
            fm.sample(caller=0, count=-1)

    def test_sampling_does_not_perturb_directory(self, rng):
        fm = FullMembership(rng, range(10))
        before = list(fm.alive_nodes())
        fm.sample(caller=0, count=5)
        assert list(fm.alive_nodes()) == before

    def test_approximately_uniform(self, rng):
        fm = FullMembership(rng, range(20))
        counts = np.zeros(20)
        for _ in range(4000):
            for p in fm.sample(caller=0, count=3):
                counts[p] += 1
        counts = counts[1:]  # caller never picked
        expected = 4000 * 3 / 19
        assert np.all(np.abs(counts - expected) < expected * 0.25)

    def test_duplicate_ids_rejected(self, rng):
        with pytest.raises(ValueError):
            FullMembership(rng, [1, 1, 2])


class TestMembershipChanges:
    def test_remove(self, rng):
        fm = FullMembership(rng, range(6))
        fm.remove(3)
        assert not fm.contains(3)
        assert len(fm) == 5
        for _ in range(100):
            assert 3 not in fm.sample(caller=0, count=4)

    def test_remove_absent_is_noop(self, rng):
        fm = FullMembership(rng, range(3))
        fm.remove(99)
        assert len(fm) == 3

    def test_add(self, rng):
        fm = FullMembership(rng, range(3))
        fm.add(7)
        assert fm.contains(7)
        fm.add(7)  # idempotent
        assert len(fm) == 4

    def test_remove_then_add(self, rng):
        fm = FullMembership(rng, range(4))
        fm.remove(2)
        fm.add(2)
        assert fm.contains(2)
        assert sorted(fm.alive_nodes()) == [0, 1, 2, 3]

    @given(st.sets(st.integers(0, 50), min_size=2, max_size=30), st.data())
    @settings(max_examples=50, deadline=None)
    def test_directory_consistent_under_churn(self, ids, data):
        fm = FullMembership(np.random.default_rng(0), sorted(ids))
        alive = set(ids)
        operations = data.draw(
            st.lists(st.tuples(st.booleans(), st.sampled_from(sorted(ids))), max_size=20)
        )
        for add, node in operations:
            if add:
                fm.add(node)
                alive.add(node)
            else:
                fm.remove(node)
                alive.discard(node)
        assert set(fm.alive_nodes()) == alive
        assert len(fm) == len(alive)
