"""Deterministic unit tests for the SWIM detector state machine.

A :class:`FakeHost` replaces the transport/sampler/timer surface so each
probe round can be stepped by hand: ``tick()`` runs one period,
``advance(dt)`` fires due timers, and every outbound message lands in
``host.sent`` for inspection.
"""

import pytest

from repro.membership.base import (
    STATUS_ALIVE,
    STATUS_DEAD,
    STATUS_SUSPECT,
)
from repro.membership.failure_detector import (
    ChurnMonitor,
    FailureDetectorParams,
    RANK_ALIVE,
    RANK_DEAD,
    RANK_SUSPECT,
    SwimFailureDetector,
    apply_membership_event,
)
from repro.membership.full import FullMembership
from repro.wire import MembershipUpdate, Ping, PingAck, PingReq


class FakeGossip:
    def __init__(self, period, fanout):
        self.gossip_period = period
        self.fanout = fanout


class FakeSampler:
    """Returns peers in a fixed order — probes are fully predictable."""

    def __init__(self, peers):
        self.peers = list(peers)

    def sample(self, caller, count):
        return [p for p in self.peers if p != caller][:count]


class FakeHost:
    def __init__(self, node_id, peers, period=1.0):
        self.node_id = node_id
        self.gossip = FakeGossip(period, fanout=3)
        self.sampler = FakeSampler(peers)
        self.sent = []
        self.now = 0.0
        self._timers = []
        self._timer_seq = 0

    def clock(self):
        return self.now

    def send(self, dst, message):
        self.sent.append((dst, message))

    def send_many(self, dsts, message):
        for dst in dsts:
            self.send(dst, message)

    def call_later(self, delay, fn, *args):
        self._timer_seq += 1
        self._timers.append((self.now + delay, self._timer_seq, fn, args))

    def advance(self, dt):
        deadline = self.now + dt
        while True:
            due = [t for t in self._timers if t[0] <= deadline]
            if not due:
                break
            due.sort()
            when, _, fn, args = due[0]
            self._timers.remove(due[0])
            self.now = when
            fn(*args)
        self.now = deadline

    def sent_of(self, cls):
        return [(dst, m) for dst, m in self.sent if isinstance(m, cls)]


@pytest.fixture
def detector():
    """Detector on node 0, peers 1..4, with a change-event recorder."""
    host = FakeHost(0, [1, 2, 3, 4])
    events = []
    det = SwimFailureDetector(
        host,
        FailureDetectorParams(proxies=2, suspicion_periods=4.0),
        on_change=lambda node, status, inc: events.append((node, status, inc)),
    )
    det.start()
    host.events = events  # the detector itself is __slots__-ed
    return det


class TestProbeCycle:
    def test_tick_pings_sampled_peer(self, detector):
        detector.on_period_tick()
        pings = detector.host.sent_of(Ping)
        assert [dst for dst, _ in pings] == [1]
        assert detector.probes_sent == 1

    def test_timeout_falls_back_to_proxies_then_suspects(self, detector):
        host = detector.host
        detector.on_period_tick()
        host.advance(0.4)  # past ping_timeout=0.35
        reqs = host.sent_of(PingReq)
        assert [dst for dst, _ in reqs] == [2, 3]  # k=2 proxies, target excluded
        assert all(m.target == 1 for _, m in reqs)
        host.advance(0.6)  # past indirect_timeout=0.5
        assert detector.status_of(1) == STATUS_SUSPECT
        assert detector.suspicions_raised == 1
        assert (1, STATUS_SUSPECT, 0) in detector.host.events

    def test_direct_ack_cancels_probe(self, detector):
        host = detector.host
        detector.on_period_tick()
        seq = host.sent_of(Ping)[0][1].seq
        detector.on_ping_ack(1, PingAck(seq=seq, target=1, incarnation=0, updates=()))
        host.advance(2.0)
        assert detector.status_of(1) == STATUS_ALIVE
        assert not host.sent_of(PingReq)

    def test_relayed_ack_cancels_probe(self, detector):
        host = detector.host
        detector.on_period_tick()
        seq = host.sent_of(Ping)[0][1].seq
        host.advance(0.4)
        assert host.sent_of(PingReq)  # indirect round started
        # A proxy's relayed ack carries our original seq back.
        detector.on_ping_ack(2, PingAck(seq=seq, target=1, incarnation=0, updates=()))
        host.advance(2.0)
        assert detector.status_of(1) == STATUS_ALIVE
        assert detector.suspicions_raised == 0

    def test_unrefuted_suspicion_confirms_dead(self, detector):
        host = detector.host
        detector.on_membership_update(9, MembershipUpdate(updates=((RANK_SUSPECT, 1, 0),)))
        assert detector.status_of(1) == STATUS_SUSPECT
        host.advance(4.5)  # past suspicion window = 4 periods
        detector.on_period_tick()
        assert detector.status_of(1) == STATUS_DEAD
        assert detector.confirms == 1
        assert (1, STATUS_DEAD, 0) in detector.host.events


class TestUpdatePrecedence:
    def test_incarnation_bump_refutes_suspicion(self, detector):
        detector._apply_update(RANK_SUSPECT, 1, 0)
        assert detector.status_of(1) == STATUS_SUSPECT
        detector._apply_update(RANK_ALIVE, 1, 1)  # the refutation
        assert detector.status_of(1) == STATUS_ALIVE
        assert (1, STATUS_ALIVE, 1) in detector.host.events

    def test_alive_cannot_clear_same_incarnation_suspicion(self, detector):
        detector._apply_update(RANK_SUSPECT, 1, 0)
        assert not detector._apply_update(RANK_ALIVE, 1, 0)
        assert detector.status_of(1) == STATUS_SUSPECT

    def test_stale_updates_rejected(self, detector):
        detector._apply_update(RANK_ALIVE, 1, 2)
        assert not detector._apply_update(RANK_SUSPECT, 1, 1)
        assert detector.status_of(1) == STATUS_ALIVE

    def test_dead_beats_suspect_within_incarnation(self, detector):
        detector._apply_update(RANK_SUSPECT, 1, 0)
        assert detector._apply_update(RANK_DEAD, 1, 0)
        assert not detector._apply_update(RANK_SUSPECT, 1, 0)
        assert detector.status_of(1) == STATUS_DEAD

    def test_self_suspicion_triggers_refutation(self, detector):
        detector.on_membership_update(3, MembershipUpdate(updates=((RANK_SUSPECT, 0, 0),)))
        assert detector.incarnation == 1
        assert detector.refutations_sent == 1
        # The refutation rides the outbox as alive@1.
        assert (RANK_ALIVE, 0, 1) in detector.drain_updates()

    def test_restart_bumps_incarnation(self, detector):
        detector.stop()
        detector.start()
        assert detector.incarnation == 1
        assert (RANK_ALIVE, 0, 1) in detector.drain_updates()


class TestDissemination:
    def test_drain_respects_budget_and_freshness(self, detector):
        for node in range(10, 30):
            detector._enqueue(RANK_ALIVE, node, 1)
        out = detector.drain_updates()
        assert len(out) == detector.params.max_piggyback
        # Freshest (last enqueued) first.
        assert out[0][1] == 29

    def test_drain_prepends_suspicion_of_target(self, detector):
        for node in range(10, 30):
            detector._enqueue(RANK_ALIVE, node, 1)
        detector._apply_update(RANK_SUSPECT, 5, 0)
        out = detector.drain_updates(first=5)
        assert out[0] == (RANK_SUSPECT, 5, 0)
        assert len(out) <= detector.params.max_piggyback + 1
        # No duplicate of the prepended entry.
        assert sum(1 for u in out if u[1] == 5) == 1

    def test_retransmit_budget_expires_updates(self, detector):
        detector._enqueue(RANK_DEAD, 7, 0)
        for _ in range(detector.params.retransmit):
            assert (RANK_DEAD, 7, 0) in detector.drain_updates()
        assert (RANK_DEAD, 7, 0) not in detector.drain_updates()

    def test_ping_is_acked_with_piggyback(self, detector):
        detector.on_ping(2, Ping(seq=41, incarnation=0, updates=()))
        acks = detector.host.sent_of(PingAck)
        assert len(acks) == 1
        dst, ack = acks[0]
        assert dst == 2 and ack.seq == 41 and ack.target == 0

    def test_ping_req_relays_and_forwards_ack(self, detector):
        host = detector.host
        detector.on_ping_req(3, PingReq(seq=17, target=1, incarnation=0, updates=()))
        relays = host.sent_of(Ping)
        assert [dst for dst, _ in relays] == [1]
        relay_seq = relays[0][1].seq
        detector.on_ping_ack(1, PingAck(seq=relay_seq, target=1, incarnation=0, updates=()))
        forwarded = [(dst, m) for dst, m in host.sent_of(PingAck) if dst == 3]
        assert len(forwarded) == 1
        assert forwarded[0][1].seq == 17  # origin's seq restored
        assert forwarded[0][1].target == 1

    def test_stopped_detector_ignores_everything(self, detector):
        detector.stop()
        detector.on_period_tick()
        detector.on_ping(2, Ping(seq=1, incarnation=0, updates=()))
        assert not detector.host.sent


class TestApplyMembershipEvent:
    @pytest.fixture
    def cluster(self, rng):
        membership = FullMembership(rng, range(6))
        monitor = ChurnMonitor(clock=lambda: 0.0)
        return membership, monitor

    def test_echoes_dedupe(self, cluster):
        membership, monitor = cluster
        a = apply_membership_event(membership, monitor, 1, 3, STATUS_SUSPECT, 0)
        b = apply_membership_event(membership, monitor, 2, 3, STATUS_SUSPECT, 0)
        assert a == "suspect" and b is None
        assert monitor.suspicions == 1

    def test_refute_then_confirm_cycle(self, cluster):
        membership, monitor = cluster
        apply_membership_event(membership, monitor, 1, 3, STATUS_SUSPECT, 0)
        assert apply_membership_event(membership, monitor, 1, 3, STATUS_ALIVE, 1) == "refute"
        assert monitor.refutations == 1
        assert membership.status_of(3) == STATUS_ALIVE

    def test_confirm_dead_then_readmit(self, cluster):
        membership, monitor = cluster
        assert apply_membership_event(membership, monitor, 1, 3, STATUS_DEAD, 0) == "confirm_dead"
        assert not membership.contains(3)
        assert apply_membership_event(membership, monitor, 1, 3, STATUS_ALIVE, 1) == "readmit"
        assert membership.contains(3)
        assert monitor.confirmed_dead == 1 and monitor.readmissions == 1

    def test_stale_verdict_cannot_rekill(self, cluster):
        membership, monitor = cluster
        apply_membership_event(membership, monitor, 1, 3, STATUS_DEAD, 0)
        apply_membership_event(membership, monitor, 1, 3, STATUS_ALIVE, 1)
        # A straggler detector still confirming dead@0 must be dropped.
        assert apply_membership_event(membership, monitor, 2, 3, STATUS_DEAD, 0) is None
        assert membership.contains(3)

    def test_events_reach_audit_log(self, cluster):
        membership, monitor = cluster
        entries = []

        class Log:
            def append(self, kind, **fields):
                entries.append((kind, fields))

        apply_membership_event(membership, monitor, 1, 3, STATUS_SUSPECT, 0, audit_log=Log())
        assert entries == [
            ("membership", {"transition": "suspect", "node": 3, "reporter": 1, "incarnation": 0})
        ]


class TestChurnMonitor:
    def test_delay_metrics(self):
        now = [0.0]
        monitor = ChurnMonitor(clock=lambda: now[0])
        monitor.on_crashed(5)
        now[0] = 3.0
        monitor.on_confirmed_dead(5)
        monitor.on_restarted(6)
        now[0] = 3.5
        monitor.on_refuted(6)
        summary = monitor.summary()
        assert summary["mean_detection_delay"] == 3.0
        assert summary["mean_recovery_delay"] == 0.5
        assert summary["crashes"] == 1 and summary["restarts"] == 1
