"""The membership lifecycle ledger: alive/suspect/dead/left/expelled."""

import pytest

from repro.membership.base import (
    STATUS_ALIVE,
    STATUS_DEAD,
    STATUS_EXPELLED,
    STATUS_LEFT,
    STATUS_SUSPECT,
)
from repro.membership.full import FullMembership
from repro.membership.rps import GossipPeerSampling


@pytest.fixture(params=["full", "rps"])
def sampler(request, rng):
    if request.param == "full":
        return FullMembership(rng, range(8))
    return GossipPeerSampling(rng, range(8), view_size=4)


class TestStatuses:
    def test_members_default_alive(self, sampler):
        assert sampler.status_of(3) == STATUS_ALIVE
        assert not sampler.is_suspected(3)

    def test_strangers_read_dead(self, sampler):
        assert sampler.status_of(999) == STATUS_DEAD

    def test_suspect_keeps_node_sampleable(self, sampler):
        assert sampler.mark_suspect(3)
        assert sampler.status_of(3) == STATUS_SUSPECT
        assert sampler.contains(3)
        assert 3 in sampler.suspected_nodes()
        # Still a directory member (an RPS caller's view is a partial
        # sample, so assert on the directory, not on one node's draws).
        assert 3 in sampler.alive_nodes()

    def test_suspect_requires_membership(self, sampler):
        assert not sampler.mark_suspect(999)

    def test_clear_suspect_only_clears_suspects(self, sampler):
        assert not sampler.clear_suspect(3)  # alive, nothing to clear
        sampler.mark_suspect(3)
        assert sampler.clear_suspect(3)
        assert sampler.status_of(3) == STATUS_ALIVE

    def test_dead_evicts(self, sampler):
        assert sampler.mark_dead(3)
        assert sampler.status_of(3) == STATUS_DEAD
        assert not sampler.contains(3)
        assert not sampler.mark_dead(3)  # idempotent: already dead

    def test_left_evicts(self, sampler):
        assert sampler.mark_left(3)
        assert sampler.status_of(3) == STATUS_LEFT
        assert not sampler.contains(3)
        assert not sampler.mark_left(3)

    def test_expelled_is_terminal(self, sampler):
        sampler.mark_expelled(3)
        assert sampler.status_of(3) == STATUS_EXPELLED
        assert not sampler.contains(3)
        assert not sampler.readmit(3, incarnation=5)
        assert sampler.status_of(3) == STATUS_EXPELLED


class TestReadmission:
    def test_dead_node_readmits_with_incarnation(self, sampler):
        sampler.mark_dead(3)
        assert sampler.readmit(3, incarnation=2)
        assert sampler.status_of(3) == STATUS_ALIVE
        assert sampler.contains(3)
        assert sampler.incarnation_of(3) == 2

    def test_left_node_readmits(self, sampler):
        sampler.mark_left(3)
        assert sampler.readmit(3)
        assert sampler.contains(3)

    def test_incarnation_never_decreases(self, sampler):
        sampler.note_incarnation(3, 4)
        sampler.note_incarnation(3, 2)
        assert sampler.incarnation_of(3) == 4
        sampler.mark_dead(3)
        sampler.readmit(3, incarnation=1)
        assert sampler.incarnation_of(3) == 4


class TestRpsSpecific:
    def test_stranger_readmit_refused(self, rng):
        rps = GossipPeerSampling(rng, range(4), view_size=4)
        # A decentralised service only knows bootstrapped nodes.
        rps.mark_dead(999)
        assert not rps.readmit(999)

    def test_contains_is_flag_read(self, rng):
        rps = GossipPeerSampling(rng, range(4), view_size=4)
        assert rps.contains(2)
        rps.remove(2)
        assert not rps.contains(2)
