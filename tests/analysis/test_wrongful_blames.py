"""Closed-form checks against the paper's §6.2 equations and constants."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.wrongful_blames import (
    expected_blame_apcc,
    expected_blame_cross_checking,
    expected_blame_direct_verification,
    expected_blame_honest,
    expected_blame_silent,
    variance_blame_direct_verification,
)

probabilities = st.floats(min_value=0.0, max_value=1.0)
fanouts = st.integers(min_value=1, max_value=30)
request_sizes = st.integers(min_value=1, max_value=10)


class TestEquation2:
    def test_closed_form(self):
        # b̃_dv = p_r (1 - p_r²) f²
        f, big_r, p_r = 12, 4, 0.93
        assert expected_blame_direct_verification(f, big_r, p_r) == pytest.approx(
            p_r * (1 - p_r**2) * f * f
        )

    def test_independent_of_request_size(self):
        # The |R| cancels in Eq. (2).
        assert expected_blame_direct_verification(12, 1, 0.9) == pytest.approx(
            expected_blame_direct_verification(12, 8, 0.9)
        )

    @given(fanouts, request_sizes, probabilities)
    def test_zero_without_loss_or_with_total_loss(self, f, big_r, _p):
        assert expected_blame_direct_verification(f, big_r, 1.0) == pytest.approx(0.0)
        assert expected_blame_direct_verification(f, big_r, 0.0) == pytest.approx(0.0)


class TestEquation3:
    def test_paper_form_at_pdcc_one(self):
        # b̃_dcc = p_r² (1 - p_r^{|R|+4}) f²
        f, big_r, p_r = 12, 4, 0.93
        assert expected_blame_cross_checking(f, big_r, p_r, 1.0) == pytest.approx(
            p_r**2 * (1 - p_r ** (big_r + 4)) * f * f
        )

    def test_pdcc_scales_only_witness_term(self):
        f, big_r, p_r = 12, 4, 0.93
        at_zero = expected_blame_cross_checking(f, big_r, p_r, 0.0)
        at_one = expected_blame_cross_checking(f, big_r, p_r, 1.0)
        # Even without confirm rounds the invalid-proposal term remains.
        assert 0 < at_zero < at_one
        expected_zero = p_r**2 * (1 - p_r ** (big_r + 1)) * f * f
        assert at_zero == pytest.approx(expected_zero)

    @given(fanouts, request_sizes, st.floats(min_value=0.01, max_value=0.99))
    def test_monotone_in_pdcc(self, f, big_r, p_r):
        low = expected_blame_cross_checking(f, big_r, p_r, 0.2)
        high = expected_blame_cross_checking(f, big_r, p_r, 0.9)
        assert low <= high + 1e-12


class TestEquation5:
    def test_paper_constant_72_95(self):
        # f=12, |R|=4, p_l=7 %: b̃ = 72.95 (§6.2, Figure 10); the exact
        # closed form gives 72.9447, which the paper rounds.
        assert expected_blame_honest(12, 4, 0.93) == pytest.approx(72.95, abs=0.01)

    def test_is_sum_of_components(self):
        f, big_r, p_r = 9, 3, 0.95
        assert expected_blame_honest(f, big_r, p_r) == pytest.approx(
            expected_blame_direct_verification(f, big_r, p_r)
            + expected_blame_cross_checking(f, big_r, p_r)
        )

    def test_closed_form_identity(self):
        # b̃ = p_r (1 + p_r - p_r² - p_r^{|R|+5}) f²
        f, big_r, p_r = 12, 4, 0.93
        assert expected_blame_honest(f, big_r, p_r) == pytest.approx(
            p_r * (1 + p_r - p_r**2 - p_r ** (big_r + 5)) * f * f
        )

    @given(fanouts, request_sizes, st.floats(min_value=0.5, max_value=1.0))
    def test_nonnegative(self, f, big_r, p_r):
        assert expected_blame_honest(f, big_r, p_r) >= 0


class TestEquation4:
    def test_closed_form(self):
        # b̃_apcc = (1-p_r) n_h f; paper example (1-0.93)·50·12 = 42.
        assert expected_blame_apcc(50, 12, 0.93) == pytest.approx(42.0)

    def test_zero_without_loss(self):
        assert expected_blame_apcc(50, 12, 1.0) == 0.0


class TestVarianceDV:
    def test_zero_at_no_loss(self):
        assert variance_blame_direct_verification(12, 4, 1.0) == pytest.approx(0.0)

    def test_positive_under_loss(self):
        assert variance_blame_direct_verification(12, 4, 0.93) > 0

    def test_matches_monte_carlo(self, rng):
        # Cross-validate the analytic DV variance with brute sampling.
        f, big_r, p_r = 8, 4, 0.9
        import numpy as np

        n = 200_000
        n_prop = rng.binomial(f, p_r, size=n)
        n_req = rng.binomial(n_prop, p_r)
        blame = f * (n_prop - n_req).astype(float)
        missing = rng.binomial(n_req * big_r, 1 - p_r)
        blame += (f / big_r) * missing
        assert variance_blame_direct_verification(f, big_r, p_r) == pytest.approx(
            float(np.var(blame)), rel=0.03
        )


class TestSilentNode:
    def test_closed_form(self):
        # One silent period costs 2f² gross minus the honest compensation.
        f, big_r, p_r = 12, 4, 0.93
        per_period = 2.0 * f * f - expected_blame_honest(f, big_r, p_r)
        assert expected_blame_silent(f, big_r, p_r, 3.0) == pytest.approx(3 * per_period)

    def test_scales_linearly_in_periods(self):
        one = expected_blame_silent(12, 4, 0.93, 1.0)
        assert expected_blame_silent(12, 4, 0.93, 8.0) == pytest.approx(8 * one)
        assert expected_blame_silent(12, 4, 0.93, 0.0) == 0.0

    def test_suspicion_window_blame_dwarfs_eta(self):
        # The quarantine rationale: 8 silent periods of uncompensated
        # blame sit far past η = -9.75 — without quarantine an honest
        # crash would be expelled on the spot.
        window_blame = expected_blame_silent(12, 4, 0.93, 8.0)
        assert window_blame > 100 * 9.75
