"""Tests for b̃'(Δ) — the freerider blame expectation (§6.3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.freerider_blames import expected_blame_excess, expected_blame_freerider
from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import FreeriderDegree, HONEST_DEGREE

deltas = st.floats(min_value=0.0, max_value=1.0)


class TestReductionToHonest:
    def test_zero_degree_equals_eq5(self):
        for p_r in (0.9, 0.93, 0.99, 1.0):
            assert expected_blame_freerider(HONEST_DEGREE, 12, 4, p_r) == pytest.approx(
                expected_blame_honest(12, 4, p_r)
            )

    def test_excess_zero_for_honest(self):
        assert expected_blame_excess(HONEST_DEGREE, 12, 4, 0.93) == pytest.approx(0.0)


class TestPaperFormula:
    def test_verbatim_formula(self):
        # Check against the paper's printed expression term by term.
        f, big_r, p_r = 12, 4, 0.93
        d1, d2, d3 = 0.1, 0.2, 0.3
        degree = FreeriderDegree(d1, d2, d3)
        f2 = f * f
        expected = (
            (1 - d1) * p_r * (1 - p_r**2 * (1 - d3)) * f2
            + d2 * f2
            + (1 - d2)
            * p_r**2
            * (p_r ** (big_r + 1) * (1 - p_r**3 * (1 - d1)) + (1 - p_r ** (big_r + 1)))
            * f2
        )
        assert expected_blame_freerider(degree, f, big_r, p_r) == pytest.approx(expected)

    def test_planetlab_degree_positive_excess(self):
        degree = FreeriderDegree(1 / 7, 0.1, 0.1)
        assert expected_blame_excess(degree, 7, 4, 0.96) > 0


class TestMonotonicity:
    @given(deltas, deltas)
    def test_excess_increases_with_delta2(self, low, high):
        low, high = sorted((low, high))
        a = expected_blame_freerider(FreeriderDegree(0, low, 0), 12, 4, 0.93)
        b = expected_blame_freerider(FreeriderDegree(0, high, 0), 12, 4, 0.93)
        assert b >= a - 1e-9

    @given(deltas, deltas)
    def test_excess_increases_with_delta3(self, low, high):
        low, high = sorted((low, high))
        a = expected_blame_freerider(FreeriderDegree(0, 0, low), 12, 4, 0.93)
        b = expected_blame_freerider(FreeriderDegree(0, 0, high), 12, 4, 0.93)
        assert b >= a - 1e-9

    @given(st.floats(min_value=0.0, max_value=0.3))
    def test_uniform_delta_excess_positive(self, delta):
        if delta == 0.0:
            return
        degree = FreeriderDegree.uniform(delta)
        assert expected_blame_excess(degree, 12, 4, 0.93) > 0


class TestBandwidthGain:
    def test_formula(self):
        degree = FreeriderDegree(0.1, 0.2, 0.3)
        assert degree.bandwidth_gain == pytest.approx(1 - 0.9 * 0.8 * 0.7)

    def test_paper_gain_10_percent_at_0035(self):
        # §6.3.1: a 10 % gain corresponds to δ ≈ 0.035.
        degree = FreeriderDegree.uniform(0.035)
        assert degree.bandwidth_gain == pytest.approx(0.10, abs=0.005)

    def test_effective_fanout(self):
        assert FreeriderDegree(1 / 7, 0, 0).effective_fanout(7) == 6
        assert FreeriderDegree(0, 0, 0).effective_fanout(7) == 7
        assert FreeriderDegree(1, 0, 0).effective_fanout(7) == 0
