"""Tests for the detection bounds (§6.3.1) and entropy analysis (§6.3.2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.detection import (
    alpha_lower_bound,
    beta_upper_bound,
    freerider_score_expectation,
    minimum_periods_for_beta,
)
from repro.analysis.entropy_analysis import (
    collusion_entropy,
    max_bias_probability,
    max_fanout_entropy,
    required_history_for_bias,
)
from repro.config import FreeriderDegree


class TestBetaBound:
    def test_tchebychev_form(self):
        # β ≤ σ(b)² / (r η²) — paper's values σ=25.6, η=-9.75, r=50.
        assert beta_upper_bound(25.6, 50, -9.75) == pytest.approx(
            25.6**2 / (50 * 9.75**2)
        )

    def test_clipped_to_one(self):
        assert beta_upper_bound(1000.0, 1, -0.1) == 1.0

    def test_decreases_with_residence_time(self):
        assert beta_upper_bound(25.6, 100, -9.75) < beta_upper_bound(25.6, 50, -9.75)

    def test_requires_negative_eta(self):
        with pytest.raises(ValueError):
            beta_upper_bound(1.0, 10, 1.0)


class TestAlphaBound:
    def test_trivial_when_mean_above_threshold(self):
        # Freerider whose mean drift does not reach η: no guarantee.
        assert alpha_lower_bound(5.0, 50, -9.75, mean_excess=5.0) == 0.0

    def test_positive_when_mean_below_threshold(self):
        bound = alpha_lower_bound(10.0, 50, -9.75, mean_excess=30.0)
        assert 0 < bound < 1

    def test_improves_with_time(self):
        early = alpha_lower_bound(10.0, 10, -9.75, mean_excess=30.0)
        late = alpha_lower_bound(10.0, 100, -9.75, mean_excess=30.0)
        assert late > early

    def test_score_expectation_sign(self):
        degree = FreeriderDegree.uniform(0.1)
        assert freerider_score_expectation(degree, 12, 4, 0.93) < 0


class TestMinimumPeriods:
    def test_round_trip_with_beta_bound(self):
        r = minimum_periods_for_beta(25.6, -9.75, 0.01)
        assert beta_upper_bound(25.6, r, -9.75) <= 0.01
        assert beta_upper_bound(25.6, r - 1, -9.75) > 0.01


class TestEntropyAnalysis:
    def test_max_entropy_paper_value(self):
        # log2(600) = 9.23 (§6.3.2).
        assert max_fanout_entropy(50, 12) == pytest.approx(9.23, abs=0.005)

    def test_collusion_entropy_at_uniform_point(self):
        # p_m = m'/(n_h f) is the unbiased point: entropy = log2(n_h f).
        h = collusion_entropy(25 / 600, 25, 600)
        assert h == pytest.approx(math.log2(600), abs=1e-9)

    def test_collusion_entropy_at_full_bias(self):
        assert collusion_entropy(1.0, 25, 600) == pytest.approx(math.log2(25))

    def test_paper_inversion_21_percent(self):
        # γ=8.95, m'=25, n_h f=600 → p*_m ≈ 0.21 (§6.3.2).
        assert max_bias_probability(8.95, 25, 600) == pytest.approx(0.21, abs=0.01)

    def test_gamma_above_max_returns_uniform_share(self):
        assert max_bias_probability(20.0, 25, 600) == pytest.approx(25 / 600)

    def test_gamma_below_log_m_allows_full_bias(self):
        assert max_bias_probability(1.0, 25, 600) == 1.0

    @given(st.integers(min_value=2, max_value=100))
    def test_bias_ceiling_decreases_with_smaller_coalitions(self, m):
        # A larger coalition can hide more bias at the same γ.
        small = max_bias_probability(8.95, max(1, m // 2), 600)
        large = max_bias_probability(8.95, m, 600)
        assert large >= small - 1e-9

    def test_longer_history_tightens_the_ceiling(self):
        # With γ scaled to keep the same false-expulsion headroom below
        # log2(n_h f), a longer window leaves the coalition less room.
        from repro.analysis.entropy_analysis import gamma_for_window

        short = max_bias_probability(gamma_for_window(300), 25, 300)
        mid = max_bias_probability(gamma_for_window(600), 25, 600)
        long = max_bias_probability(gamma_for_window(1200), 25, 1200)
        assert long < mid < short

    def test_gamma_for_window_recovers_paper_value(self):
        from repro.analysis.entropy_analysis import gamma_for_window

        assert gamma_for_window(600) == pytest.approx(8.95, abs=1e-9)

    def test_required_history_for_bias(self):
        from repro.analysis.entropy_analysis import gamma_for_window

        n_h = required_history_for_bias(25, 12, max_tolerated_bias=0.18)
        history = n_h * 12
        assert max_bias_probability(gamma_for_window(history), 25, history) <= 0.18
        # One period less is not enough.
        smaller = (n_h - 1) * 12
        assert max_bias_probability(gamma_for_window(smaller), 25, smaller) > 0.18

    def test_collusion_entropy_validation(self):
        with pytest.raises(ValueError):
            collusion_entropy(0.5, 600, 600)  # coalition >= history
