"""Tests for the Table 3 message-complexity model."""

import pytest

from repro.analysis.overhead import (
    MessageCountModel,
    expected_message_counts,
    scaling_exponent,
)


class TestExpectedCounts:
    def test_three_phase_message_count(self):
        # §6.1: the protocol itself sends f(2 + |R|) messages.
        model = expected_message_counts(7, 4, 1.0, 25)
        assert model.data_messages == 7 * (2 + 4)

    def test_confirms_are_pdcc_f_squared(self):
        model = expected_message_counts(12, 4, 0.5, 25)
        assert model.confirms_sent == pytest.approx(0.5 * 144)
        assert model.confirm_responses_sent == pytest.approx(0.5 * 144)

    def test_acks_always_sent(self):
        # Table 5's note: overhead non-zero at p_dcc = 0 because acks are
        # always sent.
        model = expected_message_counts(7, 4, 0.0, 25)
        assert model.acks == 7
        assert model.confirms_sent == 0

    def test_blame_bound_scales_with_m_f(self):
        model = expected_message_counts(7, 4, 1.0, 25)
        assert model.max_blame_messages == pytest.approx(25 * 7 * 2)

    def test_overhead_ratio(self):
        model = expected_message_counts(7, 4, 1.0, 25)
        expected = (7 + 49 + 49) / 42
        assert model.message_overhead_ratio == pytest.approx(expected)

    def test_zero_data_guard(self):
        model = MessageCountModel(0, 0, 0, 0, 0, 0, 0)
        assert model.message_overhead_ratio == 0.0


class TestScalingExponent:
    def test_perfect_quadratic(self):
        xs = [4, 8, 16]
        ys = [x**2 for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(2.0)

    def test_linear(self):
        xs = [2, 4, 8]
        ys = [3 * x for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(1.0)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            scaling_exponent([2], [4])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            scaling_exponent([1, 2], [0, 4])
