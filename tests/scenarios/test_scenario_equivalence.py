"""Registry acceptance: every scenario runs, round-trips, and matches
its legacy entry point byte for byte.

Three pins, parametrised over the registry:

* every registered scenario runs at its declared smoke size and its
  ``RunResult`` envelope round-trips losslessly through JSON;
* every *paper* scenario's artifact is byte-identical (pickle) to the
  legacy ``run_*`` entry point called with the same parameters;
* the ``jobs`` fan-out stays bit-identical through the registry path.
"""

import pickle

import pytest

from repro.scenarios import RunResult, get, list_scenarios, run_scenario

ALL_SCENARIOS = [spec.name for spec in list_scenarios()]


@pytest.fixture(scope="module")
def smoke_results():
    """Lazily run scenarios at smoke size, once per module."""
    cache = {}

    def run(name: str) -> RunResult:
        if name not in cache:
            spec = get(name)
            cache[name] = run_scenario(name, **spec.smoke)
        return cache[name]

    return run


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_smoke_run_and_lossless_round_trip(smoke_results, name):
    result = smoke_results(name)
    assert result.scenario == name
    assert result.params == get(name).smoke_params()
    assert result.seed == result.params.get("seed")
    text = result.to_json()
    reparsed = RunResult.from_json(text)
    assert reparsed == result
    assert reparsed.to_json() == text
    # The envelope is self-describing: metrics must be non-trivial.
    assert result.metrics


def _legacy_calls():
    """name -> callable reproducing the smoke run via the legacy API."""
    from repro.experiments.calibration import calibrate
    from repro.experiments.fig1 import run_fig1
    from repro.experiments.fig10 import run_fig10
    from repro.experiments.fig11 import run_fig11
    from repro.experiments.fig12 import run_fig12
    from repro.experiments.fig13 import run_fig13
    from repro.experiments.fig14 import run_fig14
    from repro.experiments.table3 import run_table3
    from repro.experiments.table5 import run_table5

    def legacy_calibration():
        from dataclasses import replace

        from repro.config import planetlab_params

        gossip, lifting = planetlab_params()
        smoke = get("calibration").smoke_params()
        return calibrate(
            gossip,
            replace(lifting, p_dcc=smoke["p_dcc"]),
            seed=smoke["seed"],
            duration=smoke["duration"],
            n=smoke["n"],
            loss_rate=smoke["loss"],
            degraded_fraction=smoke["degraded_fraction"],
            degraded_loss=smoke["degraded_loss"],
            degraded_upload=smoke["degraded_upload"] or None,
        )

    return {
        "fig1": lambda smoke: run_fig1(
            n=smoke["n"],
            duration=smoke["duration"],
            seed=smoke["seed"],
            freerider_fraction=smoke["freerider_fraction"],
            stream_rate_kbps=smoke["stream_rate_kbps"],
            lags=smoke["lags"],
            coverage=smoke["coverage"],
            jobs=smoke["jobs"],
        ),
        "fig10": lambda smoke: run_fig10(n=smoke["n"], seed=smoke["seed"]),
        "fig11": lambda smoke: run_fig11(
            n=smoke["n"],
            freeriders=smoke["freeriders"],
            rounds=smoke["rounds"],
            delta=smoke["delta"],
            seed=smoke["seed"],
            shards=smoke["shards"],
        ),
        "fig12": lambda smoke: run_fig12(
            deltas=smoke["deltas"],
            rounds=smoke["rounds"],
            samples_per_point=smoke["samples_per_point"],
            seed=smoke["seed"],
        ),
        "fig13": lambda smoke: run_fig13(n=smoke["n"], seed=smoke["seed"]),
        "fig14": lambda smoke: run_fig14(
            n=smoke["n"],
            seed=smoke["seed"],
            times=smoke["times"],
            p_dcc_values=smoke["p_dcc_values"],
            calibration_duration=smoke["calibration_duration"],
        ),
        "table3": lambda smoke: run_table3(
            n=smoke["n"],
            duration=smoke["duration"],
            seed=smoke["seed"],
            p_dcc=smoke["p_dcc"],
            fanout_sweep=smoke["fanout_sweep"],
        ),
        "table5": lambda smoke: run_table5(
            n=smoke["n"],
            duration=smoke["duration"],
            seed=smoke["seed"],
            rates_kbps=smoke["rates_kbps"],
            p_dcc_values=smoke["p_dcc_values"],
        ),
        "calibration": lambda smoke: legacy_calibration(),
    }


PAPER_SCENARIOS = sorted(_legacy_calls())


@pytest.mark.parametrize("name", PAPER_SCENARIOS)
def test_registry_byte_identical_to_legacy_runner(smoke_results, name):
    """Acceptance: fixed-seed output of the registry path is
    byte-identical to the legacy ``run_*`` entry point."""
    smoke = get(name).smoke_params()
    legacy = _legacy_calls()[name](smoke)
    via_registry = smoke_results(name).artifact
    assert pickle.dumps(legacy) == pickle.dumps(via_registry)


def test_scaling_registry_matches_legacy_structure(smoke_results):
    """Scaling measures wall clock (non-deterministic), so the A/B pins
    the deterministic structure: sizes and engine event counts."""
    from repro.experiments.scaling import run_scaling

    smoke = get("scaling").smoke_params()
    legacy = run_scaling(
        sizes=smoke["sizes"],
        duration=smoke["duration"],
        warmup=smoke["warmup"],
        seed=smoke["seed"],
    )
    via_registry = smoke_results("scaling").artifact
    assert [p.n for p in legacy.points] == [p.n for p in via_registry.points]
    assert [p.events for p in legacy.points] == [p.events for p in via_registry.points]


def test_fig1_jobs_fanout_bit_identical():
    """``run_scenario("fig1", jobs=2)`` == legacy ``run_fig1(jobs=2)``."""
    from repro.experiments.fig1 import run_fig1

    kwargs = dict(n=24, duration=4.0, lags=(0.0, 2.0, 4.0))
    legacy = run_fig1(jobs=2, **kwargs)
    via_registry = run_scenario("fig1", jobs=2, **kwargs).artifact
    serial = run_scenario("fig1", jobs=1, **kwargs).artifact
    assert pickle.dumps(legacy) == pickle.dumps(via_registry)
    assert pickle.dumps(serial) == pickle.dumps(via_registry)
