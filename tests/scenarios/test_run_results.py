"""The RunResult envelope: canonicalisation, JSON round-trip, equality."""

import json
import math

import numpy as np
import pytest

from repro.scenarios import RUN_RESULT_SCHEMA, RunResult


def _envelope(**overrides) -> RunResult:
    kwargs = dict(
        scenario="test",
        params={"n": 4, "duration": 2.5, "rates": (1.0, 2.0)},
        metrics={"value": 1.25, "series": (0.1, 0.2)},
        seed=4,
        sim_seconds=2.5,
        wall_seconds=0.125,
    )
    kwargs.update(overrides)
    return RunResult(**kwargs)


class TestCanonicalisation:
    def test_numpy_arrays_become_tuples(self):
        result = _envelope(metrics={"xs": np.arange(3, dtype=float)})
        assert result.metrics["xs"] == (0.0, 1.0, 2.0)
        assert isinstance(result.metrics["xs"], tuple)

    def test_numpy_scalars_become_python(self):
        result = _envelope(
            metrics={"i": np.int64(3), "f": np.float64(0.5), "b": np.bool_(True)}
        )
        assert result.metrics == {"i": 3, "f": 0.5, "b": True}
        assert type(result.metrics["i"]) is int
        assert type(result.metrics["f"]) is float
        assert type(result.metrics["b"]) is bool

    def test_lists_become_tuples_deeply(self):
        result = _envelope(metrics={"nested": [[1, 2], [3]]})
        assert result.metrics["nested"] == ((1, 2), (3,))

    def test_numeric_mapping_keys_become_strings(self):
        result = _envelope(metrics={100: "a", 2.5: "b"})
        assert result.metrics == {"100": "a", "2.5": "b"}

    def test_unsafe_values_rejected(self):
        with pytest.raises(TypeError, match="not JSON-safe"):
            _envelope(metrics={"obj": object()})

    def test_unsafe_keys_rejected(self):
        with pytest.raises(TypeError, match="mapping key"):
            _envelope(metrics={("a", "b"): 1})


class TestJsonRoundTrip:
    def test_lossless(self):
        result = _envelope()
        reparsed = RunResult.from_json(result.to_json())
        assert reparsed == result
        assert reparsed.params == result.params
        assert reparsed.metrics == result.metrics
        assert reparsed.to_json() == result.to_json()

    def test_float_fidelity(self):
        value = 0.1 + 0.2  # 0.30000000000000004 — must survive exactly
        result = _envelope(metrics={"v": value})
        assert RunResult.from_json(result.to_json()).metrics["v"] == value

    def test_nan_and_inf_survive(self):
        result = _envelope(metrics={"nan": float("nan"), "inf": float("inf")})
        reparsed = RunResult.from_json(result.to_json())
        assert math.isnan(reparsed.metrics["nan"])
        assert reparsed.metrics["inf"] == float("inf")
        assert reparsed == result  # equality is NaN-tolerant

    def test_schema_stamped_and_checked(self):
        payload = json.loads(_envelope().to_json())
        assert payload["schema"] == RUN_RESULT_SCHEMA
        payload["schema"] = "something/else"
        with pytest.raises(ValueError, match="unsupported RunResult schema"):
            RunResult.from_json(json.dumps(payload))

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            RunResult.from_json("[1, 2]")

    def test_file_round_trip(self, tmp_path):
        result = _envelope()
        path = tmp_path / "result.json"
        result.dump(path)
        assert RunResult.load(path) == result
        # dump() pretty-prints for reviewable diffs.
        assert path.read_text().count("\n") > 3


class TestProvenance:
    def test_round_trip(self):
        result = _envelope(provenance={"git_revision": "abc123", "fingerprint": "deadbeef"})
        reparsed = RunResult.from_json(result.to_json())
        assert reparsed.provenance == result.provenance
        assert reparsed == result

    def test_old_envelopes_without_provenance_load(self):
        payload = json.loads(_envelope().to_json())
        del payload["provenance"]  # an envelope written before the field existed
        loaded = RunResult.from_json(json.dumps(payload))
        assert loaded.provenance == {}

    def test_collect_provenance_shape(self):
        from repro.util.provenance import collect_provenance

        info = collect_provenance()
        assert set(info) >= {"git_revision", "fingerprint", "hostname", "python"}
        assert isinstance(info["git_revision"], str) and info["git_revision"]
        # Fingerprint is a short stable hex digest of the machine identity.
        assert len(info["fingerprint"]) == 12
        int(info["fingerprint"], 16)
        # Callers get a copy — mutating it must not poison the cache.
        info["git_revision"] = "tampered"
        assert collect_provenance()["git_revision"] != "tampered"

    def test_run_scenario_stamps_provenance(self):
        from repro.scenarios.registry import run_scenario

        result = run_scenario("analyze")
        assert result.provenance.get("git_revision")
        assert result.provenance.get("fingerprint")


class TestEquality:
    def test_artifact_excluded(self):
        assert _envelope(artifact=object()) == _envelope(artifact=None)

    def test_metrics_differences_detected(self):
        assert _envelope() != _envelope(metrics={"value": 2.0})

    def test_wall_seconds_participate(self):
        assert _envelope(wall_seconds=1.0) != _envelope(wall_seconds=2.0)

    def test_not_equal_to_other_types(self):
        assert _envelope() != {"scenario": "test"}

    def test_with_metrics_replaces_payload(self):
        replaced = _envelope().with_metrics({"other": 1})
        assert replaced.metrics == {"other": 1}
        assert replaced.scenario == "test"
