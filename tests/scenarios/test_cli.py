"""The generic CLI: run/list/describe, derived flags, alias delegation."""

import argparse
import json

import pytest

from repro import cli
from repro.scenarios import get, list_scenarios


class TestList:
    def test_lists_every_scenario(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for spec in list_scenarios():
            assert spec.name in out

    def test_tag_filter(self, capsys):
        assert cli.main(["list", "--tag", "figure"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table5" not in out

    def test_unknown_tag_fails(self, capsys):
        assert cli.main(["list", "--tag", "nope"]) == 1


class TestDescribe:
    def test_shows_params_with_defaults(self, capsys):
        assert cli.main(["describe", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "freerider_fraction" in out
        assert "default" in out
        assert "smoke-size overrides" in out

    def test_unknown_scenario_exit_2(self, capsys):
        assert cli.main(["describe", "fig15"]) == 2
        assert "did you mean" in capsys.readouterr().err


class TestRun:
    def test_run_without_scenario_lists_them(self, capsys):
        assert cli.main(["run"]) == 0
        out = capsys.readouterr().out
        assert "registered scenarios" in out and "fig1" in out

    def test_unknown_scenario_exit_2(self, capsys):
        assert cli.main(["run", "fig15"]) == 2
        assert "did you mean 'fig1'" in capsys.readouterr().err

    def test_derived_flags_and_render(self, capsys):
        assert cli.main(["run", "analyze", "--fanout", "10"]) == 0
        out = capsys.readouterr().out
        assert "f=10" in out

    def test_set_overrides(self, capsys):
        assert cli.main(["run", "analyze", "--set", "fanout=9"]) == 0
        assert "f=9" in capsys.readouterr().out

    def test_set_with_dashes_and_sequences(self, capsys):
        code = cli.main(
            ["run", "fig12", "--set", "deltas=0.0,0.1",
             "--set", "samples_per_point=50", "--set", "rounds=2", "--json", "-"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["deltas"] == [0.0, 0.1]

    def test_bad_param_value_exit_2(self, capsys):
        assert cli.main(["run", "fig11", "--set", "n=hello"]) == 2
        assert "expects int" in capsys.readouterr().err

    def test_unknown_param_exit_2(self, capsys):
        assert cli.main(["run", "fig11", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_json_stdout_is_a_valid_envelope(self, capsys):
        assert cli.main(["run", "analyze", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.run_result/1"
        assert payload["scenario"] == "analyze"
        assert payload["params"]["fanout"] == 12

    def test_json_file(self, tmp_path, capsys):
        from repro.scenarios import RunResult

        path = tmp_path / "out.json"
        assert cli.main(["run", "analyze", "--json", str(path)]) == 0
        assert RunResult.load(path).scenario == "analyze"

    def test_profile_writes_stats(self, tmp_path, capsys):
        path = tmp_path / "analyze.prof"
        assert cli.main(["run", "analyze", "--profile", str(path)]) == 0
        assert path.exists() and path.stat().st_size > 0


def _parser_flags(parser: argparse.ArgumentParser) -> set:
    flags = set()
    for action in parser._actions:  # noqa: SLF001 - introspection in tests
        flags.update(action.option_strings)
    return flags


class TestAliasUniformity:
    """The param-plumbing drift audit: every scenario-backed command's
    flags are derived from the Param declarations, so a declared
    ``seed``/``jobs`` parameter always has a flag, and ``--profile`` /
    ``--json`` / ``--set`` exist everywhere."""

    @pytest.fixture(scope="class")
    def alias_parsers(self):
        parser = cli._build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        return {name: sub.choices[name] for name in cli.ALIASES}

    def test_run_options_everywhere(self, alias_parsers):
        for command, alias_parser in alias_parsers.items():
            flags = _parser_flags(alias_parser)
            assert {"--profile", "--json", "--set"} <= flags, command

    def test_declared_params_all_have_flags(self, alias_parsers):
        for command, alias_parser in alias_parsers.items():
            alias = cli.ALIASES[command]
            spec = get(alias.scenario)
            flags = _parser_flags(alias_parser)
            for param in spec.params:
                spelling = alias.renames.get(param.name, param.name)
                expected = "--" + spelling.replace("_", "-")
                assert expected in flags, f"{command}: {expected}"

    def test_seed_flag_uniform(self, alias_parsers):
        # Historically `analyze` and `live` lacked flags the others had;
        # derivation makes that structurally impossible.
        for command, alias_parser in alias_parsers.items():
            assert "--seed" in _parser_flags(alias_parser), command

    def test_legacy_spellings_preserved(self, alias_parsers):
        flags = _parser_flags(alias_parsers["health"])
        assert {"-n", "--nodes", "--freeriders", "-j", "--jobs"} <= flags
        flags = _parser_flags(alias_parsers["analyze"])
        assert {"-f", "--fanout", "-R", "--request-size"} <= flags
        flags = _parser_flags(alias_parsers["overhead"])
        assert {"--rates", "--p-dcc"} <= flags

    def test_health_loss_flag_accepted_but_warns(self, alias_parsers, capsys):
        # The pre-registry CLI accepted --loss on `health` and silently
        # ignored it; it must keep parsing (scripts keep working) but
        # now says so.
        assert "--loss" in _parser_flags(alias_parsers["health"])
        args = alias_parsers["health"].parse_args(["--loss", "0.05"])
        assert args.loss == "0.05"
        handler = args.handler
        del handler  # parsing is the contract; execution covered elsewhere

    def test_wrong_length_deltas_get_param_error(self):
        from repro.scenarios import ParamError, get

        for name, param in (("fig1", "heavy_deltas"), ("fig14", "deltas"),
                            ("live", "deltas")):
            with pytest.raises(ParamError, match="exactly 3 values"):
                get(name).resolve({param: (0.1, 0.2)})

    def test_alias_executes_scenario(self, capsys):
        assert cli.main(["analyze", "-f", "11"]) == 0
        assert "f=11" in capsys.readouterr().out

    def test_alias_default_override_applies(self, capsys):
        # `repro health` keeps its historical n=100 default (the fig1
        # scenario's own default is 150) — pin via the resolved params.
        spec = get("fig1")
        alias = cli.ALIASES["health"]
        overrides = dict(alias.defaults)
        assert spec.resolve(overrides)["n"] == 100
        assert spec.resolve(overrides)["seed"] == 1
