"""The scenario registry: registration, lookup, parameter resolution."""

import pytest

from repro.runtime.parallel import Job, Task
from repro.scenarios import (
    DuplicateScenarioError,
    Param,
    ParamError,
    ScenarioSpec,
    UnknownScenarioError,
    get,
    list_scenarios,
)
from repro.scenarios import registry as registry_module
from repro.scenarios.registry import _as_tasks, register, unregister


def _dummy_spec(name="dummy-spec", **kwargs) -> ScenarioSpec:
    defaults = dict(
        name=name,
        description="a test-only scenario",
        params=(Param("n", int, 4, "size"),),
        build_jobs=lambda params: [Task(fn=int, args=("7",))],
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestRegistration:
    def test_duplicate_name_raises(self):
        register(_dummy_spec())
        try:
            with pytest.raises(DuplicateScenarioError, match="dummy-spec"):
                register(_dummy_spec())
        finally:
            unregister("dummy-spec")

    def test_builtin_scenario_names_are_registered(self):
        names = {spec.name for spec in list_scenarios()}
        assert {
            "fig1", "fig10", "fig11", "fig12", "fig13", "fig14",
            "table3", "table5", "scaling", "calibration",
            "detect", "analyze", "live",
        } <= names

    def test_unknown_scenario_raises_with_suggestion(self):
        with pytest.raises(UnknownScenarioError, match="did you mean 'fig1'"):
            get("fig15")

    def test_list_by_tag(self):
        figures = list_scenarios(tag="figure")
        assert {spec.name for spec in figures} == {
            "fig1", "fig10", "fig11", "fig12", "fig13", "fig14"
        }

    def test_every_scenario_declares_a_seed(self):
        # The envelope records the seed; every workload must be
        # reproducible from its declared parameters.
        for spec in list_scenarios():
            assert "seed" in spec.param_names(), spec.name

    def test_every_scenario_smoke_resolves(self):
        for spec in list_scenarios():
            params = spec.smoke_params()
            assert set(params) == set(spec.param_names()), spec.name


class TestParamCoercion:
    def test_unknown_param_lists_declared_and_suggests(self):
        spec = get("fig11")
        with pytest.raises(ParamError, match="declared: n, freeriders"):
            spec.resolve({"bogus": 1})
        with pytest.raises(ParamError, match="did you mean 'shards'"):
            spec.resolve({"shard": 4})

    def test_bad_type_message_names_param_and_types(self):
        spec = get("fig1")
        with pytest.raises(ParamError, match="'n' expects int, got 'hello'"):
            spec.resolve({"n": "hello"})

    def test_string_coercion_for_cli_values(self):
        spec = get("fig1")
        params = spec.resolve({"n": "24", "duration": "4.5", "lags": "0,2,4"})
        assert params["n"] == 24
        assert params["duration"] == 4.5
        assert params["lags"] == (0.0, 2.0, 4.0)

    def test_float_param_accepts_int(self):
        spec = get("fig1")
        assert spec.resolve({"duration": 5})["duration"] == 5.0

    def test_int_param_rejects_fractional_float(self):
        spec = get("fig1")
        with pytest.raises(ParamError, match="'n' expects int"):
            spec.resolve({"n": 24.5})

    def test_bool_param_coercion(self):
        spec = get("detect")
        assert spec.resolve({"expel": "true"})["expel"] is True
        assert spec.resolve({"expel": "0"})["expel"] is False
        with pytest.raises(ParamError, match="'expel' expects bool"):
            spec.resolve({"expel": "maybe"})

    def test_validator_constraint_in_message(self):
        spec = get("fig1")
        with pytest.raises(ParamError, match=">= 8"):
            spec.resolve({"n": 2})

    def test_none_means_default(self):
        spec = get("fig1")
        assert spec.resolve({"lags": None})["lags"] == spec.param("lags").default

    def test_resolution_order_matches_declaration(self):
        spec = get("fig1")
        assert list(spec.resolve({})) == list(spec.param_names())

    def test_sequence_default_normalised_to_tuple(self):
        param = Param("xs", float, [1, 2], sequence=True)
        assert param.default == (1.0, 2.0)

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(ParamError, match="duplicate parameter"):
            _dummy_spec(params=(Param("n", int, 1), Param("n", int, 2)))


class TestWorkNormalisation:
    def test_job_provenance_stamped(self):
        job = Job(config=None, until=1.0, extractors=())
        [task] = _as_tasks([job], {"n": 4, "rates": (1.0, 2.0)}, "dummy")
        stamped = task.args[0]
        assert stamped.params == (("n", 4), ("rates", (1.0, 2.0)))

    def test_job_existing_provenance_kept(self):
        job = Job(config=None, until=1.0, extractors=(), params={"mine": 1})
        [task] = _as_tasks([job], {"n": 4}, "dummy")
        assert task.args[0].params == (("mine", 1),)

    def test_tasks_pass_through(self):
        task = Task(fn=int, args=("3",), key="k")
        assert _as_tasks([task], {}, "dummy") == [task]

    def test_rejects_other_item_types(self):
        with pytest.raises(TypeError, match="Job or Task"):
            _as_tasks([object()], {}, "dummy")


class TestEngine:
    def test_single_result_without_reduce_is_artifact(self):
        register(
            _dummy_spec(
                name="dummy-single",
                summarize=lambda artifact, params: {"value": artifact},
            )
        )
        try:
            result = registry_module.run_scenario("dummy-single")
            assert result.artifact == 7
            assert result.metrics == {"value": 7}
        finally:
            unregister("dummy-single")

    def test_multi_result_without_reduce_raises(self):
        register(
            _dummy_spec(
                name="dummy-multi",
                build_jobs=lambda params: [Task(fn=int), Task(fn=int)],
            )
        )
        try:
            with pytest.raises(TypeError, match="reduce"):
                registry_module.run_scenario("dummy-multi")
        finally:
            unregister("dummy-multi")

    def test_non_mapping_artifact_without_summarize_raises(self):
        register(
            _dummy_spec(
                name="dummy-nosumm",
                build_jobs=lambda params: [Task(fn=list)],
            )
        )
        try:
            with pytest.raises(TypeError, match="summarize"):
                registry_module.run_scenario("dummy-nosumm")
        finally:
            unregister("dummy-nosumm")

    def test_mapping_artifact_is_metrics(self):
        register(
            _dummy_spec(
                name="dummy-map",
                build_jobs=lambda params: [Task(fn=dict, kwargs={"x": 1})],
            )
        )
        try:
            result = registry_module.run_scenario("dummy-map")
            assert result.metrics == {"x": 1}
        finally:
            unregister("dummy-map")
