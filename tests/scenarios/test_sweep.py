"""Parameter sweeps: ``run_sweep`` product semantics and the ``--sweep`` flag."""

import json

import pytest

from repro import cli
from repro.runtime.parallel import Task
from repro.scenarios import Param, ParamError, ScenarioSpec, run_sweep
from repro.scenarios.registry import register, unregister


def _cell(a, b):
    return {"a": a, "b": b, "product": a * b}


SWEEPABLE = "sweepable-test-scenario"


@pytest.fixture
def sweepable():
    spec = ScenarioSpec(
        name=SWEEPABLE,
        description="test-only sweep target",
        params=(
            Param("a", int, 1, "first factor"),
            Param("b", int, 10, "second factor"),
            Param("seed", int, 0, "unused"),
        ),
        build_jobs=lambda params: [
            Task(fn=_cell, args=(params["a"], params["b"]))
        ],
    )
    register(spec)
    yield spec
    unregister(SWEEPABLE)


class TestRunSweep:
    def test_product_order_first_axis_slowest(self, sweepable):
        results = run_sweep(SWEEPABLE, {"a": [1, 2], "b": [10, 20]})
        cells = [(r.params["a"], r.params["b"]) for r in results]
        assert cells == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert [r.metrics["product"] for r in results] == [10, 20, 20, 40]

    def test_each_cell_is_a_full_envelope(self, sweepable):
        results = run_sweep(SWEEPABLE, {"a": [3]})
        (result,) = results
        assert result.scenario == SWEEPABLE
        assert result.provenance
        assert result.params["b"] == 10  # defaults fill the unswept axes

    def test_string_cells_go_through_coercion(self, sweepable):
        results = run_sweep(SWEEPABLE, {"a": ["4", "5"]})
        assert [r.params["a"] for r in results] == [4, 5]

    def test_overrides_pin_the_unswept_axes(self, sweepable):
        results = run_sweep(SWEEPABLE, {"a": [1, 2]}, b=7)
        assert all(r.params["b"] == 7 for r in results)

    def test_swept_and_pinned_conflict(self, sweepable):
        with pytest.raises(ParamError, match="both swept and pinned"):
            run_sweep(SWEEPABLE, {"a": [1, 2]}, a=3)

    def test_unknown_axis_name(self, sweepable):
        with pytest.raises(ParamError):
            run_sweep(SWEEPABLE, {"bogus": [1]})

    def test_empty_axes_rejected(self, sweepable):
        with pytest.raises(ParamError, match="at least one axis"):
            run_sweep(SWEEPABLE, {})
        with pytest.raises(ParamError, match="no values"):
            run_sweep(SWEEPABLE, {"a": []})


class TestCliSweep:
    def test_sweep_renders_per_cell_headers(self, capsys):
        code = cli.main(["run", "analyze", "--sweep", "fanout=8,12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== analyze [fanout=8] ===" in out
        assert "=== analyze [fanout=12] ===" in out

    def test_sweep_json_stdout_is_an_array_of_envelopes(self, capsys):
        code = cli.main(
            ["run", "analyze", "--sweep", "fanout=8,12",
             "--sweep", "loss=0.04,0.07", "--json", "-"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert all(p["schema"] == "repro.run_result/1" for p in payload)
        assert [(p["params"]["fanout"], p["params"]["loss"]) for p in payload] == [
            (8, 0.04), (8, 0.07), (12, 0.04), (12, 0.07)
        ]

    def test_sweep_json_file(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        code = cli.main(
            ["run", "analyze", "--sweep", "fanout=8,12", "--json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert len(payload) == 2

    def test_swept_and_pinned_param_exit_2(self, capsys):
        code = cli.main(["run", "analyze", "--sweep", "fanout=8,12", "--fanout", "9"])
        assert code == 2
        assert "both swept and pinned" in capsys.readouterr().err

    def test_malformed_sweep_flag_exit_2(self, capsys):
        assert cli.main(["run", "analyze", "--sweep", "fanout"]) == 2
        assert "expects PARAM=A,B,C" in capsys.readouterr().err
        assert cli.main(["run", "analyze", "--sweep", "fanout="]) == 2
        assert "lists no values" in capsys.readouterr().err
        code = cli.main(
            ["run", "analyze", "--sweep", "fanout=8", "--sweep", "fanout=9"]
        )
        assert code == 2
        assert "twice" in capsys.readouterr().err

    def test_unknown_sweep_param_exit_2(self, capsys):
        assert cli.main(["run", "analyze", "--sweep", "bogus=1,2"]) == 2
