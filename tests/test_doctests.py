"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis.entropy_analysis
import repro.analysis.overhead
import repro.analysis.wrongful_blames
import repro.config
import repro.core.blames
import repro.mc.entropy
import repro.membership.full
import repro.sim.bandwidth
import repro.sim.engine
import repro.util.multiset
import repro.util.rng
import repro.util.stats
import repro.util.validation

MODULES = [
    repro.analysis.entropy_analysis,
    repro.analysis.overhead,
    repro.analysis.wrongful_blames,
    repro.config,
    repro.core.blames,
    repro.mc.entropy,
    repro.membership.full,
    repro.sim.bandwidth,
    repro.sim.engine,
    repro.util.multiset,
    repro.util.rng,
    repro.util.stats,
    repro.util.validation,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0 or True  # some modules have none; fine
