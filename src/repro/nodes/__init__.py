"""Node behaviour policies.

The protocol node (:class:`repro.gossip.protocol.GossipNode`) delegates
every decision a freerider could subvert to a :class:`Behavior` object:
partner selection, proposal content, serve content, ack content, witness
testimony, audit answers.  Honest nodes use the defaults; the attack
classes of §4 are implemented as overrides:

* :class:`FreeriderBehavior` — the wise freerider of §6.3.1, degree
  ``Δ = (δ1, δ2, δ3)`` plus the gossip-period-stretching attack.
* :class:`ColludingBehavior` — adds biased partner selection towards
  the coalition, cover-ups (never blame / always confirm colluders) and
  optionally the man-in-the-middle attack of Figure 8b.
"""

from repro.nodes.behavior import Behavior, HonestBehavior
from repro.nodes.colluder import ColludingBehavior
from repro.nodes.freerider import FreeriderBehavior

__all__ = ["Behavior", "ColludingBehavior", "FreeriderBehavior", "HonestBehavior"]
