"""The wise (non-colluding) freerider of §6.3.1.

Deviates along the paper's degree of freeriding ``Δ = (δ1, δ2, δ3)``:

* contacts only ``f̂ = (1-δ1)·f`` partners per period;
* silently drops, from its proposals, the chunks received from a
  proportion ``δ2`` of its servers (whole servers at a time — the
  paper's footnote 1: removing chunks from the fewest sources
  minimises blame);
* serves each requested chunk only with probability ``1-δ3``.

Optionally stretches its gossip period by an integer factor
(§4.1(iv)).  The freerider still *requests and consumes* everything —
that is the point of freeriding — and it still runs verifications
against others (they cost almost nothing and deviating there brings no
bandwidth gain).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import FreeriderDegree
from repro.nodes.behavior import Behavior, ChunkId, NodeId


class FreeriderBehavior(Behavior):
    """Implements the Δ-degree freerider."""

    name = "freerider"

    def __init__(self, degree: FreeriderDegree, period_stride: int = 1) -> None:
        super().__init__()
        self.degree = degree
        self._stride = max(1, int(period_stride))

    def select_partners(self, fanout: int) -> List[NodeId]:
        effective = self.degree.effective_fanout(fanout)
        if effective == 0:
            return []
        return self.node.sampler.sample(self.node.node_id, effective)

    def propose_filter(
        self, by_server: Dict[NodeId, List[ChunkId]]
    ) -> Dict[NodeId, List[ChunkId]]:
        if self.degree.delta2 <= 0.0 or not by_server:
            return by_server
        rng = self.node.rng
        kept: Dict[NodeId, List[ChunkId]] = {}
        for server, chunk_ids in by_server.items():
            if rng.random() >= self.degree.delta2:
                kept[server] = chunk_ids
        return kept

    def serve_filter(self, requested: List[ChunkId]) -> List[ChunkId]:
        if self.degree.delta3 <= 0.0 or not requested:
            return requested
        rng = self.node.rng
        return [c for c in requested if rng.random() >= self.degree.delta3]

    def period_stride(self) -> int:
        return self._stride

    def __repr__(self) -> str:
        return f"FreeriderBehavior({self.degree}, stride={self._stride})"
