"""Colluding freeriders (§4.1(iii), §5.2's cover-ups, Figure 8b's MITM).

A coalition shares a member set; each member

* biases partner selection: with probability ``p_m`` a slot goes to a
  uniformly random co-colluder, otherwise to the ambient sampler
  (§6.3.2's model — the entropy-maximising strategy is uniform within
  each class);
* covers co-colluders up: answers confirm requests about them
  positively, acknowledges their history polls, never blames them;
* optionally mounts the **man-in-the-middle** attack: acks name
  co-colluders as the propose partners (who will confirm anything) and
  serves are stamped with a co-colluder's identity, erasing the
  freerider from the verification chain — the attack only local
  history auditing can catch;
* optionally **forges audit histories**, replacing the coalition-heavy
  partner list with uniformly sampled honest nodes to pass the entropy
  check — which the a-posteriori cross-check punishes because the
  honest nodes deny the proposals.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.config import FreeriderDegree
from repro.nodes.behavior import ChunkId, HistorySnapshot, NodeId
from repro.nodes.freerider import FreeriderBehavior


class Coalition:
    """The shared state of a colluding group."""

    def __init__(self, members: Iterable[NodeId]) -> None:
        self.members: Set[NodeId] = set(members)

    def others(self, member: NodeId) -> List[NodeId]:
        """Co-colluders of ``member``."""
        return [m for m in self.members if m != member]

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)


class ColludingBehavior(FreeriderBehavior):
    """A coalition member; extends the Δ-freerider with cover-ups."""

    name = "colluder"

    def __init__(
        self,
        degree: FreeriderDegree,
        coalition: Coalition,
        bias: float = 0.0,
        *,
        man_in_the_middle: bool = False,
        forge_history: bool = False,
        period_stride: int = 1,
    ) -> None:
        super().__init__(degree, period_stride=period_stride)
        self.coalition = coalition
        self.bias = bias
        self.man_in_the_middle = man_in_the_middle
        self.forge_history = forge_history

    # ------------------------------------------------------------------
    # biased partner selection (§6.3.2's p_m model)
    # ------------------------------------------------------------------
    def select_partners(self, fanout: int) -> List[NodeId]:
        effective = self.degree.effective_fanout(fanout)
        if effective == 0:
            return []
        if self.bias <= 0.0:
            return self.node.sampler.sample(self.node.node_id, effective)
        rng = self.node.rng
        friends = self.coalition.others(self.node.node_id)
        chosen: List[NodeId] = []
        seen: Set[NodeId] = set()
        honest_pool = self.node.sampler.sample(self.node.node_id, effective)
        honest_iter = iter(honest_pool)
        for _slot in range(effective):
            pick = None
            if friends and rng.random() < self.bias:
                pick = friends[int(rng.integers(0, len(friends)))]
            else:
                pick = next(honest_iter, None)
                if pick is None and friends:
                    pick = friends[int(rng.integers(0, len(friends)))]
            if pick is not None and pick not in seen:
                seen.add(pick)
                chosen.append(pick)
        return chosen

    # ------------------------------------------------------------------
    # cover-ups
    # ------------------------------------------------------------------
    def witness_valid(self, proposer: NodeId, truthful: bool) -> bool:
        if proposer in self.coalition:
            return True
        return truthful

    def should_blame(self, target: NodeId) -> bool:
        return target not in self.coalition

    def poll_acknowledge(self, target: NodeId, truthful: bool) -> bool:
        if target in self.coalition:
            return True
        return truthful

    def poll_confirm_senders(self, target: NodeId, truthful: List[NodeId]) -> List[NodeId]:
        if target in self.coalition and not truthful:
            # Fabricate a plausible-looking log so an empty testimony does
            # not immediately give the coalition away.
            return self.coalition.others(self.node.node_id)[: self.node.gossip.fanout]
        return truthful

    # ------------------------------------------------------------------
    # man-in-the-middle (Figure 8b)
    # ------------------------------------------------------------------
    def ack_partners(self, partners: Tuple[NodeId, ...]) -> Tuple[NodeId, ...]:
        if not self.man_in_the_middle:
            return partners
        friends = self.coalition.others(self.node.node_id)
        if not friends:
            return partners
        rng = self.node.rng
        fanout = self.node.gossip.fanout
        forged = [friends[int(rng.integers(0, len(friends)))] for _ in range(fanout)]
        # Distinct names look more plausible to the verifier.
        return tuple(dict.fromkeys(forged)) or partners

    def serve_origin(self) -> NodeId:
        if not self.man_in_the_middle:
            return self.node.node_id
        friends = self.coalition.others(self.node.node_id)
        if not friends:
            return self.node.node_id
        return friends[int(self.node.rng.integers(0, len(friends)))]

    # ------------------------------------------------------------------
    # audit evasion
    # ------------------------------------------------------------------
    def history_snapshot(self, snapshot: HistorySnapshot) -> HistorySnapshot:
        if not self.forge_history:
            return snapshot
        forged = []
        for period, partners, chunk_ids in snapshot:
            replacements = self.node.sampler.sample(self.node.node_id, len(partners))
            if len(replacements) < len(partners):
                replacements = list(partners)
            forged.append((period, tuple(replacements), chunk_ids))
        return tuple(forged)

    def __repr__(self) -> str:
        return (
            f"ColludingBehavior({self.degree}, bias={self.bias}, "
            f"mitm={self.man_in_the_middle}, forge={self.forge_history})"
        )
