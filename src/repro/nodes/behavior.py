"""The behaviour interface and its honest default.

Every hook receives the *protocol-correct* value and may return a
deviation; the honest behaviour returns it unchanged.  This makes the
protocol node itself attack-agnostic: §4's exhaustive attack list maps
one-to-one onto hook overrides.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

NodeId = int
ChunkId = int

HistorySnapshot = Tuple[Tuple[int, Tuple[NodeId, ...], Tuple[ChunkId, ...]], ...]


class Behavior:
    """Base behaviour: strictly protocol-compliant (honest).

    The node calls :meth:`bind` once at construction; hooks may use
    ``self.node`` (the protocol node) for parameters, sampling and
    randomness.
    """

    name = "honest"
    #: honest nodes perform verifications; a behaviour may opt out.
    verifies = True

    def __init__(self) -> None:
        self.node = None

    def bind(self, node) -> None:
        """Attach this behaviour to its protocol node."""
        self.node = node

    # ------------------------------------------------------------------
    # period hook (adaptation point)
    # ------------------------------------------------------------------
    def on_period_start(self, period: int) -> None:
        """Called once per local gossip period, before blames flush.

        The honest default does nothing; adaptive adversaries use it to
        re-tune their deviation or inject reputation traffic (see
        :mod:`repro.adversary`).  Hooks here may call
        ``self.node.send_blame`` — emissions land in the same period's
        flush.
        """

    # ------------------------------------------------------------------
    # propose phase (§4.1)
    # ------------------------------------------------------------------
    def select_partners(self, fanout: int) -> List[NodeId]:
        """The ``f`` propose partners for this period."""
        return self.node.sampler.sample(self.node.node_id, fanout)

    def propose_filter(
        self, by_server: Dict[NodeId, List[ChunkId]]
    ) -> Dict[NodeId, List[ChunkId]]:
        """Which received chunks to include, grouped by serving node."""
        return by_server

    def period_stride(self) -> int:
        """Propose every ``stride``-th period tick (>1 = the
        gossip-period-increase attack of §4.1(iv))."""
        return 1

    # ------------------------------------------------------------------
    # serving phase (§4.3)
    # ------------------------------------------------------------------
    def serve_filter(self, requested: List[ChunkId]) -> List[ChunkId]:
        """Which requested chunks to actually serve."""
        return requested

    def serve_origin(self) -> NodeId:
        """The origin identity stamped on serves (spoofed by MITM)."""
        return self.node.node_id

    # ------------------------------------------------------------------
    # verification hooks (§5)
    # ------------------------------------------------------------------
    def ack_partners(self, partners: Tuple[NodeId, ...]) -> Tuple[NodeId, ...]:
        """The partner list reported in acks (forged by colluders)."""
        return partners

    def witness_valid(self, proposer: NodeId, truthful: bool) -> bool:
        """Answer to a confirm request about ``proposer``."""
        return truthful

    def confirm_answer(self, requester: NodeId, proposer: NodeId, truthful: bool) -> bool:
        """Requester-aware confirm answer (equivocators differentiate by
        who asks); defaults to the requester-blind :meth:`witness_valid`."""
        return self.witness_valid(proposer, truthful)

    def should_blame(self, target: NodeId) -> bool:
        """Whether to emit a blame against ``target`` (cover-ups say no)."""
        return True

    def history_snapshot(self, snapshot: HistorySnapshot) -> HistorySnapshot:
        """The history returned to an auditor (forgeable)."""
        return snapshot

    def poll_acknowledge(self, target: NodeId, truthful: bool) -> bool:
        """Answer to an a-posteriori history poll about ``target``."""
        return truthful

    def poll_confirm_senders(
        self, target: NodeId, truthful: List[NodeId]
    ) -> List[NodeId]:
        """The confirm-sender log reported about ``target``."""
        return truthful

    def poll_answer(
        self,
        requester: NodeId,
        target: NodeId,
        truthful_ack: bool,
        truthful_senders: List[NodeId],
    ) -> Tuple[bool, List[NodeId]]:
        """Requester-aware history-poll answer ``(acknowledged,
        confirm_senders)``; defaults to the requester-blind hooks."""
        return (
            self.poll_acknowledge(target, truthful_ack),
            self.poll_confirm_senders(target, truthful_senders),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class HonestBehavior(Behavior):
    """Alias for the honest default, for explicitness at call sites."""

    name = "honest"
