"""Built-in scenarios without a legacy ``experiments/`` runner module.

These used to be hand-wired CLI subcommands only (``detect``,
``analyze``, ``live``); registering them makes every workload reachable
through the same ``run_scenario`` engine, gives them the uniform
``RunResult`` envelope, and derives their CLI flags from the same
:class:`~repro.scenarios.spec.Param` declarations as every figure —
no subcommand can silently lack a flag its parameters support anymore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.runtime.parallel import Task
from repro.scenarios.registry import scenario
from repro.scenarios.spec import Param, RunResult

__all__ = ["DetectResult"]


# ----------------------------------------------------------------------
# detect — the quickstart as a scenario
# ----------------------------------------------------------------------

@dataclass
class DetectResult:
    """Artifact of one calibrated detection run."""

    compensation: float
    eta: float
    report: object  # DetectionReport
    overhead: object  # OverheadReport
    expelled: List[int]
    wrongful: List[int]


def _compute_detect(params: dict) -> DetectResult:
    """Calibrate, deploy with freeriders, run, report (staged task)."""
    from dataclasses import replace

    from repro.config import FreeriderDegree, planetlab_params
    from repro.experiments.calibration import calibrate
    from repro.experiments.cluster import ClusterConfig, SimCluster

    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=params["n"], chunk_size=1400)
    lifting = replace(
        lifting, p_dcc=params["p_dcc"], assumed_loss_rate=params["loss"]
    )
    calibration = calibrate(
        gossip,
        lifting,
        seed=params["seed"] + 1,
        duration=10.0,
        loss_rate=params["loss"],
    )
    eta = calibration.eta_for_false_positives(0.01)
    cluster = SimCluster(
        ClusterConfig(
            gossip=gossip,
            lifting=lifting,
            seed=params["seed"],
            loss_rate=params["loss"],
            freerider_fraction=params["freeriders"],
            freerider_degree=FreeriderDegree(
                params["delta1"], params["delta2"], params["delta3"]
            ),
            compensation=calibration.compensation,
            expulsion_enabled=params["expel"],
        )
    )
    cluster.run(until=params["duration"])
    expelled = sorted(cluster.controller.expelled_nodes())
    wrongful = sorted(n for n in expelled if n not in cluster.freerider_ids)
    return DetectResult(
        compensation=calibration.compensation,
        eta=eta,
        report=cluster.detection(eta=eta),
        overhead=cluster.overhead(),
        expelled=list(expelled),
        wrongful=list(wrongful),
    )


def _detect_metrics(result: DetectResult, params) -> dict:
    return {
        "compensation": result.compensation,
        "eta": result.eta,
        "detection": result.report.detection,
        "false_positives": result.report.false_positives,
        "overhead_percent": result.overhead.overhead_percent,
        "expelled": result.expelled,
        "wrongful_expulsions": result.wrongful,
    }


def _detect_render(run: RunResult) -> str:
    result: DetectResult = run.artifact
    lines = [
        f"compensation b~ = {result.compensation:.2f}, eta = {result.eta:.2f}",
        result.report.summary(),
        str(result.overhead),
    ]
    if run.params.get("expel"):
        lines.append(
            f"expelled: {len(result.expelled)} ({len(result.wrongful)} honest)"
        )
    return "\n".join(lines)


@scenario(
    "detect",
    "Calibrate, deploy with freeriders, and report detection (the quickstart)",
    params=(
        Param("n", int, 100, "system size",
              validate=lambda v: v >= 8, constraint=">= 8"),
        Param("seed", int, 1, "experiment seed"),
        Param("duration", float, 30.0, "simulated seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("loss", float, 0.04, "datagram loss rate",
              validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
        Param("freeriders", float, 0.10, "freerider fraction",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("delta1", float, 1 / 7, "fanout-decrease degree δ1"),
        Param("delta2", float, 0.1, "partial-propose degree δ2"),
        Param("delta3", float, 0.1, "partial-serve degree δ3"),
        Param("p_dcc", float, 1.0, "cross-check probability",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("expel", bool, False, "enforce expulsion"),
    ),
    summarize=_detect_metrics,
    render=_detect_render,
    tags=("demo", "deployment", "staged"),
    smoke={"n": 40, "duration": 6.0},
)
def _detect_scenario(params):
    return [Task(fn=_compute_detect, args=(dict(params),), key="detect")]


# ----------------------------------------------------------------------
# analyze — the closed-form designer toolbox as a scenario
# ----------------------------------------------------------------------

def _compute_analyze(params: dict) -> Dict[str, object]:
    """Closed-form design constants + optional Monte-Carlo validation."""
    from repro.analysis.detection import (
        alpha_lower_bound,
        beta_upper_bound,
        minimum_periods_for_beta,
    )
    from repro.analysis.entropy_analysis import (
        achievable_max_bias,
        gamma_for_window,
        max_bias_probability,
        required_history_for_bias,
    )
    from repro.analysis.freerider_blames import expected_blame_excess
    from repro.analysis.overhead import expected_message_counts
    from repro.analysis.wrongful_blames import expected_blame_honest
    from repro.config import FreeriderDegree

    fanout = params["fanout"]
    request_size = params["request_size"]
    p_r = 1.0 - params["loss"]
    colluders = params["colluders"]
    window = params["history"] * fanout
    gamma = gamma_for_window(window)
    counts = expected_message_counts(fanout, request_size, 1.0, params["managers"])

    blame_excess = {}
    for delta in sorted({0.035, 0.05, 0.1, params["delta"]}):
        degree = FreeriderDegree.uniform(delta)
        blame_excess[f"{delta:g}"] = {
            "excess_per_period": expected_blame_excess(
                degree, fanout, request_size, p_r
            ),
            "bandwidth_gain": degree.bandwidth_gain,
        }

    metrics: Dict[str, object] = {
        "fanout": fanout,
        "request_size": request_size,
        "loss": params["loss"],
        "compensation": expected_blame_honest(fanout, request_size, p_r),
        "blame_excess_by_delta": blame_excess,
        "audit_window": window,
        "gamma": gamma,
        "collusion_ceiling": {
            "eq7": max_bias_probability(gamma, colluders, window),
            "achievable": achievable_max_bias(gamma, colluders, window),
        },
        "coalition_ceilings": {
            str(m): max_bias_probability(gamma, m, window) for m in (10, 25, 50)
        },
        "history_for_15pct_bias": required_history_for_bias(
            colluders, fanout, max_tolerated_bias=0.15
        ),
        "message_budget": {
            "data": counts.data_messages,
            "verification": counts.verification_messages,
            "max_blames": counts.max_blame_messages,
            "confirms_at_quarter_p_dcc": expected_message_counts(
                fanout, request_size, 0.25, params["managers"]
            ).confirms_sent,
        },
    }

    if params["mc_samples"] > 0:
        from repro.mc.blame_model import BlameModel, simulate_scores
        from repro.util.rng import make_generator

        eta, rounds = params["eta"], params["rounds"]
        degree = FreeriderDegree.uniform(params["delta"])
        model = BlameModel(fanout, request_size, p_r)
        rng = make_generator(params["seed"], "analyze")
        sigma = model.sample_sigma(rng, samples=params["mc_samples"])
        sigma_fr = model.sample_sigma(
            rng, samples=params["mc_samples"], degree=degree
        )
        excess = expected_blame_excess(degree, fanout, request_size, p_r)
        sample = simulate_scores(
            model,
            rng,
            n_honest=params["mc_samples"],
            n_freeriders=params["mc_samples"],
            degree=degree,
            rounds=rounds,
        )
        metrics["monte_carlo"] = {
            "eta": eta,
            "rounds": rounds,
            "delta": params["delta"],
            "sigma": sigma,
            "beta_bound": beta_upper_bound(sigma, rounds, eta),
            "alpha_bound": alpha_lower_bound(sigma_fr, rounds, eta, excess),
            "min_periods_beta_1pct": minimum_periods_for_beta(sigma, eta, 0.01),
            "alpha": sample.detection_fraction(eta),
            "beta": sample.false_positive_fraction(eta),
        }
    return metrics


def _analyze_render(run: RunResult) -> str:
    m = run.metrics
    lines = [
        f"f={m['fanout']}, |R|={m['request_size']}, loss={m['loss']:.0%}",
        f"compensation b~ (Eq. 5):       {m['compensation']:.2f}",
    ]
    for delta, entry in m["blame_excess_by_delta"].items():
        lines.append(
            f"blame excess at delta={float(delta):5.3f}: "
            f"{entry['excess_per_period']:6.2f} "
            f"(gain {entry['bandwidth_gain']:.0%})"
        )
    lines.append(
        f"audit window {m['audit_window']} entries -> gamma = {m['gamma']:.2f}"
    )
    ceiling = m["collusion_ceiling"]
    lines.append(
        f"collusion ceiling: Eq.7 {ceiling['eq7']:.2f}, "
        f"achievable {ceiling['achievable']:.2f}"
    )
    budget = m["message_budget"]
    lines.append(
        f"message budget/node/period: data {budget['data']:.0f}, "
        f"verification {budget['verification']:.0f}"
    )
    mc = m.get("monte_carlo")
    if mc:
        lines.append(
            f"MC (delta={mc['delta']:g}, r={mc['rounds']}): "
            f"sigma={mc['sigma']:.2f}, alpha={mc['alpha']:.3f}, "
            f"beta={mc['beta']:.4f} "
            f"(bounds: alpha>={mc['alpha_bound']:.3f}, beta<={mc['beta_bound']:.4f})"
        )
    return "\n".join(lines)


@scenario(
    "analyze",
    "Closed-form design constants (+ optional Monte-Carlo cross-validation)",
    params=(
        Param("fanout", int, 12, "gossip fanout f",
              validate=lambda v: v >= 1, constraint=">= 1"),
        Param("request_size", int, 4, "per-proposal request size |R|",
              validate=lambda v: v >= 1, constraint=">= 1"),
        Param("loss", float, 0.07, "assumed message loss rate",
              validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
        Param("colluders", int, 25, "coalition size m' for Eq. 7"),
        Param("history", int, 50, "audit history length n_h (periods)"),
        Param("managers", int, 25, "reputation managers M"),
        Param("eta", float, -9.75, "score threshold for the MC validation"),
        Param("rounds", int, 50, "grace periods r for the MC validation"),
        Param("delta", float, 0.1, "freeriding degree for the MC validation"),
        Param("seed", int, 0, "Monte-Carlo seed"),
        Param("mc_samples", int, 0,
              "Monte-Carlo samples per population (0 = closed forms only)"),
    ),
    render=_analyze_render,
    tags=("analysis",),
    smoke={"mc_samples": 2_000},
)
def _analyze_scenario(params):
    # The artifact *is* the metrics mapping (no summarize needed).
    return [Task(fn=_compute_analyze, args=(dict(params),), key="analyze")]


# ----------------------------------------------------------------------
# live — the asyncio loopback deployment as a scenario
# ----------------------------------------------------------------------

def _compute_live(params: dict):
    """One real-time run over loopback sockets (asyncio)."""
    import asyncio

    from repro.config import FreeriderDegree
    from repro.runtime import RuntimeCluster, RuntimeConfig

    config = RuntimeConfig(
        n=params["n"],
        duration=params["duration"],
        seed=params["seed"],
        freerider_fraction=params["freeriders"],
        freerider_degree=FreeriderDegree(*params["deltas"]),
    )
    return asyncio.run(RuntimeCluster(config).run())


def _live_metrics(report, params) -> dict:
    return {
        "chunks_emitted": report.chunks_emitted,
        "delivery_ratio": report.delivery_ratio,
        "detection": report.detection.detection,
        "false_positives": report.detection.false_positives,
        "datagrams_sent": report.datagrams_sent,
        "datagrams_dropped": report.datagrams_dropped,
        "datagram_errors": report.datagram_errors,
        "sends_refused": report.sends_refused,
        "freeriders": len(report.freerider_ids),
    }


def _live_render(run: RunResult) -> str:
    report = run.artifact
    return (
        f"chunks: {report.chunks_emitted}, delivery {report.delivery_ratio:.1%}\n"
        f"{report.detection.summary()}"
    )


@scenario(
    "live",
    "Run the protocol over real loopback sockets (asyncio, real time)",
    params=(
        Param("n", int, 12, "live nodes", validate=lambda v: v >= 4,
              constraint=">= 4"),
        Param("seed", int, 1, "deployment seed"),
        Param("duration", float, 5.0, "real (wall-clock) seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("freeriders", float, 0.2, "freerider fraction",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("deltas", float, (0.25, 0.3, 0.3), sequence=True,
              help="(δ1, δ2, δ3) of the freeriders",
              validate=lambda v: len(v) == 3, constraint="exactly 3 values"),
    ),
    summarize=_live_metrics,
    render=_live_render,
    tags=("live",),
    smoke={"n": 8, "duration": 1.5},
)
def _live_scenario(params):
    return [Task(fn=_compute_live, args=(dict(params),), key="live")]


# ----------------------------------------------------------------------
# chaos — the live deployment under a scripted fault schedule
# ----------------------------------------------------------------------

def default_fault_schedule(n: int, duration: float, drop_rate: float):
    """The acceptance-criteria fault script, scaled to ``duration``.

    A targeted drop window on the dissemination plane (Serve/Propose),
    one symmetric half/half partition, and two node crashes that both
    restart before the end — enough to open circuit breakers, exercise
    ICMP error counting and force the compensation machinery, while
    leaving the run time to recover.
    """
    from repro.runtime.faults import FaultSchedule

    half = n // 2
    victims = (n - 1, n - 2)
    return FaultSchedule.from_dicts(
        [
            {
                "kind": "drop",
                "at": 0.15 * duration,
                "until": 0.85 * duration,
                "classes": ["Serve", "Propose"],
                "rate": drop_rate,
            },
            {
                "kind": "partition",
                "at": 0.30 * duration,
                "until": 0.55 * duration,
                "group_a": list(range(half)),
                "group_b": list(range(half, n)),
            },
            {"kind": "crash", "at": 0.25 * duration, "nodes": [victims[0]]},
            {"kind": "crash", "at": 0.35 * duration, "nodes": [victims[1]]},
            {"kind": "restart", "at": 0.60 * duration, "nodes": [victims[0]]},
            {"kind": "restart", "at": 0.70 * duration, "nodes": [victims[1]]},
        ]
    )


def _compute_chaos(params: dict):
    """One live run driven through the scripted fault schedule."""
    import asyncio

    from repro.config import FreeriderDegree
    from repro.runtime import RuntimeCluster, RuntimeConfig

    config = RuntimeConfig(
        n=params["n"],
        duration=params["duration"],
        seed=params["seed"],
        freerider_fraction=params["freeriders"],
        freerider_degree=FreeriderDegree(*params["deltas"]),
        p_audit=0.1,
        expulsion_enabled=True,
        fault_schedule=default_fault_schedule(
            params["n"], params["duration"], params["drop_rate"]
        ),
        audit_log_path=params["audit_log"] or None,
    )
    return asyncio.run(RuntimeCluster(config).run())


def _chaos_metrics(report, params) -> dict:
    breaker = report.resilience.get("breaker", {})
    ingress = report.resilience.get("ingress", {})
    return {
        "chunks_emitted": report.chunks_emitted,
        "delivery_ratio": report.delivery_ratio,
        "detection": report.detection.detection,
        "false_positives": report.detection.false_positives,
        "expelled": [int(n) for n in report.expelled],
        "wrongful_expulsions": [int(n) for n in report.wrongful_expulsions],
        "datagram_errors": report.datagram_errors,
        "sends_refused": report.sends_refused,
        "breaker_opens": breaker.get("opens", 0),
        "breaker_closes": breaker.get("closes", 0),
        "breaker_half_open_probes": breaker.get("half_open_probes", 0),
        "ingress_high_water": ingress.get("high_water", 0),
        "ingress_dropped": ingress.get("dropped_oldest", 0) + ingress.get("rejected", 0),
        "faults": dict(report.faults),
        "audit_ok": bool(report.audit_ok),
        "audit_records": report.audit_records,
        "invariant_checks": report.invariants.get("checks", 0),
        "invariant_violations": report.invariants.get("violations", 0),
    }


def _chaos_render(run: RunResult) -> str:
    report = run.artifact
    breaker = report.resilience.get("breaker", {})
    ingress = report.resilience.get("ingress", {})
    return (
        f"chunks: {report.chunks_emitted}, delivery {report.delivery_ratio:.1%} "
        f"under faults {report.faults}\n"
        f"breaker: opens {breaker.get('opens', 0)}, "
        f"half-open probes {breaker.get('half_open_probes', 0)}, "
        f"closes {breaker.get('closes', 0)}; "
        f"ingress high-water {ingress.get('high_water', 0)}/{ingress.get('capacity', 0)}\n"
        f"expelled {report.expelled} (wrongful {report.wrongful_expulsions}); "
        f"audit chain {'ok' if report.audit_ok else 'TAMPERED'} "
        f"({report.audit_records} records); "
        f"invariants: {report.invariants.get('violations', 0)} violations "
        f"in {report.invariants.get('checks', 0)} sweeps\n"
        f"{report.detection.summary()}"
    )


@scenario(
    "chaos",
    "Drive the live deployment through scripted faults (crashes, drops, partition)",
    params=(
        Param("n", int, 12, "live nodes", validate=lambda v: v >= 6,
              constraint=">= 6"),
        Param("seed", int, 7, "deployment seed"),
        Param("duration", float, 6.0, "real (wall-clock) seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("freeriders", float, 0.2, "freerider fraction",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("deltas", float, (0.25, 0.3, 0.3), sequence=True,
              help="(δ1, δ2, δ3) of the freeriders",
              validate=lambda v: len(v) == 3, constraint="exactly 3 values"),
        Param("drop_rate", float, 0.3, "targeted drop probability",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("audit_log", str, "", "JSONL path for the audit chain ('' = in-memory)"),
    ),
    summarize=_chaos_metrics,
    render=_chaos_render,
    tags=("live", "chaos"),
    smoke={"n": 8, "duration": 3.0},
)
def _chaos_scenario(params):
    return [Task(fn=_compute_chaos, args=(dict(params),), key="chaos")]


# ----------------------------------------------------------------------
# loadgen — open-loop load sweep against a live node (find the knee)
# ----------------------------------------------------------------------

def _compute_loadgen(params: dict):
    """One stepped-rate open-loop sweep against a live deployment.

    The run duration is derived from the profile (schedule + settle +
    teardown margin), so the sweep always completes inside the run.
    """
    import asyncio

    from repro.loadgen import LoadProfile
    from repro.runtime import RuntimeCluster, RuntimeConfig

    profile = LoadProfile(
        start_rate=params["rate"],
        step_rate=params["step"],
        steps=params["steps"],
        step_duration=params["step_duration"],
        seed=params["seed"],
        arrivals=params["arrivals"],
        knee_tolerance=params["tolerance"],
    )
    schedule_span = profile.steps * profile.step_duration + profile.settle
    config = RuntimeConfig(
        n=params["n"],
        duration=schedule_span + 0.5,
        seed=params["seed"],
        # Keep the background stream sparse: the measured traffic should
        # dominate, the protocol machinery still runs for real.
        chunk_interval=0.25,
        loss_rate=0.0,
        load_profile=profile,
        load_target=params["target"],
    )
    return asyncio.run(RuntimeCluster(config).run())


def _loadgen_metrics(report, params) -> dict:
    load = report.load
    knee = load.get("knee", {})
    overall = load.get("overall", {})
    stages = overall.get("stages", {})
    return {
        "knee_rate": knee.get("knee_rate"),
        "saturated": knee.get("saturated"),
        "offered_rates": knee.get("offered", []),
        "goodput_rates": knee.get("goodput", []),
        "ratios": knee.get("ratios", []),
        "frames_offered": overall.get("offered", 0),
        "frames_done": overall.get("done", 0),
        "frames_refused": overall.get("refused", 0),
        "frames_evicted": overall.get("evicted", 0),
        "ingress_high_water": load.get("ingress_high_water"),
        "ingress_dropped": load.get("ingress_dropped"),
        "stage_p50": {s: v.get("p50") for s, v in stages.items()},
        "stage_p99": {s: v.get("p99") for s, v in stages.items()},
        "invariant_violations": report.invariants.get("violations", 0),
        "load": dict(load),
    }


def _loadgen_render(run: RunResult) -> str:
    from repro.metrics.latency import format_seconds, stage_rows

    load = run.artifact.load
    knee = load.get("knee", {})
    overall = load.get("overall", {})
    lines = stage_rows(load.get("phases", []))
    if knee.get("saturated"):
        rate = knee.get("knee_rate")
        knee_line = (
            f"knee: {rate:.0f} frames/s "
            f"(first saturated phase {knee.get('first_saturated_phase')}, "
            f"tolerance {knee.get('tolerance'):.0%})"
            if rate is not None
            else f"knee: below the first rung ({knee.get('offered', ['?'])[0]} frames/s)"
        )
    else:
        knee_line = (
            "knee: not reached inside the sweep "
            f"(max offered {max(knee.get('offered', [0])):.0f} frames/s tracked)"
        )
    lines.append(knee_line)
    stages = overall.get("stages", {})
    sojourn = stages.get("sojourn", {})
    lines.append(
        f"overall sojourn p50 {format_seconds(sojourn.get('p50', float('nan')))}, "
        f"p99 {format_seconds(sojourn.get('p99', float('nan')))}; "
        f"ingress high-water {load.get('ingress_high_water')}, "
        f"dropped {load.get('ingress_dropped')}"
    )
    violations = run.artifact.invariants.get("violations", 0)
    lines.append(f"invariants: {violations} violations")
    return "\n".join(lines)


@scenario(
    "loadgen",
    "Open-loop stepped-rate load sweep against a live node: find the knee",
    params=(
        Param("n", int, 8, "live nodes", validate=lambda v: v >= 4,
              constraint=">= 4"),
        Param("seed", int, 0, "schedule + deployment seed"),
        Param("rate", float, 500.0, "offered rate of the first phase (frames/s)",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("step", float, 500.0, "per-phase rate increment (frames/s)",
              validate=lambda v: v >= 0, constraint=">= 0"),
        Param("steps", int, 4, "number of rate phases",
              validate=lambda v: v >= 1, constraint=">= 1"),
        Param("step_duration", float, 1.0, "seconds per phase",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("arrivals", str, "uniform",
              "interarrival process (uniform or poisson)",
              validate=lambda v: v in ("uniform", "poisson"),
              constraint="uniform | poisson"),
        Param("target", int, 0, "node id the load is aimed at",
              validate=lambda v: v >= 0, constraint=">= 0"),
        Param("tolerance", float, 0.9,
              "goodput/offered ratio below which a phase is saturated",
              validate=lambda v: 0.0 < v <= 1.0, constraint="in (0, 1]"),
    ),
    summarize=_loadgen_metrics,
    render=_loadgen_render,
    tags=("live", "performance"),
    smoke={"n": 6, "rate": 300.0, "step": 300.0, "steps": 2,
           "step_duration": 0.5},
)
def _loadgen_scenario(params):
    return [Task(fn=_compute_loadgen, args=(dict(params),), key="loadgen")]


# ----------------------------------------------------------------------
# churn — SWIM membership under scripted crash/restart churn (simulator)
# ----------------------------------------------------------------------

def _compute_churn(params: dict) -> Dict[str, object]:
    """One simulated deployment at one churn rate (module-level so the
    sweep can fan out to a process pool)."""
    from dataclasses import replace

    from repro.config import FreeriderDegree, planetlab_params
    from repro.experiments.cluster import ClusterConfig, SimCluster
    from repro.membership.failure_detector import FailureDetectorParams
    from repro.runtime.faults import FaultSchedule

    rate = params["rate"]
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=params["n"], chunk_size=1400)
    lifting = replace(lifting, assumed_loss_rate=params["loss"])
    cluster = SimCluster(
        ClusterConfig(
            gossip=gossip,
            lifting=lifting,
            seed=params["seed"],
            loss_rate=params["loss"],
            freerider_fraction=params["freeriders"],
            freerider_degree=FreeriderDegree.uniform(params["delta"]),
            expulsion_enabled=True,
            failure_detector=FailureDetectorParams(
                suspicion_periods=params["suspicion"]
            ),
        )
    )
    # Churn hits honest nodes only: freeriders keep answering pings (the
    # cheapest traffic there is), so the detector must never shield them
    # while protecting crash-restarting contributors.
    honest = sorted(cluster.honest_ids)
    victims = honest[: int(round(rate * len(honest)))]
    if victims:
        cluster.attach_faults(
            FaultSchedule.churn(
                victims,
                params["duration"],
                params["downtime"],
                permanent_frac=params["permanent"],
            )
        )
    invariants = cluster.attach_invariants()
    cluster.run(until=params["duration"])
    invariants.check()  # final-state sweep
    expelled = sorted(cluster.controller.expelled_nodes())
    wrongful = sorted(n for n in expelled if n not in cluster.freerider_ids)
    summary = cluster.churn_summary()
    summary.update(
        invariant_checks=invariants.summary()["checks"],
        invariant_violations=invariants.summary()["violations"],
    )
    summary.update(
        rate=rate,
        victims=len(victims),
        expelled=[int(n) for n in expelled],
        wrongful_expulsions=[int(n) for n in wrongful],
        wrongful_expulsion_rate=(
            len(wrongful) / len(honest) if honest else 0.0
        ),
        freeriders_expelled=sum(
            1 for n in expelled if n in cluster.freerider_ids
        ),
        freeriders=len(cluster.freerider_ids),
    )
    return summary


def _churn_reduce(results, params) -> Dict[str, object]:
    return {"sweep": list(results)}


def _churn_metrics(artifact, params) -> dict:
    sweep = artifact["sweep"]
    detect = [e["mean_detection_delay"] for e in sweep
              if e.get("mean_detection_delay") is not None]
    recover = [e["mean_recovery_delay"] for e in sweep
               if e.get("mean_recovery_delay") is not None]
    return {
        "rates": [e["rate"] for e in sweep],
        "wrongful_expulsion_rate": {
            f"{e['rate']:g}": e["wrongful_expulsion_rate"] for e in sweep
        },
        "freeriders_expelled": {
            f"{e['rate']:g}": e["freeriders_expelled"] for e in sweep
        },
        "max_wrongful_expulsion_rate": max(
            (e["wrongful_expulsion_rate"] for e in sweep), default=0.0
        ),
        #: membership convergence: crash -> confirmed-dead and
        #: restart -> readmission, averaged over the whole sweep.
        "mean_detection_delay": sum(detect) / len(detect) if detect else None,
        "mean_recovery_delay": sum(recover) / len(recover) if recover else None,
        "invariant_violations": sum(e.get("invariant_violations", 0) for e in sweep),
        "sweep": [dict(e) for e in sweep],
    }


def _churn_render(run: RunResult) -> str:
    lines = [
        "rate   victims  susp  refut  dead  wrongful  fr-expelled"
    ]
    for e in run.artifact["sweep"]:
        lines.append(
            f"{e['rate']:4.2f} {e['victims']:8d} {e['suspicions']:5d} "
            f"{e['refutations']:6d} {e['confirmed_dead']:5d} "
            f"{e['wrongful_expulsion_rate']:9.1%} "
            f"{e['freeriders_expelled']:6d}/{e['freeriders']}"
        )
    m = run.metrics
    detect = m["mean_detection_delay"]
    recover = m["mean_recovery_delay"]
    lines.append(
        "convergence: detection "
        + (f"{detect:.2f}s" if detect is not None else "n/a")
        + ", recovery "
        + (f"{recover:.2f}s" if recover is not None else "n/a")
    )
    return "\n".join(lines)


@scenario(
    "churn",
    "Sweep crash/restart churn rates: wrongful expulsions vs membership convergence",
    params=(
        Param("n", int, 60, "system size", validate=lambda v: v >= 12,
              constraint=">= 12"),
        Param("seed", int, 3, "experiment seed"),
        Param("duration", float, 30.0, "simulated seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("loss", float, 0.04, "datagram loss rate",
              validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
        Param("freeriders", float, 0.15, "freerider fraction",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("delta", float, 0.25, "uniform freeriding degree"),
        Param("rates", float, (0.1, 0.3, 0.5), sequence=True,
              help="fractions of honest nodes that crash once"),
        Param("downtime", float, 2.0, "seconds a crashed node stays down",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("permanent", float, 0.25,
              "fraction of victims that never restart (confirmed-dead path)",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("suspicion", float, 8.0,
              "suspicion window (gossip periods) before confirm-dead",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("jobs", int, 1, "worker processes for the sweep",
              validate=lambda v: v >= 1, constraint=">= 1"),
    ),
    reduce=_churn_reduce,
    summarize=_churn_metrics,
    render=_churn_render,
    tags=("robustness", "membership"),
    smoke={"n": 24, "duration": 8.0, "rates": (0.3,)},
    sim_time=lambda params: params["duration"] * len(params["rates"]),
)
def _churn_scenario(params):
    return [
        Task(
            fn=_compute_churn,
            args=({**dict(params), "rate": rate},),
            key=f"churn-{rate:g}",
        )
        for rate in params["rates"]
    ]


# ----------------------------------------------------------------------
# coalition — laundering colluders vs. detection (simulator sweep)
# ----------------------------------------------------------------------

def _adversary_cluster(params: dict, kind: str, adversary_params: tuple):
    """A SimCluster armed with a named adversary policy (shared by the
    coalition and sybil_blame sweeps; module-level for process pools)."""
    from dataclasses import replace

    from repro.config import planetlab_params
    from repro.experiments.cluster import ClusterConfig, SimCluster

    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=params["n"], chunk_size=1400)
    lifting = replace(lifting, assumed_loss_rate=params["loss"])
    return SimCluster(
        ClusterConfig(
            gossip=gossip,
            lifting=lifting,
            seed=params["seed"],
            loss_rate=params["loss"],
            freerider_fraction=params["adversaries"] / params["n"],
            adversary=kind,
            adversary_params=adversary_params,
            expulsion_enabled=True,
        )
    )


def _adversary_outcome(cluster, invariants) -> Dict[str, object]:
    """The shared outcome block: who was expelled, who escaped, and
    whether any safety invariant broke along the way."""
    invariants.check()  # final-state sweep
    expelled = sorted(cluster.controller.expelled_nodes())
    adversaries = sorted(cluster.freerider_ids)
    wrongful = sorted(n for n in expelled if n not in cluster.freerider_ids)
    caught = [n for n in expelled if n in cluster.freerider_ids]
    scores = cluster.scores()
    return {
        "adversaries": len(adversaries),
        "adversaries_expelled": len(caught),
        "escape_rate": (
            1.0 - len(caught) / len(adversaries) if adversaries else 0.0
        ),
        "wrongful_expulsions": [int(n) for n in wrongful],
        "wrongful_expulsion_count": len(wrongful),
        "invariant_checks": invariants.summary()["checks"],
        "invariant_violations": invariants.summary()["violations"],
        "adversary_scores": [round(scores[n], 3) for n in adversaries],
        "policy": dict(cluster.adversary_policy.describe()),
    }


def _compute_coalition(params: dict) -> Dict[str, object]:
    """One deployment against one coalition size."""
    size = params["size"]
    cluster = _adversary_cluster(
        {**params, "adversaries": size},
        "coalition",
        (
            ("delta", params["delta"]),
            ("bias", params["bias"]),
            ("launder", params["launder"]),
        ),
    )
    invariants = cluster.attach_invariants()
    cluster.run(until=params["duration"])
    outcome = _adversary_outcome(cluster, invariants)
    outcome["size"] = size
    outcome["credits_laundered"] = round(
        sum(
            cluster.nodes[nid].behavior.credits_sent
            for nid in cluster.freerider_ids
        ),
        3,
    )
    return outcome


def _coalition_reduce(results, params) -> Dict[str, object]:
    return {"sweep": list(results)}


def _adversary_sweep_metrics(artifact, key: str) -> dict:
    sweep = artifact["sweep"]
    return {
        key: [e[key] for e in sweep],
        "escape_rate": {f"{e[key]:g}": e["escape_rate"] for e in sweep},
        "adversaries_expelled": {
            f"{e[key]:g}": e["adversaries_expelled"] for e in sweep
        },
        "max_escape_rate": max((e["escape_rate"] for e in sweep), default=0.0),
        "wrongful_expulsion_count": sum(
            e["wrongful_expulsion_count"] for e in sweep
        ),
        "invariant_violations": sum(e["invariant_violations"] for e in sweep),
        "sweep": [dict(e) for e in sweep],
    }


def _coalition_metrics(artifact, params) -> dict:
    return _adversary_sweep_metrics(artifact, "size")


def _coalition_render(run: RunResult) -> str:
    lines = ["size  expelled  escape  wrongful  laundered  violations"]
    for e in run.artifact["sweep"]:
        lines.append(
            f"{e['size']:4d} {e['adversaries_expelled']:5d}/{e['adversaries']}"
            f" {e['escape_rate']:8.1%} {e['wrongful_expulsion_count']:9d} "
            f"{e['credits_laundered']:10.1f} {e['invariant_violations']:10d}"
        )
    return "\n".join(lines)


@scenario(
    "coalition",
    "Sweep laundering-coalition sizes: freerider escape vs wrongful expulsion",
    params=(
        Param("n", int, 60, "system size", validate=lambda v: v >= 12,
              constraint=">= 12"),
        Param("seed", int, 3, "experiment seed"),
        Param("duration", float, 30.0, "simulated seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("loss", float, 0.04, "datagram loss rate",
              validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
        Param("sizes", int, (3, 6, 9), sequence=True,
              help="coalition sizes to sweep"),
        Param("delta", float, 0.5, "uniform freeriding degree of members"),
        Param("bias", float, 0.3, "coalition partner-selection bias p_m",
              validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
        Param("launder", float, 2.0,
              "credit (negative blame) each member grants co-members per period",
              validate=lambda v: v >= 0.0, constraint=">= 0"),
        Param("jobs", int, 1, "worker processes for the sweep",
              validate=lambda v: v >= 1, constraint=">= 1"),
    ),
    reduce=_coalition_reduce,
    summarize=_coalition_metrics,
    render=_coalition_render,
    tags=("robustness", "adversary"),
    smoke={"n": 24, "duration": 12.0, "sizes": (3,)},
    sim_time=lambda params: params["duration"] * len(params["sizes"]),
)
def _coalition_scenario(params):
    return [
        Task(
            fn=_compute_coalition,
            args=({**dict(params), "size": size},),
            key=f"coalition-{size}",
        )
        for size in params["sizes"]
    ]


# ----------------------------------------------------------------------
# sybil_blame — coordinated blame stuffing at honest victims (simulator)
# ----------------------------------------------------------------------

def _compute_sybil(params: dict) -> Dict[str, object]:
    """One deployment against one stuffing rate."""
    rate = params["rate"]
    cluster = _adversary_cluster(
        {**params, "adversaries": params["sybils"]},
        "sybil_blame",
        (
            ("rate", rate),
            ("victims", params["victims"]),
            ("delta", params["delta"]),
            ("start_period", params["start_period"]),
        ),
    )
    invariants = cluster.attach_invariants()
    cluster.run(until=params["duration"])
    outcome = _adversary_outcome(cluster, invariants)
    campaign = cluster.adversary_policy.campaign
    scores = cluster.scores()
    outcome["rate"] = rate
    outcome["victims"] = [int(v) for v in campaign.victims]
    outcome["victim_scores"] = [round(scores[v], 3) for v in campaign.victims]
    outcome["victims_expelled"] = sum(
        1 for v in campaign.victims if cluster.controller.is_expelled(v)
    )
    outcome["blames_stuffed"] = round(campaign.blames_stuffed, 3)
    return outcome


def _sybil_reduce(results, params) -> Dict[str, object]:
    return {"sweep": list(results)}


def _sybil_metrics(artifact, params) -> dict:
    metrics = _adversary_sweep_metrics(artifact, "rate")
    metrics["victims_expelled"] = sum(
        e["victims_expelled"] for e in artifact["sweep"]
    )
    metrics["min_victim_score"] = min(
        (s for e in artifact["sweep"] for s in e["victim_scores"]),
        default=None,
    )
    return metrics


def _sybil_render(run: RunResult) -> str:
    lines = ["rate  stuffers-expelled  escape  victims-expelled  min-victim-score"]
    for e in run.artifact["sweep"]:
        lines.append(
            f"{e['rate']:4.1f} {e['adversaries_expelled']:10d}/{e['adversaries']}"
            f" {e['escape_rate']:10.1%} {e['victims_expelled']:12d} "
            f"{min(e['victim_scores']):14.2f}"
        )
    lines.append(
        f"invariant violations: {run.metrics['invariant_violations']}"
    )
    return "\n".join(lines)


@scenario(
    "sybil_blame",
    "Sweep Sybil blame-stuffing rates against honest victims: defamation vs detection",
    params=(
        Param("n", int, 60, "system size", validate=lambda v: v >= 12,
              constraint=">= 12"),
        Param("seed", int, 3, "experiment seed"),
        Param("duration", float, 30.0, "simulated seconds",
              validate=lambda v: v > 0, constraint="> 0"),
        Param("loss", float, 0.04, "datagram loss rate",
              validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
        Param("sybils", int, 4, "stuffing identities",
              validate=lambda v: v >= 1, constraint=">= 1"),
        Param("rates", float, (0.5, 1.0, 2.0), sequence=True,
              help="blame units stuffed per victim per member per period"),
        Param("victims", int, 2, "honest nodes targeted",
              validate=lambda v: v >= 1, constraint=">= 1"),
        Param("delta", float, 0.5, "uniform freeriding degree of the stuffers"),
        Param("start_period", int, 10, "first period of the campaign",
              validate=lambda v: v >= 0, constraint=">= 0"),
        Param("jobs", int, 1, "worker processes for the sweep",
              validate=lambda v: v >= 1, constraint=">= 1"),
    ),
    reduce=_sybil_reduce,
    summarize=_sybil_metrics,
    render=_sybil_render,
    tags=("robustness", "adversary"),
    smoke={"n": 24, "duration": 12.0, "rates": (1.0,)},
    sim_time=lambda params: params["duration"] * len(params["rates"]),
)
def _sybil_scenario(params):
    return [
        Task(
            fn=_compute_sybil,
            args=({**dict(params), "rate": rate},),
            key=f"sybil-{rate:g}",
        )
        for rate in params["rates"]
    ]
