"""Declarative scenario descriptions and the structured result envelope.

A *scenario* is one runnable experiment — a paper figure, a sweep, a
live deployment — described as data instead of as a hand-wired module +
CLI subcommand pair:

* :class:`Param` — one typed, documented, validated parameter with a
  default.  The CLI derives its flags from these declarations, so a
  scenario can never "silently lack" a flag its parameters support.
* :class:`ScenarioSpec` — the frozen description: name, description,
  parameter declarations, a ``build_jobs(params)`` builder producing
  :class:`~repro.runtime.parallel.Job`/``Task`` work items, a
  ``reduce(results, params)`` reducer assembling the rich result
  object, and a ``summarize(artifact, params)`` projection onto a
  JSON-safe metrics payload.
* :class:`RunResult` — the uniform envelope every scenario run returns:
  scenario name, resolved parameters, seed, wall/sim time and the
  metrics payload, serialisable to/from JSON (:meth:`RunResult.to_json`
  / :meth:`RunResult.from_json`) so that experiment outputs and
  benchmark baselines share one schema.

The process-global registry and the engine that executes specs live in
:mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "DuplicateScenarioError",
    "Param",
    "ParamError",
    "RUN_RESULT_SCHEMA",
    "RunResult",
    "ScenarioSpec",
    "UnknownScenarioError",
]

#: schema tag stamped into every serialised :class:`RunResult`.
RUN_RESULT_SCHEMA = "repro.run_result/1"


class ParamError(ValueError):
    """An override does not match the scenario's parameter declarations."""


class UnknownScenarioError(KeyError):
    """No scenario with the requested name is registered."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0] if self.args else ""


class DuplicateScenarioError(ValueError):
    """A scenario name was registered twice."""


_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Param:
    """One declared scenario parameter.

    ``type`` is one of ``int``/``float``/``str``/``bool``;
    ``sequence=True`` declares a homogeneous tuple of that scalar type
    (CLI: ``nargs='+'`` flags, or comma-separated ``--set`` values).
    ``choices`` restricts the value set and ``validate`` is an optional
    extra predicate (its docstring-less lambda is described by
    ``constraint`` in error messages).
    """

    name: str
    type: type = float
    default: Any = None
    help: str = ""
    sequence: bool = False
    choices: Optional[Tuple[Any, ...]] = None
    validate: Optional[Callable[[Any], bool]] = None
    #: human description of ``validate`` for error messages/``describe``.
    constraint: str = ""

    def __post_init__(self) -> None:
        if self.type not in (int, float, str, bool):
            raise ParamError(
                f"parameter {self.name!r}: type must be int, float, str or "
                f"bool, got {self.type!r}"
            )
        if self.choices is not None:
            object.__setattr__(self, "choices", tuple(self.choices))
        # Normalise the default through the same path as overrides so a
        # declaration with e.g. a list default still resolves to a tuple.
        if self.default is not None:
            object.__setattr__(self, "default", self.coerce(self.default))

    # -- coercion ------------------------------------------------------
    def _coerce_scalar(self, value: Any) -> Any:
        kind = self.type
        if kind is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in _TRUE_STRINGS:
                    return True
                if lowered in _FALSE_STRINGS:
                    return False
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            raise self._type_error(value)
        if kind is int:
            if isinstance(value, bool):
                raise self._type_error(value)
            if isinstance(value, int):
                return int(value)
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value.strip())
                except ValueError:
                    raise self._type_error(value) from None
            if hasattr(value, "item"):  # numpy scalars
                return self._coerce_scalar(value.item())
            raise self._type_error(value)
        if kind is float:
            if isinstance(value, bool):
                raise self._type_error(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value.strip())
                except ValueError:
                    raise self._type_error(value) from None
            if hasattr(value, "item"):
                return self._coerce_scalar(value.item())
            raise self._type_error(value)
        # str
        if isinstance(value, str):
            return value
        raise self._type_error(value)

    def _type_error(self, value: Any) -> ParamError:
        shape = f"a sequence of {self.type.__name__}" if self.sequence else self.type.__name__
        return ParamError(
            f"parameter {self.name!r} expects {shape}, got {value!r} "
            f"({type(value).__name__}); see `repro describe` for the "
            f"declared parameters"
        )

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` (possibly a CLI string) to the declared type.

        Raises :class:`ParamError` with an actionable message otherwise.
        """
        if self.sequence:
            if isinstance(value, str):
                parts = [p for p in value.split(",") if p.strip() != ""]
                out = tuple(self._coerce_scalar(p) for p in parts)
            elif isinstance(value, Sequence) or hasattr(value, "tolist"):
                items = value.tolist() if hasattr(value, "tolist") else value
                out = tuple(self._coerce_scalar(v) for v in items)
            else:
                raise self._type_error(value)
        else:
            out = self._coerce_scalar(value)
        if self.choices is not None:
            values = out if self.sequence else (out,)
            for item in values:
                if item not in self.choices:
                    raise ParamError(
                        f"parameter {self.name!r}: {item!r} is not one of "
                        f"{list(self.choices)}"
                    )
        if self.validate is not None and not self.validate(out):
            constraint = self.constraint or "failed its validation predicate"
            raise ParamError(f"parameter {self.name!r} = {out!r}: {constraint}")
        return out

    def describe(self) -> str:
        """One-line rendering for ``repro describe``."""
        kind = f"[{self.type.__name__}...]" if self.sequence else self.type.__name__
        text = f"{self.name} ({kind}, default {self.default!r})"
        if self.help:
            text += f" — {self.help}"
        if self.constraint:
            text += f" [{self.constraint}]"
        return text


def _canonical(value: Any, *, where: str) -> Any:
    """Deep-normalise a params/metrics payload to a JSON-stable form.

    dicts keep insertion order with string keys, every sequence becomes
    a tuple, numpy scalars/arrays become python scalars / tuples.  The
    canonical form is what both the live object and the JSON round-trip
    produce, so ``from_json(to_json(r)) == r`` holds exactly.
    """
    if isinstance(value, Mapping):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if isinstance(key, bool) or not isinstance(key, (str, int, float)):
                raise TypeError(
                    f"{where}: mapping key {key!r} is not JSON-safe; use "
                    f"string keys in metrics payloads"
                )
            out[key if isinstance(key, str) else str(key)] = _canonical(
                item, where=where
            )
        return out
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item, where=where) for item in value)
    if hasattr(value, "tolist") and not isinstance(value, (str, bytes)):  # numpy
        return _canonical(value.tolist(), where=where)
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return _canonical(value.item(), where=where)
    raise TypeError(
        f"{where}: {value!r} ({type(value).__name__}) is not JSON-safe; "
        f"summarize() must project results onto str/int/float/bool/None, "
        f"sequences and string-keyed mappings"
    )


@dataclass(frozen=True, eq=False)
class RunResult:
    """The uniform, serialisable envelope of one scenario run.

    ``metrics`` is the JSON-safe payload produced by the scenario's
    ``summarize``; ``artifact`` is the rich in-memory result object
    (``Fig1Result`` etc.) kept for programmatic use — it is **not**
    serialised and does not participate in equality.
    """

    scenario: str
    params: Mapping[str, Any]
    metrics: Mapping[str, Any]
    seed: Optional[int] = None
    sim_seconds: Optional[float] = None
    wall_seconds: float = 0.0
    schema: str = RUN_RESULT_SCHEMA
    #: who/where/what produced this result (git revision, host
    #: fingerprint — see :mod:`repro.util.provenance`); empty for
    #: envelopes predating the field.
    provenance: Mapping[str, Any] = field(default_factory=dict)
    artifact: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", _canonical(self.params, where=f"{self.scenario} params")
        )
        object.__setattr__(
            self, "metrics", _canonical(self.metrics, where=f"{self.scenario} metrics")
        )
        object.__setattr__(
            self,
            "provenance",
            _canonical(self.provenance, where=f"{self.scenario} provenance"),
        )

    # -- serialisation -------------------------------------------------
    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise the envelope (without ``artifact``) to JSON."""
        payload = {
            "schema": self.schema,
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "provenance": self.provenance,
            "metrics": self.metrics,
        }
        return json.dumps(payload, indent=indent, allow_nan=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Parse a serialised envelope back into a :class:`RunResult`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("RunResult JSON must be an object")
        schema = payload.get("schema")
        if schema != RUN_RESULT_SCHEMA:
            raise ValueError(
                f"unsupported RunResult schema {schema!r} "
                f"(expected {RUN_RESULT_SCHEMA!r})"
            )
        return cls(
            scenario=payload["scenario"],
            params=payload.get("params", {}),
            metrics=payload.get("metrics", {}),
            seed=payload.get("seed"),
            sim_seconds=payload.get("sim_seconds"),
            wall_seconds=payload.get("wall_seconds", 0.0),
            schema=schema,
            # Envelopes written before the field existed stay loadable.
            provenance=payload.get("provenance", {}),
        )

    @classmethod
    def load(cls, path) -> "RunResult":
        """Read an envelope from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path, *, indent: int = 2) -> None:
        """Write the envelope to a JSON file (pretty-printed)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent) + "\n")

    def with_metrics(self, metrics: Mapping[str, Any]) -> "RunResult":
        """Copy with a replaced metrics payload (baseline recorders)."""
        return replace(self, metrics=metrics)

    # -- equality ------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        # Serialised form is the identity: NaN-tolerant (json spells
        # every float, including NaN/inf, the same way on both sides)
        # and deliberately blind to the non-serialised artifact.
        if not isinstance(other, RunResult):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable-mapping fields; not hashable


#: builder: resolved params -> work items (Job or Task instances).
Builder = Callable[[Mapping[str, Any]], Sequence[Any]]
#: reducer: (work-item results in submission order, params) -> artifact.
Reducer = Callable[[Sequence[Any], Mapping[str, Any]], Any]
#: summariser: (artifact, params) -> JSON-safe metrics mapping.
Summarizer = Callable[[Any, Mapping[str, Any]], Mapping[str, Any]]
#: renderer: RunResult -> human-readable text for the CLI.
Renderer = Callable[[RunResult], str]


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative description of one runnable scenario."""

    name: str
    description: str
    params: Tuple[Param, ...]
    build_jobs: Builder
    #: assembles the rich result from the work-item results; ``None``
    #: means "single work item, its result is the artifact".
    reduce: Optional[Reducer] = None
    #: projects the artifact onto the JSON-safe metrics payload;
    #: ``None`` requires the artifact itself to be such a mapping.
    summarize: Optional[Summarizer] = None
    tags: Tuple[str, ...] = ()
    #: parameter overrides for a seconds-scale smoke run (benchmarks,
    #: round-trip tests); empty = the defaults are already smoke-sized.
    smoke: Mapping[str, Any] = field(default_factory=dict)
    #: optional human rendering for the CLI (default: metrics JSON).
    render: Optional[Renderer] = None
    #: optional simulated-seconds accessor for the envelope; the default
    #: uses the ``duration`` parameter when one is declared.
    sim_time: Optional[Callable[[Mapping[str, Any]], Optional[float]]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "tags", tuple(self.tags))
        object.__setattr__(self, "smoke", dict(self.smoke))
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ParamError(f"scenario {self.name!r}: duplicate parameter names")

    # -- parameter resolution -----------------------------------------
    def param(self, name: str) -> Param:
        """The declaration of one parameter."""
        for p in self.params:
            if p.name == name:
                return p
        raise self._unknown_param(name)

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def defaults(self) -> Dict[str, Any]:
        """The fully-defaulted parameter set."""
        return {p.name: p.default for p in self.params}

    def _unknown_param(self, name: str) -> ParamError:
        import difflib

        names = self.param_names()
        hint = ""
        close = difflib.get_close_matches(name, names, n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        return ParamError(
            f"scenario {self.name!r} has no parameter {name!r} "
            f"(declared: {', '.join(names)}){hint}"
        )

    def resolve(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate ``overrides`` against the declarations.

        Returns the full parameter dict in declaration order.  Unknown
        names and type mismatches raise :class:`ParamError` with a
        message naming the declared parameters.
        """
        declared = {p.name: p for p in self.params}
        for name in overrides:
            if name not in declared:
                raise self._unknown_param(name)
        resolved: Dict[str, Any] = {}
        for p in self.params:
            if p.name in overrides and overrides[p.name] is not None:
                # ``None`` means "use the default" — the convention that
                # lets thin legacy wrappers forward their own optional
                # keyword arguments verbatim.
                try:
                    resolved[p.name] = p.coerce(overrides[p.name])
                except ParamError as exc:
                    raise ParamError(f"scenario {self.name!r}: {exc}") from None
            else:
                resolved[p.name] = p.default
        return resolved

    def resolved_sim_seconds(self, params: Mapping[str, Any]) -> Optional[float]:
        """Simulated seconds covered by a run with ``params`` (or None)."""
        if self.sim_time is not None:
            value = self.sim_time(params)
        else:
            value = params.get("duration")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        value = float(value)
        return value if math.isfinite(value) else None

    def smoke_params(self) -> Dict[str, Any]:
        """The resolved parameter set of a smoke-sized run."""
        return self.resolve(self.smoke)
