"""The process-global scenario registry and its execution engine.

Every experiment registers a :class:`~repro.scenarios.spec.ScenarioSpec`
(usually via the :func:`scenario` decorator next to its experiment
code); the engine here turns a registered spec plus parameter overrides
into a :class:`~repro.scenarios.spec.RunResult`:

1. ``spec.resolve(overrides)`` validates the parameters,
2. ``spec.build_jobs(params)`` declares the work — a list of
   :class:`~repro.runtime.parallel.Job` (simulated deployments) and/or
   ``Task`` (generic picklable callables) items,
3. the work runs through :func:`repro.runtime.parallel.run_tasks` with
   the ``jobs`` parameter's worker fan-out (bit-identical to serial),
4. ``spec.reduce(results, params)`` assembles the rich result object,
5. ``spec.summarize(artifact, params)`` projects it onto the JSON-safe
   metrics payload of the envelope.

Adding a scenario is therefore ~30 declarative lines next to the
experiment code — no CLI surgery, no bespoke result schema (see
``docs/SCENARIOS.md``).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.parallel import Job, Task, run_tasks
from repro.runtime.parallel import _execute_job  # the worker-side Job body
from repro.scenarios.spec import (
    DuplicateScenarioError,
    Param,
    ParamError,
    RunResult,
    ScenarioSpec,
    UnknownScenarioError,
)

__all__ = [
    "get",
    "list_scenarios",
    "load_builtins",
    "register",
    "run_scenario",
    "run_sweep",
    "scenario",
]

_REGISTRY: Dict[str, ScenarioSpec] = {}
_BUILTINS_LOADED = False


def load_builtins() -> None:
    """Import every module that registers a built-in scenario.

    Idempotent; called lazily by :func:`get`/:func:`list_scenarios` so
    that ``import repro`` stays cheap and registration stays next to
    the experiment code it describes.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # The experiments package imports every fig/table/scaling module;
    # builtin.py holds the scenarios without a legacy runner module
    # (detect, analyze, live).
    import repro.experiments  # noqa: F401
    import repro.scenarios.builtin  # noqa: F401


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` under its name (duplicate names are an error)."""
    if spec.name in _REGISTRY:
        raise DuplicateScenarioError(
            f"scenario {spec.name!r} is already registered "
            f"({_REGISTRY[spec.name].description!r}); scenario names are "
            f"process-global and must be unique"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registration (tests only)."""
    _REGISTRY.pop(name, None)


def scenario(
    name: str,
    description: str,
    *,
    params: Sequence[Param] = (),
    reduce: Optional[Callable] = None,
    summarize: Optional[Callable] = None,
    tags: Sequence[str] = (),
    smoke: Optional[Mapping[str, Any]] = None,
    render: Optional[Callable[[RunResult], str]] = None,
    sim_time: Optional[Callable[[Mapping[str, Any]], Optional[float]]] = None,
) -> Callable[[Callable], ScenarioSpec]:
    """Decorator form of :func:`register`.

    Decorates the ``build_jobs(params)`` builder and returns the
    registered :class:`ScenarioSpec`::

        @scenario(
            "fig1", "Figure 1 — ...",
            params=[Param("n", int, 150, "system size"), ...],
            reduce=_reduce, summarize=_metrics, tags=("figure",),
            smoke={"n": 24, "duration": 4.0},
        )
        def _fig1_scenario(params):
            return [...Job/Task list...]
    """

    def decorate(build_jobs: Callable) -> ScenarioSpec:
        return register(
            ScenarioSpec(
                name=name,
                description=description,
                params=tuple(params),
                build_jobs=build_jobs,
                reduce=reduce,
                summarize=summarize,
                tags=tuple(tags),
                smoke=dict(smoke or {}),
                render=render,
                sim_time=sim_time,
            )
        )

    return decorate


def get(name: str) -> ScenarioSpec:
    """Look a scenario up by name (with close-match hints on typos)."""
    load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        import difflib

        known = sorted(_REGISTRY)
        close = difflib.get_close_matches(name, known, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise UnknownScenarioError(
            f"unknown scenario {name!r} (registered: {', '.join(known)}){hint}"
        ) from None


def list_scenarios(tag: Optional[str] = None) -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name (optionally by tag)."""
    load_builtins()
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs


def _as_tasks(
    work: Sequence[Any], params: Mapping[str, Any], name: str
) -> List[Task]:
    """Normalise a builder's work list to tasks, stamping provenance."""
    tasks: List[Task] = []
    for item in work:
        if isinstance(item, Job):
            if not item.params:
                item = replace(item, params=tuple(params.items()))
            tasks.append(Task(fn=_execute_job, args=(item,), key=item.key))
        elif isinstance(item, Task):
            tasks.append(item)
        else:
            raise TypeError(
                f"scenario {name!r}: build_jobs must yield Job or Task "
                f"items, got {type(item).__name__}"
            )
    return tasks


def run_scenario(name: str, **overrides: Any) -> RunResult:
    """Resolve, build, execute and reduce one scenario run.

    Any declared parameter can be overridden by keyword; the ``jobs``
    parameter (when declared) fans independent work items out to a
    process pool with bit-identical results.  Returns the
    :class:`RunResult` envelope; the rich in-memory result object is on
    its ``artifact`` attribute.
    """
    spec = get(name)
    params = spec.resolve(overrides)
    start = time.perf_counter()
    work = list(spec.build_jobs(params))
    jobs = params.get("jobs", 1)
    jobs = int(jobs) if isinstance(jobs, int) and not isinstance(jobs, bool) else 1
    results = run_tasks(_as_tasks(work, params, name), jobs=jobs)
    if spec.reduce is not None:
        artifact = spec.reduce(results, params)
    else:
        if len(results) != 1:
            raise TypeError(
                f"scenario {name!r} produced {len(results)} results but "
                f"declares no reduce(); a reducer is required for "
                f"multi-item scenarios"
            )
        artifact = results[0]
    wall = time.perf_counter() - start
    if spec.summarize is not None:
        metrics = spec.summarize(artifact, params)
    elif isinstance(artifact, Mapping):
        metrics = artifact
    else:
        raise TypeError(
            f"scenario {name!r}: artifact of type {type(artifact).__name__} "
            f"needs a summarize() to produce the metrics payload"
        )
    seed = params.get("seed")
    from repro.util.provenance import collect_provenance

    return RunResult(
        scenario=name,
        params=params,
        metrics=metrics,
        seed=seed if isinstance(seed, int) and not isinstance(seed, bool) else None,
        sim_seconds=spec.resolved_sim_seconds(params),
        wall_seconds=wall,
        provenance=collect_provenance(),
        artifact=artifact,
    )


def run_sweep(
    name: str,
    axes: Mapping[str, Sequence[Any]],
    **overrides: Any,
) -> List[RunResult]:
    """Run ``name`` once per cell of the product of ``axes``.

    ``axes`` maps declared parameter names to value lists (strings are
    fine — each cell goes through the scenario's own coercion).  Cells
    run in the product's lexicographic order (first axis slowest), each
    as a full :func:`run_scenario` with ``overrides`` applied beneath
    the cell's axis values, and every cell gets its own provenance-
    stamped envelope — a sweep is comparable across machines cell by
    cell.  Axis names shadowing an ``overrides`` key are an error (a
    swept parameter cannot also be pinned).
    """
    import itertools

    spec = get(name)
    if not axes:
        raise ParamError(f"scenario {name!r}: a sweep needs at least one axis")
    keys: List[str] = []
    value_lists: List[List[Any]] = []
    for key, values in axes.items():
        spec.param(key)  # raises ParamError on unknown names
        if key in overrides:
            raise ParamError(
                f"scenario {name!r}: parameter {key!r} is both swept and "
                f"pinned; drop it from one side"
            )
        values = list(values)
        if not values:
            raise ParamError(
                f"scenario {name!r}: sweep axis {key!r} has no values"
            )
        keys.append(key)
        value_lists.append(values)
    results: List[RunResult] = []
    for combo in itertools.product(*value_lists):
        cell = dict(zip(keys, combo))
        results.append(run_scenario(name, **{**overrides, **cell}))
    return results
