"""Unified Scenario API: declarative experiments, one engine, one schema.

Every paper figure, table, sweep and live workload is registered as a
:class:`ScenarioSpec` against one process-global registry; the engine
runs any of them through the :mod:`repro.runtime.parallel` Job/Task
machinery and returns a uniform, JSON-serialisable :class:`RunResult`
envelope::

    from repro.scenarios import list_scenarios, run_scenario

    for spec in list_scenarios():
        print(spec.name, spec.description)

    result = run_scenario("fig1", n=100, duration=25.0, jobs=3)
    result.artifact          # the rich Fig1Result object
    result.metrics           # JSON-safe payload
    print(result.to_json(indent=2))

The CLI (``repro run/list/describe``) is a thin veneer over exactly
these functions; see ``docs/SCENARIOS.md`` for the registration guide.
"""

from repro.scenarios.registry import (
    get,
    list_scenarios,
    load_builtins,
    register,
    run_scenario,
    run_sweep,
    scenario,
)
from repro.scenarios.spec import (
    DuplicateScenarioError,
    Param,
    ParamError,
    RUN_RESULT_SCHEMA,
    RunResult,
    ScenarioSpec,
    UnknownScenarioError,
)

__all__ = [
    "DuplicateScenarioError",
    "Param",
    "ParamError",
    "RUN_RESULT_SCHEMA",
    "RunResult",
    "ScenarioSpec",
    "UnknownScenarioError",
    "get",
    "list_scenarios",
    "load_builtins",
    "register",
    "run_scenario",
    "run_sweep",
    "scenario",
]
