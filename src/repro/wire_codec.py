"""Safe length-prefixed binary codec for the wire messages.

The live transport must never trust a peer's bytes: a pickle-based
frame is arbitrary code execution, and even a "trusted" deployment is
one compromised box away from a hostile one.  This module derives a
strict schema codec from the frozen slotted dataclasses in
:mod:`repro.wire` — every field is packed with an explicit fixed-width
encoding, every sequence is length-prefixed and capped, and decoding
validates the frame end to end (unknown type tags, truncated bodies,
trailing bytes, out-of-range counts and non-canonical booleans are all
rejected with a :class:`CodecError`).

Frame layout (the transport adds a 4-byte ``!I`` length prefix on TCP;
UDP datagrams carry one frame verbatim)::

    tag:1 | src:8 (signed big-endian) | body (per-field packing)

Field encodings, compiled once per message class from its type hints:

====================  ==================================================
``int``               8-byte signed big-endian (``!q``)
``float``             8-byte IEEE-754 big-endian (``!d``)
``bool``              1 byte, strictly ``0x00`` / ``0x01``
``str``               2-byte length + UTF-8 bytes (cap ``MAX_STR_BYTES``)
``Tuple[X, ...]``     2-byte count (cap ``MAX_SEQ_ITEMS``) + elements
``Tuple[A, B, C]``    fixed: the three elements back to back
====================  ==================================================

Encoding canonicalises numpy scalars (``np.int64``, ``np.float64``,
``np.bool_``) to their Python equivalents, so a round-trip always
yields plain Python values — the property the hypothesis suite pins.

The codec is intentionally *not* versioned per message: the tag is the
class's index in :data:`repro.wire.WIRE_MESSAGE_CLASSES`, so the wire
format is frozen exactly as hard as that tuple's order — appending new
classes is compatible, reordering is a flag-day (and the test suite
pins the tag assignment).
"""

from __future__ import annotations

import struct
import typing
from typing import Tuple

from repro import wire
from repro.wire import WIRE_MESSAGE_CLASSES

__all__ = [
    "CodecError",
    "MalformedFrameError",
    "OversizedFrameError",
    "UnknownTypeError",
    "MAX_FRAME_BYTES",
    "MAX_SEQ_ITEMS",
    "MAX_STR_BYTES",
    "decode_frame",
    "encode_frame",
    "peek_src",
    "tag_of",
]


class CodecError(ValueError):
    """Base class for every frame rejection."""


class UnknownTypeError(CodecError):
    """The frame's type tag names no known message class."""


class MalformedFrameError(CodecError):
    """The frame violates the schema (truncated, trailing, bad value)."""


class OversizedFrameError(CodecError):
    """The frame (or one of its sequences) exceeds a hard cap."""


#: hard ceiling on one frame; the TCP reader checks the length prefix
#: against this *before* allocating, so a hostile 4 GiB header cannot
#: balloon memory.
MAX_FRAME_BYTES = 64 * 1024
#: elements allowed per encoded sequence (fanouts and history windows
#: are two orders of magnitude smaller).
MAX_SEQ_ITEMS = 4096
#: UTF-8 bytes allowed per string field (reasons are diagnostic tags).
MAX_STR_BYTES = 255

_INT = struct.Struct("!q")
_FLOAT = struct.Struct("!d")
_COUNT = struct.Struct("!H")

_HEADER_LEN = 1 + _INT.size  # tag + src


# ----------------------------------------------------------------------
# schema compilation: type hints -> spec trees
# ----------------------------------------------------------------------
def _compile_spec(hint) -> tuple:
    """Compile one type hint into a spec tree the codec can execute."""
    if hint is int:
        return ("int",)
    if hint is float:
        return ("float",)
    if hint is bool:
        return ("bool",)
    if hint is str:
        return ("str",)
    origin = typing.get_origin(hint)
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return ("seq", _compile_spec(args[0]))
        return ("fixed", tuple(_compile_spec(a) for a in args))
    raise TypeError(f"unsupported wire field type: {hint!r}")


def _compile_all() -> dict:
    """Field specs for every wire class, keyed by class."""
    compiled = {}
    for cls in WIRE_MESSAGE_CLASSES:
        hints = typing.get_type_hints(cls)
        compiled[cls] = tuple(
            (name, _compile_spec(hints[name])) for name in cls.__slots__
        )
    return compiled


_SPECS = _compile_all()
_TAG_OF = {cls: tag for tag, cls in enumerate(WIRE_MESSAGE_CLASSES)}
_CLS_OF = {tag: cls for tag, cls in enumerate(WIRE_MESSAGE_CLASSES)}


def tag_of(cls) -> int:
    """The 1-byte wire tag of a message class."""
    return _TAG_OF[cls]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_value(spec: tuple, value, out: list) -> None:
    kind = spec[0]
    if kind == "int":
        out.append(_INT.pack(int(value)))
    elif kind == "float":
        out.append(_FLOAT.pack(float(value)))
    elif kind == "bool":
        out.append(b"\x01" if value else b"\x00")
    elif kind == "str":
        data = str(value).encode("utf-8")[:MAX_STR_BYTES]
        out.append(_COUNT.pack(len(data)))
        out.append(data)
    elif kind == "seq":
        items = tuple(value)
        if len(items) > MAX_SEQ_ITEMS:
            raise OversizedFrameError(
                f"sequence of {len(items)} items exceeds cap {MAX_SEQ_ITEMS}"
            )
        out.append(_COUNT.pack(len(items)))
        elem = spec[1]
        for item in items:
            _encode_value(elem, item, out)
    else:  # fixed
        elems = spec[1]
        items = tuple(value)
        if len(items) != len(elems):
            raise MalformedFrameError(
                f"fixed tuple needs {len(elems)} items, got {len(items)}"
            )
        for elem, item in zip(elems, items):
            _encode_value(elem, item, out)


def encode_frame(src: int, message) -> bytes:
    """Serialise ``(src, message)`` into one self-contained frame.

    Raises :class:`UnknownTypeError` for a non-wire message class and
    :class:`OversizedFrameError` when the result exceeds
    :data:`MAX_FRAME_BYTES` — both are sender-side programming errors,
    not network conditions, so they propagate instead of being counted.
    """
    tag = _TAG_OF.get(message.__class__)
    if tag is None:
        raise UnknownTypeError(
            f"{message.__class__.__name__} is not a wire message class"
        )
    out = [bytes((tag,)), _INT.pack(int(src))]
    try:
        for name, spec in _SPECS[message.__class__]:
            _encode_value(spec, getattr(message, name), out)
    except (TypeError, ValueError, struct.error) as exc:
        if isinstance(exc, CodecError):
            raise
        raise MalformedFrameError(f"unencodable field value: {exc}") from exc
    frame = b"".join(out)
    if len(frame) > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"frame of {len(frame)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return frame


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _decode_value(spec: tuple, data: bytes, offset: int):
    kind = spec[0]
    if kind == "int":
        end = offset + _INT.size
        if end > len(data):
            raise MalformedFrameError("truncated int field")
        return _INT.unpack_from(data, offset)[0], end
    if kind == "float":
        end = offset + _FLOAT.size
        if end > len(data):
            raise MalformedFrameError("truncated float field")
        return _FLOAT.unpack_from(data, offset)[0], end
    if kind == "bool":
        if offset >= len(data):
            raise MalformedFrameError("truncated bool field")
        byte = data[offset]
        if byte > 1:
            raise MalformedFrameError(f"non-canonical bool byte {byte:#x}")
        return byte == 1, offset + 1
    if kind == "str":
        end = offset + _COUNT.size
        if end > len(data):
            raise MalformedFrameError("truncated string length")
        length = _COUNT.unpack_from(data, offset)[0]
        if length > MAX_STR_BYTES:
            raise OversizedFrameError(f"string of {length} bytes exceeds cap")
        offset, end = end, end + length
        if end > len(data):
            raise MalformedFrameError("truncated string body")
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise MalformedFrameError("invalid UTF-8 in string field") from exc
    if kind == "seq":
        end = offset + _COUNT.size
        if end > len(data):
            raise MalformedFrameError("truncated sequence count")
        count = _COUNT.unpack_from(data, offset)[0]
        if count > MAX_SEQ_ITEMS:
            raise OversizedFrameError(f"sequence of {count} items exceeds cap")
        elem = spec[1]
        offset = end
        items = []
        for _ in range(count):
            item, offset = _decode_value(elem, data, offset)
            items.append(item)
        return tuple(items), offset
    # fixed
    items = []
    for elem in spec[1]:
        item, offset = _decode_value(elem, data, offset)
        items.append(item)
    return tuple(items), offset


def decode_frame(data: bytes):
    """Parse one frame back into ``(src, message)``.

    Strict: the tag must be known, every field must decode within
    bounds, and the body must be consumed exactly — trailing bytes are
    rejected (they would silently smuggle state past the schema).
    """
    if len(data) > MAX_FRAME_BYTES:
        raise OversizedFrameError(
            f"frame of {len(data)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    if len(data) < _HEADER_LEN:
        raise MalformedFrameError(f"frame of {len(data)} bytes has no header")
    cls = _CLS_OF.get(data[0])
    if cls is None:
        raise UnknownTypeError(f"unknown message tag {data[0]:#x}")
    src = _INT.unpack_from(data, 1)[0]
    offset = _HEADER_LEN
    values = []
    for _name, spec in _SPECS[cls]:
        value, offset = _decode_value(spec, data, offset)
        values.append(value)
    if offset != len(data):
        raise MalformedFrameError(
            f"{len(data) - offset} trailing bytes after {cls.__name__} body"
        )
    try:
        return src, cls(*values)
    except (TypeError, ValueError) as exc:  # dataclass-level validation
        raise MalformedFrameError(f"rejected {cls.__name__}: {exc}") from exc


def peek_src(data: bytes):
    """Best-effort claimed source id of a frame (None when unreadable).

    Used to *attribute* decode failures for per-peer accounting.  The
    header is unauthenticated, so the attribution is a claim, not a
    proof — good enough to quarantine a babbling peer, not to convict
    it (exactly like an IP source address).
    """
    if len(data) < _HEADER_LEN or data[0] not in _CLS_OF:
        return None
    return _INT.unpack_from(data, 1)[0]


def supported_classes() -> Tuple[type, ...]:
    """The classes this codec can carry (the frozen wire tuple)."""
    return WIRE_MESSAGE_CLASSES


# Self-check at import: every wire class must compile to a spec whose
# leaves are the four primitive kinds.  A new field type added to
# wire.py without a codec mapping fails here, at import, not on the
# first live send.
assert len(_SPECS) == len(WIRE_MESSAGE_CLASSES)
del wire
