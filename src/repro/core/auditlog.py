"""Tamper-evident audit trail for blame and expulsion decisions.

LiFTinG's sanctions are only as trustworthy as the record of who decided
what, when — and the reputation managers keeping that record are
themselves untrusted peers.  This module provides the deployment-side
answer: an **HMAC-chained append-only log**.  Each record's tag is::

    tag_i = HMAC-SHA256(key, tag_{i-1} || canonical_json(record_i))

with ``tag_{-1}`` a zero block, so flipping a single byte anywhere
invalidates every tag from that point on — an auditor holding the key
detects tampering with :meth:`AuditLog.verify_all` and recovers with
:meth:`AuditLog.rollback`, which truncates to the last *consistent
snapshot* (a periodic record carrying a digest of the reputation state)
inside the longest valid prefix.

The log is in-memory first (the live runtime appends expulsion-quorum
and enforcement events as they happen) and optionally mirrored to a
JSONL file, one record per line, which the ``repro audit-verify`` CLI
verb checks offline.  :meth:`rollover` archives a grown chain and
starts a new segment whose first record seals the previous head, so
archived segments stay independently verifiable.

The key is derived from a seed string with SHA-256 — a stand-in for a
per-deployment secret; the chain format is key-agnostic.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import time
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Tuple

from repro.util.validation import require

__all__ = [
    "AuditLog",
    "AuditRecord",
    "ChainReport",
    "RollbackReport",
    "derive_key",
]

_GENESIS = b"\x00" * 32

SNAPSHOT_KIND = "snapshot"
ROLLOVER_KIND = "rollover"


def derive_key(key_seed: str) -> bytes:
    """Deployment key from a seed string (stand-in for a real secret)."""
    return hashlib.sha256(key_seed.encode("utf-8")).digest()


def _canonical(seq: int, ts: float, kind: str, data: Mapping) -> str:
    """The byte-stable serialisation the HMAC covers."""
    return json.dumps(
        {"seq": seq, "ts": ts, "kind": kind, "data": data},
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class AuditRecord:
    """One chained log entry."""

    seq: int
    ts: float
    kind: str
    data: Mapping
    tag: str  # hex HMAC over (previous tag || canonical payload)

    def to_line(self) -> str:
        payload = json.loads(_canonical(self.seq, self.ts, self.kind, self.data))
        payload["tag"] = self.tag
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "AuditRecord":
        raw = json.loads(line)
        return cls(
            seq=int(raw["seq"]),
            ts=float(raw["ts"]),
            kind=str(raw["kind"]),
            data=raw["data"],
            tag=str(raw["tag"]),
        )


@dataclass(frozen=True)
class ChainReport:
    """Outcome of a full-chain verification pass."""

    ok: bool
    length: int
    #: records [0, valid_prefix) verify; == length when ok.
    valid_prefix: int
    #: seq of the first bad record (None when ok).
    first_bad_seq: Optional[int] = None

    def summary(self) -> str:
        if self.ok:
            return f"chain ok: {self.length} records verified"
        return (
            f"TAMPERED: record seq={self.first_bad_seq} fails verification "
            f"({self.valid_prefix}/{self.length} records intact)"
        )


@dataclass(frozen=True)
class RollbackReport:
    """Outcome of a rollback-to-last-consistent-snapshot recovery."""

    recovered: bool
    kept: int
    dropped: int
    #: data payload of the snapshot rolled back to (None: bare prefix).
    snapshot: Optional[Mapping] = None

    def summary(self) -> str:
        if not self.recovered:
            return "nothing to recover: chain verifies"
        anchor = "snapshot" if self.snapshot is not None else "valid prefix"
        return f"recovered: rolled back to last consistent {anchor} ({self.kept} records kept, {self.dropped} dropped)"


class AuditLog:
    """HMAC-chained append-only log with verification and recovery.

    Parameters
    ----------
    key_seed:
        Seed of the HMAC key (see :func:`derive_key`).
    path:
        Optional JSONL mirror; every append writes one line (and
        flushes), so the on-disk chain survives a crash mid-run.
    clock:
        Timestamp source (defaults to ``time.time``; the runtime passes
        its own clock so records carry experiment time).
    """

    def __init__(
        self,
        key_seed: str = "lifting-audit",
        path: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.key = derive_key(key_seed)
        self.path = path
        self.clock = clock if clock is not None else time.time
        self.records: List[AuditRecord] = []
        self._prev_tag = _GENESIS
        self._file = None
        if path is not None:
            self._file = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _tag(self, prev: bytes, canonical: str) -> bytes:
        return hmac.new(self.key, prev + canonical.encode("utf-8"), hashlib.sha256).digest()

    def append(self, kind: str, ts: Optional[float] = None, **data) -> AuditRecord:
        """Chain and (when mirrored) persist one event."""
        seq = len(self.records)
        ts = float(self.clock()) if ts is None else float(ts)
        canonical = _canonical(seq, ts, kind, data)
        tag = self._tag(self._prev_tag, canonical)
        record = AuditRecord(seq=seq, ts=ts, kind=kind, data=data, tag=tag.hex())
        self.records.append(record)
        self._prev_tag = tag
        if self._file is not None:
            self._file.write(record.to_line() + "\n")
            self._file.flush()
        return record

    def snapshot(self, state: Mapping) -> AuditRecord:
        """Record a consistent-state snapshot (the rollback anchor)."""
        return self.append(SNAPSHOT_KIND, **dict(state))

    # ------------------------------------------------------------------
    # verification & recovery
    # ------------------------------------------------------------------
    def verify_all(self) -> ChainReport:
        """Re-derive every tag from the genesis block."""
        prev = _GENESIS
        for i, record in enumerate(self.records):
            canonical = _canonical(record.seq, record.ts, record.kind, record.data)
            expected = self._tag(prev, canonical)
            if record.seq != i or not hmac.compare_digest(expected.hex(), record.tag):
                return ChainReport(
                    ok=False,
                    length=len(self.records),
                    valid_prefix=i,
                    first_bad_seq=record.seq if record.seq == i else i,
                )
            prev = expected
        return ChainReport(ok=True, length=len(self.records), valid_prefix=len(self.records))

    def rollback(self) -> RollbackReport:
        """Truncate to the last consistent snapshot inside the valid prefix.

        No-op when the chain verifies.  When it does not, the log is cut
        back to the most recent ``snapshot`` record that still verifies
        (or the bare valid prefix when no snapshot survives), the chain
        head is reset accordingly, and the JSONL mirror is rewritten.
        """
        report = self.verify_all()
        if report.ok:
            return RollbackReport(recovered=False, kept=len(self.records), dropped=0)
        cut = report.valid_prefix
        snapshot_data: Optional[Mapping] = None
        for i in range(cut - 1, -1, -1):
            if self.records[i].kind == SNAPSHOT_KIND:
                snapshot_data = self.records[i].data
                cut = i + 1
                break
        dropped = len(self.records) - cut
        self.records = self.records[:cut]
        self._prev_tag = bytes.fromhex(self.records[-1].tag) if self.records else _GENESIS
        self._rewrite_mirror()
        return RollbackReport(
            recovered=True, kept=cut, dropped=dropped, snapshot=snapshot_data
        )

    def rollover(self, archive_path: Optional[str] = None) -> Tuple[int, AuditRecord]:
        """Archive the current chain and start a new sealed segment.

        The archived records (optionally written to ``archive_path`` as
        their own verifiable JSONL chain) are replaced by a fresh chain
        whose first record carries the previous head tag — the segments
        stay cryptographically linked while each file verifies from the
        zero genesis on its own.  Returns ``(archived_count, seal)``.
        """
        archived = self.records
        head = archived[-1].tag if archived else _GENESIS.hex()
        if archive_path is not None:
            with open(archive_path, "w", encoding="utf-8") as fh:
                for record in archived:
                    fh.write(record.to_line() + "\n")
        self.records = []
        self._prev_tag = _GENESIS
        seal = self.append(ROLLOVER_KIND, prev_head=head, archived=len(archived))
        self._rewrite_mirror()
        return len(archived), seal

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _rewrite_mirror(self) -> None:
        if self.path is None:
            return
        if self._file is not None:
            self._file.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(record.to_line() + "\n")
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @classmethod
    def load(cls, path: str, key_seed: str = "lifting-audit") -> "AuditLog":
        """Read a JSONL chain back (verification is the caller's move)."""
        log = cls(key_seed=key_seed, path=None)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                log.records.append(AuditRecord.from_line(line))
        if log.records:
            log._prev_tag = bytes.fromhex(log.records[-1].tag)
        log.path = path
        return log
