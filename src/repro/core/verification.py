"""Direct verification and direct cross-checking (§5.2).

The engine is hosted by a protocol node and tracks three kinds of
pending state:

* **pending acks** (we served chunks, we expect an ``ack`` naming the
  ``f`` partners they were re-proposed to) — an ack that omits served
  chunks, or no ack at all within the timeout, is the *invalid
  proposal* case and draws blame ``f``; an ack listing fewer than ``f``
  partners draws ``f - f̂`` (fanout decrease); a received ack triggers,
  with probability ``p_dcc``, a confirm round with the listed witnesses
  where every contradictory or missing testimony draws blame 1.
* **pending confirm rounds** (verifier side) — tallied at
  ``confirm_timeout``.
* **pending requests** (we requested chunks, direct verification) — at
  ``serve_timeout`` every missing chunk draws ``f/|R|``, a fully
  ignored request draws ``f``.

The host interface the engine needs (satisfied by
:class:`repro.gossip.protocol.GossipNode` and the asyncio runtime node):
``node_id``, ``clock()``, ``call_later(delay, fn, *args)``, ``random()`` (a
uniform [0,1) draw), ``send(dst, message, transport)``,
``send_blame(target, value, reason)``, ``on_request_expired(chunk_ids)``
and the ``gossip``/``lifting`` parameter sets.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Set, Tuple

import numpy as np

from repro.core.blames import (
    REASON_FANOUT_DECREASE,
    REASON_INVALID_PROPOSAL,
    REASON_NO_ACK,
    REASON_PARTIAL_SERVE,
    REASON_WITNESS_CONTRADICTION,
    fanout_decrease_blame,
    no_ack_blame,
    partial_serve_blame,
    witness_contradiction_blame,
)
from repro.wire import Ack, Confirm, ConfirmResponse

NodeId = int
ChunkId = int


@dataclass(slots=True)
class _ConfirmRound:
    """One verifier-side cross-check: witnesses we are waiting on."""

    proposer: NodeId
    witnesses: Set[NodeId]
    valid: int = 0
    answered: Set[NodeId] = field(default_factory=set)


@dataclass(slots=True)
class _PendingRequest:
    """One direct-verification window for a request we sent."""

    proposer: NodeId
    expected: Set[ChunkId]
    received: Set[ChunkId] = field(default_factory=set)

    @property
    def request_size(self) -> int:
        return len(self.expected)


class VerificationEngine:
    """Per-node state machine for §5.2's verifications."""

    def __init__(self, host) -> None:
        self.host = host
        # Fan-out batching entry point when the host offers one (the
        # simulator-backed GossipNode does; test stubs may not).
        self._host_send_many = getattr(host, "send_many", None)
        # Hot-path shortcuts mirroring the host's own: read the sim
        # clock attribute and schedule on the engine directly instead of
        # going through the host facade (one frame per serve/ack/round).
        # Both fall back to the facade for live transports / test stubs.
        self._sim = getattr(host, "_sim", None)
        self._call_later = getattr(host, "_transport_call_later", None) or getattr(
            host, "call_later", None
        )
        # Pending acks as struct-of-arrays columns: row i is one
        # outstanding (requester, chunk, served_at) triple.  The
        # insertion-ordered ``_ack_live`` dict maps each requester with
        # live rows to its row count — it reproduces the key order the
        # old dict-of-dicts exposed (first-serve order, re-insertion at
        # the end after draining), which the period sweep's blame order
        # depends on, and makes the pending-ack count exact by
        # construction: a requester is a key iff it has live rows.
        self._ack_req = np.zeros(16, dtype=np.int64)
        self._ack_chunk = np.zeros(16, dtype=np.int64)
        self._ack_time = np.zeros(16, dtype=np.float64)
        self._ack_n = 0
        self._ack_live: Dict[NodeId, int] = {}
        self._confirm_rounds: Dict[int, _ConfirmRound] = {}
        self._awaiting_response: Dict[Tuple[NodeId, NodeId], Deque[int]] = defaultdict(deque)
        self._pending_requests: Dict[int, _PendingRequest] = {}
        self._round_counter = 0
        # Diagnostics.
        self.blames_by_reason: Dict[str, float] = defaultdict(float)
        self.confirm_rounds_started = 0

    # ------------------------------------------------------------------
    # serving side: expect acks, run cross-checks
    # ------------------------------------------------------------------
    def on_serve_sent(self, requester: NodeId, chunk_id: ChunkId) -> None:
        """We served ``chunk_id`` to ``requester``; an ack must follow."""
        sim = self._sim
        now = sim.now if sim is not None else self.host.clock()
        live = self._ack_live
        n = self._ack_n
        cnt = live.get(requester)
        if cnt is not None:
            # A duplicate serve of the same (requester, chunk) — e.g. a
            # retry chain looping back to us — just refreshes its clock,
            # matching the old per-requester dict overwrite.
            # ndarray.nonzero() over np.nonzero(): same result, one Python
            # frame instead of four on a per-serve hot path.
            hits = (
                (self._ack_req[:n] == requester) & (self._ack_chunk[:n] == chunk_id)
            ).nonzero()[0]
            if hits.size:
                self._ack_time[hits[0]] = now
                return
            live[requester] = cnt + 1
        else:
            live[requester] = 1
        if n == self._ack_req.shape[0]:
            self._grow_acks()
        self._ack_req[n] = requester
        self._ack_chunk[n] = chunk_id
        self._ack_time[n] = now
        self._ack_n = n + 1

    def _grow_acks(self) -> None:
        for name in ("_ack_req", "_ack_chunk", "_ack_time"):
            old = getattr(self, name)
            new = np.zeros(old.shape[0] * 2, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def _drop_ack_rows(self, indices: List[int]) -> None:
        """Remove rows (ascending indices) by swapping the tail in."""
        req = self._ack_req
        chunk = self._ack_chunk
        time = self._ack_time
        live = self._ack_live
        n = self._ack_n
        for i in reversed(indices):
            requester = int(req[i])
            cnt = live[requester] - 1
            if cnt:
                live[requester] = cnt
            else:
                del live[requester]
            n -= 1
            if i != n:
                req[i] = req[n]
                chunk[i] = chunk[n]
                time[i] = time[n]
        self._ack_n = n

    def on_ack(self, src: NodeId, ack: Ack) -> None:
        """Handle the ack of a node we served; §5.2's verifier role."""
        host = self.host
        fanout = host.gossip.fanout
        sim = self._sim
        now = sim.now if sim is not None else host.clock()
        if src in self._ack_live:
            n = self._ack_n
            rows = (self._ack_req[:n] == src).nonzero()[0]
            acked = set(ack.chunk_ids)
            period = self.host.gossip.gossip_period
            time = self._ack_time
            drop: List[int] = []
            overdue = False
            for i, chunk_id in zip(rows.tolist(), self._ack_chunk[rows].tolist()):
                if chunk_id in acked:
                    drop.append(i)
                # Chunks we served long enough ago that they *must* have
                # been in this proposal (one gossip period, §5.2) but are
                # absent: the proposal is invalid — blame f.
                elif now - float(time[i]) >= period:
                    drop.append(i)
                    overdue = True
            if overdue:
                self._blame(src, no_ack_blame(fanout), REASON_INVALID_PROPOSAL)
            if drop:
                self._drop_ack_rows(drop)

        if len(ack.partners) < fanout:
            value = fanout_decrease_blame(fanout, len(ack.partners))
            if value > 0:
                self._blame(src, value, REASON_FANOUT_DECREASE)

        if ack.partners and self.host.random() < self.host.lifting.p_dcc:
            self._start_confirm_round(src, ack)

    def on_ack_batch(self, entries, lo: int, hi: int) -> None:
        """Batched :meth:`on_ack` for a same-destination delivery run.

        ``entries[lo:hi]`` are delivery-timeline entries ``[time, seq,
        src, dst, message]``; the clock is advanced to each entry's
        delivery time before processing (``on_ack`` reads it for the
        overdue-chunk window, and the confirm fan-out it may trigger
        must send at the entry's own instant).
        """
        sim = getattr(self.host, "_sim", None)
        on_ack = self.on_ack
        for k in range(lo, hi):
            e = entries[k]
            if sim is not None:
                sim.now = e[0]
            on_ack(e[2], e[4])

    def _start_confirm_round(self, proposer: NodeId, ack: Ack) -> None:
        self._round_counter += 1
        round_id = self._round_counter
        witnesses = set(ack.partners)
        self._confirm_rounds[round_id] = _ConfirmRound(proposer=proposer, witnesses=witnesses)
        self.confirm_rounds_started += 1
        confirm = Confirm(proposer=proposer, chunk_ids=ack.chunk_ids)
        awaiting = self._awaiting_response
        for witness in witnesses:
            awaiting[(proposer, witness)].append(round_id)
        host = self.host
        send_many = self._host_send_many
        if send_many is not None:
            send_many(witnesses, confirm)
        else:
            for witness in witnesses:
                host.send(witness, confirm)
        self._call_later(
            host.lifting.confirm_timeout, self._finish_confirm_round, round_id
        )

    def on_confirm_response(self, src: NodeId, response: ConfirmResponse) -> None:
        """A witness answered one of our confirm requests."""
        queue = self._awaiting_response.get((response.proposer, src))
        while queue:
            round_id = queue.popleft()
            round_state = self._confirm_rounds.get(round_id)
            if round_state is None or src in round_state.answered:
                continue
            round_state.answered.add(src)
            if response.valid:
                round_state.valid += 1
            return

    def _finish_confirm_round(self, round_id: int) -> None:
        round_state = self._confirm_rounds.pop(round_id, None)
        if round_state is None:
            return
        contradictions = len(round_state.witnesses) - round_state.valid
        if contradictions > 0:
            value = contradictions * witness_contradiction_blame()
            self._blame(round_state.proposer, value, REASON_WITNESS_CONTRADICTION)

    # ------------------------------------------------------------------
    # requesting side: direct verification
    # ------------------------------------------------------------------
    def on_request_sent(
        self, proposer: NodeId, proposal_id: int, chunk_ids: Tuple[ChunkId, ...]
    ) -> None:
        """We requested ``chunk_ids``; start the serve-timeout window."""
        if not chunk_ids:
            return
        self._pending_requests[proposal_id] = _PendingRequest(
            proposer=proposer, expected=set(chunk_ids)
        )
        self._call_later(
            self.host.lifting.serve_timeout, self._finish_request, proposal_id
        )

    def on_serve_received(self, proposal_id: int, chunk_id: ChunkId) -> None:
        """A serve matching one of our requests arrived."""
        pending = self._pending_requests.get(proposal_id)
        if pending is not None:
            pending.received.add(chunk_id)

    def _finish_request(self, proposal_id: int) -> None:
        pending = self._pending_requests.pop(proposal_id, None)
        if pending is None:
            return
        missing = pending.expected - pending.received
        if missing:
            served = pending.request_size - len(missing)
            value = partial_serve_blame(
                self.host.gossip.fanout, pending.request_size, served
            )
            self._blame(pending.proposer, value, REASON_PARTIAL_SERVE)
            self.host.on_request_expired(pending.proposer, missing)

    # ------------------------------------------------------------------
    # periodic sweep: missing acks
    # ------------------------------------------------------------------
    def on_period_tick(self) -> None:
        """Blame requesters whose acks never arrived (once per sweep).

        The sweep is one masked array pass over the pending-ack columns;
        the common no-expiry case exits after a single vectorised
        compare instead of walking a dict of dicts.
        """
        n = self._ack_n
        if not n:
            return
        host = self.host
        sim = self._sim
        now = sim.now if sim is not None else host.clock()
        timeout = host.lifting.ack_timeout
        mask = (now - self._ack_time[:n]) >= timeout
        if not mask.any():
            return
        fanout = self.host.gossip.fanout
        expired = mask.nonzero()[0]
        affected = set(self._ack_req[expired].tolist())
        # Blame in the requester insertion order the old dict walk used.
        for requester in self._ack_live:
            if requester in affected:
                self._blame(requester, no_ack_blame(fanout), REASON_NO_ACK)
        self._drop_ack_rows(expired.tolist())

    # ------------------------------------------------------------------
    def _blame(self, target: NodeId, value: float, reason: str) -> None:
        self.blames_by_reason[reason] += value
        self.host.send_blame(target, value, reason)

    def purge_requester(self, node_id: NodeId) -> None:
        """Drop any pending-ack rows naming ``node_id`` as requester.

        Called when a node is readmitted under a bumped incarnation so
        that no stale ack expectations (and the blames they would draw)
        leak across incarnations.
        """
        if node_id not in self._ack_live:
            return
        rows = (self._ack_req[: self._ack_n] == node_id).nonzero()[0]
        self._drop_ack_rows(rows.tolist())

    def reset_transient(self) -> None:
        """Clear all pending verification state (new incarnation)."""
        self._ack_n = 0
        self._ack_live.clear()
        self._confirm_rounds.clear()
        self._awaiting_response.clear()
        self._pending_requests.clear()

    @property
    def pending_ack_count(self) -> int:
        """Requesters we are currently awaiting acks from."""
        return len(self._ack_live)

    @property
    def open_confirm_rounds(self) -> int:
        """Cross-check rounds whose timeout has not yet fired."""
        return len(self._confirm_rounds)

    @property
    def open_request_windows(self) -> int:
        """Direct-verification windows still open."""
        return len(self._pending_requests)
