"""Decentralised reputation — the Alliatrust-like substrate of §5.1.

Every node is assigned ``M`` pseudo-random *managers* that each keep a
copy of its score.  Blaming a node means sending a ``Blame`` message to
all of its managers; reading a score means querying the managers and
voting over the replies with **min** (resilient to lost blames and to
colluding managers inflating scores).  The very same managers decide
expulsion: each manager that locally observes the compensated score
below ``η`` (after the grace period) votes, and a quorum of votes expels
the node.

Wrongful-blame compensation (§6.2) is applied at read time: the
normalised score after ``r`` periods is::

    s = -(1/r) Σ (b_i - b̃) = b̃ - B/r

where ``B`` is the cumulative blame a manager recorded and ``b̃`` the
closed-form expectation of Eq. (5) under the deployment's assumed loss
rate.  Honest nodes therefore hover around 0 regardless of how lossy
the network is, which is what makes a *fixed* threshold usable.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import GossipParams, LiftingParams
from repro.util.rng import make_generator
from repro.util.validation import require

NodeId = int


class ManagerAssignment:
    """Deterministic node → managers map shared by the whole system.

    Derived from a seed so that every node computes the same assignment
    without coordination (in a deployment this would be consistent
    hashing over the membership; the paper only requires "M random
    managers").
    """

    def __init__(self, population: Sequence[NodeId], managers: int, seed: int) -> None:
        population = list(population)
        require(len(population) >= 2, "need at least 2 nodes for manager assignment")
        count = min(managers, len(population) - 1)
        require(count >= 1, "need at least 1 manager per node")
        self.managers_per_node = count
        rng = make_generator(seed, "manager-assignment")
        self._managers: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._managed: Dict[NodeId, List[NodeId]] = {node: [] for node in population}
        arr = np.array(population)
        for node in population:
            others = arr[arr != node]
            picks = rng.choice(others, size=count, replace=False)
            managers_of_node = tuple(int(p) for p in picks)
            self._managers[node] = managers_of_node
            for manager in managers_of_node:
                self._managed[manager].append(node)

    def managers_of(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The managers holding ``node``'s score."""
        return self._managers.get(node, ())

    def managed_by(self, manager: NodeId) -> Tuple[NodeId, ...]:
        """The nodes whose score ``manager`` keeps."""
        return tuple(self._managed.get(manager, ()))

    def is_manager_of(self, manager: NodeId, node: NodeId) -> bool:
        """Whether ``manager`` holds a copy of ``node``'s score."""
        return manager in self._managers.get(node, ())

    def __contains__(self, node: NodeId) -> bool:
        return node in self._managers


class ReputationPool:
    """Flat struct-of-arrays storage for manager records.

    One pool can back every manager in a cluster: each manager owns a
    contiguous block of rows (one row per managed target), so the
    per-period expulsion sweep and the :class:`ScoreBoard` snapshot read
    become numpy slice/gather passes over shared columns instead of
    walks over ~``n·M`` per-record Python objects.

    ``row_dirty`` is the sweep's skip flag: every score-relevant
    mutation (blame arithmetic, quarantine transitions, flag writes —
    including writes through :class:`ManagerRecord` proxies) marks its
    row, and :meth:`ReputationManager.expulsion_candidates` clears its
    block after sweeping it.

    Rows are durable: the paper's scores are absolute, so records
    survive a target's crash/readmission (only *transient* protocol
    state is zeroed by the dense-id remap).
    """

    def __init__(self, capacity: int = 0) -> None:
        cap = max(1, capacity)
        self.target = np.zeros(cap, dtype=np.int64)
        self.joined_at = np.zeros(cap, dtype=np.float64)
        self.blame_total = np.zeros(cap, dtype=np.float64)
        self.blame_events = np.zeros(cap, dtype=np.int64)
        self.quarantined_total = np.zeros(cap, dtype=np.float64)
        self.quarantined_events = np.zeros(cap, dtype=np.int64)
        self.voted_expel = np.zeros(cap, dtype=bool)
        self.expelled = np.zeros(cap, dtype=bool)
        self.suspected = np.zeros(cap, dtype=bool)
        self.row_dirty = np.zeros(cap, dtype=bool)
        self.size = 0
        # Expulsion votes are rare and set-valued; kept per-row on the
        # side rather than widening the columns.
        self._votes: Dict[int, Set[NodeId]] = {}

    def alloc_block(self, targets: Sequence[NodeId], joined_at: float) -> int:
        """Allocate a contiguous row block; returns the base row."""
        base = self.size
        end = base + len(targets)
        cap = self.target.shape[0]
        if end > cap:
            new_cap = cap
            while new_cap < end:
                new_cap *= 2
            for name in (
                "target",
                "joined_at",
                "blame_total",
                "blame_events",
                "quarantined_total",
                "quarantined_events",
                "voted_expel",
                "expelled",
                "suspected",
                "row_dirty",
            ):
                old = getattr(self, name)
                new = np.zeros(new_cap, dtype=old.dtype)
                new[:cap] = old
                setattr(self, name, new)
        if targets:
            self.target[base:end] = targets
            self.joined_at[base:end] = joined_at
            self.row_dirty[base:end] = True
        self.size = end
        return base

    def votes_of(self, row: int) -> Set[NodeId]:
        votes = self._votes.get(row)
        if votes is None:
            votes = self._votes[row] = set()
        return votes


class ManagerRecord:
    """One manager's copy of one node's reputation state.

    A lightweight proxy over one :class:`ReputationPool` row — the
    attribute surface of the former dataclass is preserved, but the
    values live in the pooled columns (materialising a proxy is cheap
    and transient; nothing holds ``n·M`` record objects alive anymore).
    Attribute writes mark the row dirty so the expulsion sweep's
    skip-when-clean fast path stays sound no matter who mutates a
    record.

    ``suspected`` flips while the failure detector suspects the target:
    incoming blames are then diverted into the quarantine buffer
    (``quarantined_total`` / ``quarantined_events``) instead of the
    score, and the record is excluded from expulsion voting.  The
    buffer is folded into the score if the node is confirmed dead
    (silence is freerider-compatible) and discarded on refutation.
    """

    __slots__ = ("pool", "row")

    def __init__(self, pool: ReputationPool, row: int) -> None:
        self.pool = pool
        self.row = row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ManagerRecord(target={int(self.pool.target[self.row])}, "
            f"blame_total={float(self.pool.blame_total[self.row])!r})"
        )

    @property
    def target(self) -> NodeId:
        return int(self.pool.target[self.row])

    @property
    def expel_votes(self) -> Set[NodeId]:
        return self.pool.votes_of(self.row)


def _record_field(column: str, caster):
    def getter(self):
        return caster(getattr(self.pool, column)[self.row])

    def setter(self, value):
        getattr(self.pool, column)[self.row] = value
        self.pool.row_dirty[self.row] = True

    return property(getter, setter)


for _column, _caster in (
    ("joined_at", float),
    ("blame_total", float),
    ("blame_events", int),
    ("quarantined_total", float),
    ("quarantined_events", int),
    ("voted_expel", bool),
    ("expelled", bool),
    ("suspected", bool),
):
    setattr(ManagerRecord, _column, _record_field(_column, _caster))
del _column, _caster


class _RecordsView:
    """Read-through mapping ``target -> ManagerRecord`` over pool rows.

    Behaves like the dict of records the manager used to hold
    (insertion order == ``assignment.managed_by`` order) but
    materialises proxies on demand.
    """

    __slots__ = ("_pool", "_row_of")

    def __init__(self, pool: ReputationPool, row_of: Dict[NodeId, int]) -> None:
        self._pool = pool
        self._row_of = row_of

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, target: NodeId) -> bool:
        return target in self._row_of

    def __iter__(self):
        return iter(self._row_of)

    def __getitem__(self, target: NodeId) -> ManagerRecord:
        return ManagerRecord(self._pool, self._row_of[target])

    def get(self, target: NodeId, default=None):
        row = self._row_of.get(target)
        if row is None:
            return default
        return ManagerRecord(self._pool, row)

    def keys(self):
        return self._row_of.keys()

    def values(self):
        pool = self._pool
        return [ManagerRecord(pool, row) for row in self._row_of.values()]

    def items(self):
        pool = self._pool
        return [
            (target, ManagerRecord(pool, row))
            for target, row in self._row_of.items()
        ]


def compensation_per_period(gossip: GossipParams, lifting: LiftingParams) -> float:
    """``b̃`` — Eq. (5) under the deployment's assumed loss rate."""
    return expected_blame_honest(
        gossip.fanout, gossip.request_size, lifting.p_reception, lifting.p_dcc
    )


class ReputationManager:
    """The manager component hosted by every node.

    Parameters
    ----------
    owner:
        The hosting node's id.
    assignment:
        The global manager assignment.
    gossip, lifting:
        Protocol parameters (``T_g`` for period counting, ``η``,
        quorum, grace period...).
    now:
        Clock callable (bound to the simulator or the asyncio loop).
    compensation:
        Per-period wrongful-blame compensation ``b̃``; computed from the
        closed form when omitted.  Pass 0.0 to ablate compensation.
    """

    def __init__(
        self,
        owner: NodeId,
        assignment: ManagerAssignment,
        gossip: GossipParams,
        lifting: LiftingParams,
        now: Callable[[], float],
        compensation: Optional[float] = None,
        start_time: float = 0.0,
        pool: Optional[ReputationPool] = None,
    ) -> None:
        self.owner = owner
        self.assignment = assignment
        self.gossip = gossip
        self.lifting = lifting
        self.now = now
        self.compensation = (
            compensation_per_period(gossip, lifting) if compensation is None else compensation
        )
        targets = assignment.managed_by(owner)
        # Records live as a contiguous row block in a (possibly shared)
        # struct-of-arrays pool; ``records`` is a read-through view with
        # the old dict surface.
        self.pool = pool if pool is not None else ReputationPool(len(targets))
        self._base = self.pool.alloc_block(targets, start_time)
        self._count = len(targets)
        self._block = slice(self._base, self._base + self._count)
        self._row_of: Dict[NodeId, int] = {
            target: self._base + i for i, target in enumerate(targets)
        }
        self.records = _RecordsView(self.pool, self._row_of)
        #: True once an expulsion sweep saw every managed record past the
        #: grace period (r >= min_periods_before_expel) — a precondition
        #: of the sweep's skip-when-clean fast path.
        self._all_mature = False
        self._quorum_votes = max(
            1, math.ceil(lifting.expel_quorum * assignment.managers_per_node)
        )
        #: optional tamper-evident trail (:class:`repro.core.auditlog.AuditLog`);
        #: when set, expulsion votes and quorum decisions are chained.
        self.audit_log = None
        # Quarantine outcome counters (scenario metrics read these).
        self.quarantines_started = 0
        self.quarantines_discarded = 0
        self.quarantines_released = 0

    # ------------------------------------------------------------------
    # blame handling
    # ------------------------------------------------------------------
    def on_blame(self, target: NodeId, value: float) -> None:
        """Record a blame (positive) or a compensation credit (negative)."""
        row = self._row_of.get(target)
        if row is None:
            return  # not a manager of this node; drop silently
        pool = self.pool
        if pool.suspected[row]:
            pool.quarantined_total[row] += value
            pool.quarantined_events[row] += 1
            return
        pool.blame_total[row] += value
        pool.blame_events[row] += 1
        pool.row_dirty[row] = True

    def on_blame_message(self, src: NodeId, message) -> None:
        """Wire-level blame handler (dispatch-table entry point).

        Same effect as :meth:`on_blame`, with the body inlined: bound
        directly into the hosting node's dispatch table, a delivered
        ``Blame`` costs exactly this one frame.
        """
        row = self._row_of.get(message.target)
        if row is None:
            return  # not a manager of this node; drop silently
        pool = self.pool
        if pool.suspected[row]:
            pool.quarantined_total[row] += message.value
            pool.quarantined_events[row] += 1
            return
        pool.blame_total[row] += message.value
        pool.blame_events[row] += 1
        pool.row_dirty[row] = True

    def on_blame_batch(self, targets, values) -> None:
        """Apply one period's batched blames: arrays of (target, value).

        Equivalent to calling :meth:`on_blame` per pair in order (each
        pair is one recorded blame event, applied with the same float
        addition sequence — bit-identical scores).
        """
        row_of = self._row_of.get
        pool = self.pool
        suspected = pool.suspected
        for target, value in zip(targets, values):
            row = row_of(target)
            if row is None:
                continue
            if suspected[row]:
                pool.quarantined_total[row] += value
                pool.quarantined_events[row] += 1
                continue
            pool.blame_total[row] += value
            pool.blame_events[row] += 1
            pool.row_dirty[row] = True

    def on_blame_entries(self, entries, lo: int, hi: int) -> None:
        """Wire-level batched blames: a same-destination delivery run.

        The calendar-queue drain's batch entry point (see
        ``GossipNode.batch_dispatch_table``): ``entries[lo:hi]`` are
        timeline entries ``[time, seq, src, dst, message]``, applied in
        firing order with the same float addition sequence as
        per-message delivery — one frame for the whole run instead of
        one :meth:`on_blame_message` frame each.  Blame recording never
        reads the clock, so the drain's run-end ``now`` is already
        correct.
        """
        row_of = self._row_of.get
        pool = self.pool
        suspected = pool.suspected
        blame_total = pool.blame_total
        blame_events = pool.blame_events
        row_dirty = pool.row_dirty
        for k in range(lo, hi):
            message = entries[k][4]
            row = row_of(message.target)
            if row is None:
                continue
            if suspected[row]:
                pool.quarantined_total[row] += message.value
                pool.quarantined_events[row] += 1
                continue
            blame_total[row] += message.value
            blame_events[row] += 1
            row_dirty[row] = True

    # ------------------------------------------------------------------
    # churn-aware blame quarantine (see membership.failure_detector)
    # ------------------------------------------------------------------
    def quarantine_target(self, target: NodeId) -> bool:
        """Start diverting blames against ``target`` into quarantine.

        Called when the local failure detector suspects the target: a
        silent node accrues blames exactly like a freerider, so holding
        them back is what protects an honest crash from wrongful
        expulsion.  Idempotent; False when not a manager of ``target``.
        """
        record = self.records.get(target)
        if record is None or record.suspected or record.expelled:
            return False
        record.suspected = True
        self.quarantines_started += 1
        if self.audit_log is not None:
            self.audit_log.append(
                "blame_quarantine",
                ts=self.now(),
                manager=int(self.owner),
                target=int(target),
            )
        return True

    def discard_quarantine(self, target: NodeId) -> bool:
        """The target refuted the suspicion: drop the held blames.

        The node was alive-but-slow (or partitioned); punishing it for
        the silent window would be exactly the wrongful blame Eq. (5)
        compensates for, so the buffer is discarded.
        """
        record = self.records.get(target)
        if record is None or not record.suspected:
            return False
        record.suspected = False
        dropped_total = record.quarantined_total
        dropped_events = record.quarantined_events
        record.quarantined_total = 0.0
        record.quarantined_events = 0
        self.quarantines_discarded += 1
        if self.audit_log is not None:
            self.audit_log.append(
                "quarantine_discard",
                ts=self.now(),
                manager=int(self.owner),
                target=int(target),
                dropped_total=float(dropped_total),
                dropped_events=int(dropped_events),
            )
        return True

    def release_quarantine(self, target: NodeId) -> bool:
        """The target was confirmed dead-then-silent: fold the held
        blames into its score.

        Persistent silence is freerider-compatible (a freerider that
        simply stops serving looks identical), so the blames count — if
        the node later rejoins with a bumped incarnation it starts from
        this score under the young-node audit rule.
        """
        record = self.records.get(target)
        if record is None or not record.suspected:
            return False
        record.suspected = False
        released_total = record.quarantined_total
        released_events = record.quarantined_events
        record.blame_total += released_total
        record.blame_events += released_events
        record.quarantined_total = 0.0
        record.quarantined_events = 0
        self.quarantines_released += 1
        if self.audit_log is not None:
            self.audit_log.append(
                "quarantine_release",
                ts=self.now(),
                manager=int(self.owner),
                target=int(target),
                released_total=float(released_total),
                released_events=int(released_events),
            )
        return True

    def periods_elapsed(self, record: ManagerRecord) -> float:
        """``r`` — gossip periods the target has spent in the system."""
        elapsed = (self.now() - record.joined_at) / self.gossip.gossip_period
        return max(elapsed, 1e-9)

    def normalized_score(self, target: NodeId) -> Optional[float]:
        """Compensated, time-normalised score ``s = b̃ - B/r``.

        Returns None when this manager does not manage ``target``.
        """
        record = self.records.get(target)
        if record is None:
            return None
        r = self.periods_elapsed(record)
        return self.compensation - record.blame_total / r

    # ------------------------------------------------------------------
    # expulsion voting
    # ------------------------------------------------------------------
    def expulsion_candidates(self) -> List[NodeId]:
        """Managed nodes this manager should now vote to expel.

        Marks them as voted so each manager votes at most once.  This
        sweep runs once per gossip period over every managed record, so
        it is one vectorised pass over this manager's pool block (same
        IEEE operations as :meth:`periods_elapsed` /
        :meth:`normalized_score`, elementwise — bit-identical scores),
        guarded by a skip-when-clean fast path:

        With no dirty row since the last sweep, every record mature
        (``r >= min_r``) and ``compensation >= eta``, no new candidate
        can appear — a fixed blame total ``B`` gives a score
        ``compensation - B/r`` that moves monotonically *towards*
        ``compensation`` as ``r`` grows, so a record that was ``>= eta``
        at the last sweep stays there.  Every score-relevant mutation
        (blame arithmetic, quarantine transitions — including the
        un-suspend paths, which can re-expose a below-threshold record)
        marks its row dirty, so the guard is sound for all of them.
        """
        candidates: List[NodeId] = []
        if not self._count:
            return candidates
        now = self.now()
        period = self.gossip.gossip_period
        min_r = self.lifting.min_periods_before_expel
        eta = self.lifting.eta
        compensation = self.compensation
        pool = self.pool
        block = self._block
        dirty = pool.row_dirty[block]
        if not dirty.any():
            if self._all_mature and compensation >= eta:
                return candidates
        else:
            pool.row_dirty[block] = False
        joined = pool.joined_at[block]
        r = (now - joined) / period
        np.maximum(r, 1e-9, out=r)
        score = compensation - pool.blame_total[block] / r
        mature = r >= min_r
        eligible = (
            mature
            & (score < eta)
            & ~(pool.voted_expel[block] | pool.expelled[block] | pool.suspected[block])
        )
        # r only grows between sweeps, so once every record was mature
        # at a sweep it stays mature for all later ones.
        self._all_mature = bool(mature.all())
        hits = np.nonzero(eligible)[0]
        if not hits.size:
            return candidates
        base = self._base
        for i in hits.tolist():
            row = base + i
            target = int(pool.target[row])
            pool.voted_expel[row] = True
            pool.votes_of(row).add(self.owner)
            candidates.append(target)
            if self.audit_log is not None:
                self.audit_log.append(
                    "expel_vote",
                    ts=now,
                    voter=int(self.owner),
                    target=int(target),
                    score=float(score[i]),
                )
        return candidates

    def on_expel_vote(self, voter: NodeId, target: NodeId) -> bool:
        """Register a co-manager's vote; True when the quorum is reached.

        Returns True exactly once (the record is then marked expelled so
        duplicate quorums don't re-trigger).
        """
        record = self.records.get(target)
        if record is None or record.expelled:
            return False
        record.expel_votes.add(voter)
        if len(record.expel_votes) >= self._quorum_votes:
            record.expelled = True
            if self.audit_log is not None:
                self.audit_log.append(
                    "expel_quorum",
                    ts=self.now(),
                    manager=int(self.owner),
                    target=int(target),
                    votes=sorted(int(v) for v in record.expel_votes),
                )
            return True
        return False

    def suspected_records(self) -> int:
        """Records currently holding a quarantine (one numpy reduce)."""
        return int(self.pool.suspected[self._block].sum())

    def pending_quarantined_events(self) -> int:
        """Blame events sitting in quarantine buffers (one reduce)."""
        return int(self.pool.quarantined_events[self._block].sum())

    def mark_expelled(self, target: NodeId) -> None:
        """Note that ``target`` was expelled (stops further voting)."""
        record = self.records.get(target)
        if record is not None:
            record.expelled = True


class ScoreReader:
    """Message-based min-vote score reads (§5.1's protocol flavour).

    The oracle :class:`ScoreBoard` reads manager state directly (used by
    metrics); this component performs the real thing — a ``ScoreQuery``
    fan-out to the target's managers, a timeout, and a **min** vote over
    the replies.  Hosted by a protocol node (same host facade as the
    verification engine).
    """

    def __init__(self, host, timeout: float = 1.0) -> None:
        self.host = host
        self.timeout = timeout
        self._queries: Dict[int, dict] = {}
        self._counter = 0

    def query(self, target: NodeId, callback: Callable[[Optional[float]], None]) -> None:
        """Read ``target``'s score; ``callback(None)`` if nobody replied."""
        from repro.wire import ScoreQuery

        self._counter += 1
        query_id = self._counter
        managers = self.host.assignment.managers_of(target)
        self._queries[query_id] = {"target": target, "values": [], "callback": callback}
        for manager_id in managers:
            if manager_id == self.host.node_id and self.host.manager is not None:
                value = self.host.manager.normalized_score(target)
                if value is not None:
                    self._queries[query_id]["values"].append(value)
            else:
                self.host.send(manager_id, ScoreQuery(target=target))
        self.host.call_later(self.timeout, self._finish, query_id)

    def on_reply(self, src: NodeId, target: NodeId, score: float, known: bool) -> None:
        """Collect a manager's reply into every open query for ``target``."""
        if not known:
            return
        for state in self._queries.values():
            if state["target"] == target:
                state["values"].append(score)

    def _finish(self, query_id: int) -> None:
        state = self._queries.pop(query_id, None)
        if state is None:
            return
        values = state["values"]
        state["callback"](min(values) if values else None)


class ScoreBoard:
    """Min-vote score reads over a collection of managers.

    In the deployment this is a ``ScoreQuery`` fan-out; for metrics we
    read the manager states directly (same values, no extra traffic) —
    the vote function is the paper's **min** either way.

    :meth:`scores` is the hot read of every detection / score-CDF
    experiment (it runs once per snapshot over the whole population), so
    it computes all compensated scores in one vectorised numpy pass over
    a cached ``(target, manager-record)`` layout instead of per-node
    Python loops.  The arithmetic is the same IEEE operations as
    :meth:`ReputationManager.normalized_score`, so the values are
    bit-identical to the scalar path (pinned by
    ``tests/core/test_reputation.py``).
    """

    def __init__(self, managers_by_node: Dict[NodeId, ReputationManager]) -> None:
        self._managers = managers_by_node
        #: (assignment, targets) -> flattened static layout; the record
        #: topology never changes after construction, only blame totals.
        #: Keyed by the assignment object itself (identity hash) — not
        #: id() — so a dead assignment's reused address can never alias
        #: a stale layout.
        self._layouts: Dict[tuple, tuple] = {}

    def score(self, target: NodeId, assignment: ManagerAssignment) -> Optional[float]:
        """Min over the scores returned by ``target``'s managers."""
        values: List[float] = []
        for manager_id in assignment.managers_of(target):
            manager = self._managers.get(manager_id)
            if manager is None:
                continue
            value = manager.normalized_score(target)
            if value is not None:
                values.append(value)
        if not values:
            return None
        return min(values)

    def _layout(self, targets: Tuple[NodeId, ...], assignment: ManagerAssignment):
        """Flatten the (target, manager-record) pairs for ``targets``.

        Returns ``(kept_targets, records, managers, compensation,
        joined_at, periods, starts)`` where ``starts`` are the segment
        offsets of each kept target's records in the flat arrays.
        Targets with no reachable manager record are dropped (mirroring
        the scalar path's "missing ones omitted").
        """
        key = (assignment, targets)
        cached = self._layouts.get(key)
        if cached is not None:
            return cached
        kept: List[NodeId] = []
        records: List[ManagerRecord] = []
        managers: List[ReputationManager] = []
        starts: List[int] = []
        for target in targets:
            begin = len(records)
            for manager_id in assignment.managers_of(target):
                manager = self._managers.get(manager_id)
                if manager is None:
                    continue
                record = manager.records.get(target)
                if record is None:
                    continue
                records.append(record)
                managers.append(manager)
            if len(records) > begin:
                kept.append(target)
                starts.append(begin)
        compensation = np.array([m.compensation for m in managers], dtype=float)
        joined_at = np.array([r.joined_at for r in records], dtype=float)
        periods = np.array([m.gossip.gossip_period for m in managers], dtype=float)
        # When every record row lives in one shared ReputationPool (the
        # cluster wiring), the blame snapshot is a single fancy-index
        # gather over its columns instead of a per-record iteration.
        pool = records[0].pool if records else None
        rows: Optional[np.ndarray] = None
        if pool is not None and all(r.pool is pool for r in records):
            rows = np.array([r.row for r in records], dtype=np.intp)
        layout = (
            tuple(kept),
            tuple(records),
            tuple(managers),
            compensation,
            joined_at,
            periods,
            np.array(starts, dtype=np.intp),
            pool if rows is not None else None,
            rows,
        )
        self._layouts[key] = layout
        return layout

    def ingest_blames(
        self,
        assignment: ManagerAssignment,
        targets,
        values,
    ) -> int:
        """Batch-apply arrays of ``(target, value)`` blames.

        Routes every blame to all of its target's reachable managers —
        the offline/replay equivalent of delivering one ``Blame``
        message per (blame, manager) pair (used by the Monte-Carlo
        replay flow, ``examples/blame_replay.py``), collapsed into a
        single pass:
        per-target totals and event counts are aggregated first (one
        numpy reduction), then each manager record receives one
        ``blame_total`` addition.  Score reads after a full batch match
        the per-message path up to float summation order (documented
        ulp-level reassociation; the per-message path adds values one at
        a time).  Returns the number of blame events routed to at least
        one manager record.
        """
        targets = np.asarray(targets)
        values = np.asarray(values, dtype=float)
        require(targets.shape == values.shape, "targets/values length mismatch")
        if targets.size == 0:
            return 0
        unique, inverse = np.unique(targets, return_inverse=True)
        totals = np.zeros(unique.size)
        np.add.at(totals, inverse, values)
        counts = np.bincount(inverse, minlength=unique.size)
        routed = 0
        managers = self._managers
        for target, total, events in zip(unique, totals, counts):
            target = int(target)
            hit = False
            for manager_id in assignment.managers_of(target):
                manager = managers.get(manager_id)
                if manager is None:
                    continue
                record = manager.records.get(target)
                if record is None:
                    continue
                record.blame_total += total
                record.blame_events += int(events)
                hit = True
            if hit:
                routed += int(events)
        return routed

    def scores(
        self, targets: Iterable[NodeId], assignment: ManagerAssignment
    ) -> Dict[NodeId, float]:
        """Min-vote scores for many targets (missing ones omitted)."""
        kept, records, managers, compensation, joined_at, periods, starts, pool, rows = (
            self._layout(tuple(targets), assignment)
        )
        if not kept:
            return {}
        # All managers share the experiment clock; evaluate it once so
        # the snapshot is taken at a single instant (as the scalar loop
        # does within one event-loop step).
        now = managers[0].now()
        if rows is not None:
            blame = pool.blame_total[rows]
        else:
            blame = np.fromiter(
                (record.blame_total for record in records),
                dtype=float,
                count=len(records),
            )
        elapsed = np.maximum((now - joined_at) / periods, 1e-9)
        values = compensation - blame / elapsed
        minima = np.minimum.reduceat(values, starts)
        return {target: float(value) for target, value in zip(kept, minima)}
