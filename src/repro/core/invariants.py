"""Runtime assertion of LiFTinG's safety properties.

The paper argues safety statistically (wrongful blames are compensated,
expulsion needs a manager quorum plus a grace period); this monitor
turns the argument into *checked invariants* so a simulation or chaos
run fails loudly — in metrics, not stack traces — the moment the
implementation drifts from it:

``wrongful_expulsion``
    No honest node is expelled while the honest quorum holds: whenever
    the adversarial managers of a target are too few to form an
    expulsion quorum on their own, an expulsion of an honest target
    means honest managers voted it out — the exact failure the
    compensation term exists to prevent.
``score_monotonicity``
    A record's blame event count never decreases, and its blame total
    only moves when an event is recorded — scores change through
    blames, never through silent mutation.
``quarantine_conservation``
    Per manager, ``started - discarded - released`` equals the records
    currently suspended, and no quarantine buffer survives outside a
    suspension — held blames are eventually folded in or dropped,
    never duplicated or leaked.
``expulsion_permanence``
    Expulsion is forever: once a node is seen expelled it never comes
    back.
``audit_chain``
    Every attached tamper-evident audit log still verifies end to end.

The monitor is strictly read-only and draws no randomness, so attaching
it cannot perturb a deterministic run — un-monitored goldens stay
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

NodeId = int


@dataclass(frozen=True)
class Violation:
    """One observed breach of a safety invariant."""

    invariant: str
    detail: str
    at: float


class InvariantMonitor:
    """Sweeps a deployment's reputation plane for safety violations.

    Construct once over the live manager objects, then call
    :meth:`check` periodically (and once at the end of the run); each
    call returns the violations *new* to that sweep and accumulates
    them in :attr:`violations`.
    """

    def __init__(
        self,
        *,
        managers: Dict[NodeId, object],
        honest_ids: Iterable[NodeId],
        adversary_ids: Iterable[NodeId] = (),
        is_expelled: Callable[[NodeId], bool],
        node_ids: Iterable[NodeId],
        assignment=None,
        expel_quorum: float = 0.5,
        audit_logs: Iterable[object] = (),
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.managers = dict(managers)
        self.honest_ids = frozenset(honest_ids)
        self.adversary_ids = frozenset(adversary_ids)
        self.is_expelled = is_expelled
        self.node_ids = tuple(node_ids)
        self.assignment = assignment
        self.expel_quorum = expel_quorum
        self.audit_logs = tuple(audit_logs)
        self.clock = clock

        self.violations: List[Violation] = []
        self.checks = 0
        #: per (manager, target): last seen (blame_events, blame_total).
        self._last_blame: Dict[Tuple[NodeId, NodeId], Tuple[int, float]] = {}
        self._seen_expelled: Set[NodeId] = set()
        self._flagged: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    def _emit(self, invariant: str, detail: str, out: List[Violation]) -> None:
        key = (invariant, detail)
        if key in self._flagged:
            return  # report each distinct breach once, not once per sweep
        self._flagged.add(key)
        violation = Violation(invariant, detail, self.clock())
        self.violations.append(violation)
        out.append(violation)

    def _honest_quorum_holds(self, target: NodeId) -> bool:
        """True when adversarial managers alone cannot expel ``target``."""
        if self.assignment is None:
            return True  # conservatively: any honest expulsion is wrongful
        managers = self.assignment.managers_of(target)
        if not managers:
            return True
        adversarial = sum(1 for m in managers if m in self.adversary_ids)
        return adversarial / len(managers) < self.expel_quorum

    # ------------------------------------------------------------------
    def check(self) -> List[Violation]:
        """One sweep; returns the violations first observed now."""
        self.checks += 1
        fresh: List[Violation] = []

        # wrongful expulsion + expulsion permanence -------------------
        for node_id in self.node_ids:
            expelled = self.is_expelled(node_id)
            if expelled and node_id not in self._seen_expelled:
                self._seen_expelled.add(node_id)
                if node_id in self.honest_ids and self._honest_quorum_holds(node_id):
                    self._emit(
                        "wrongful_expulsion",
                        f"honest node {node_id} expelled under an honest quorum",
                        fresh,
                    )
            elif not expelled and node_id in self._seen_expelled:
                self._emit(
                    "expulsion_permanence",
                    f"node {node_id} expelled earlier is no longer expelled",
                    fresh,
                )

        # score monotonicity + quarantine conservation ----------------
        for owner, manager in self.managers.items():
            for target, record in manager.records.items():
                events = record.blame_events
                total = record.blame_total
                key = (owner, target)
                last = self._last_blame.get(key)
                if last is not None:
                    last_events, last_total = last
                    if events < last_events:
                        self._emit(
                            "score_monotonicity",
                            f"manager {owner}: blame_events for {target} "
                            f"fell {last_events} -> {events}",
                            fresh,
                        )
                    elif events == last_events and total != last_total:
                        self._emit(
                            "score_monotonicity",
                            f"manager {owner}: blame_total for {target} moved "
                            f"{last_total!r} -> {total!r} without an event",
                            fresh,
                        )
                self._last_blame[key] = (events, total)
                if not record.suspected and record.quarantined_events:
                    self._emit(
                        "quarantine_conservation",
                        f"manager {owner}: {record.quarantined_events} quarantined "
                        f"events held for {target} outside a suspension",
                        fresh,
                    )
            active = (
                manager.quarantines_started
                - manager.quarantines_discarded
                - manager.quarantines_released
            )
            if active != manager.suspected_records():
                self._emit(
                    "quarantine_conservation",
                    f"manager {owner}: {active} open quarantines but "
                    f"{manager.suspected_records()} suspended records",
                    fresh,
                )

        # audit-chain validity ----------------------------------------
        for log in self.audit_logs:
            report = log.verify_all()
            if not report.ok:
                self._emit(
                    "audit_chain",
                    f"audit log failed verification: {report}",
                    fresh,
                )

        return fresh

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Metrics-ready aggregate: sweep count and violation tallies."""
        by_invariant: Dict[str, int] = {}
        for violation in self.violations:
            by_invariant[violation.invariant] = (
                by_invariant.get(violation.invariant, 0) + 1
            )
        return {
            "checks": self.checks,
            "violations": len(self.violations),
            "by_invariant": by_invariant,
        }


def monitor_for_cluster(cluster, *, include_audit_logs: bool = True) -> InvariantMonitor:
    """An :class:`InvariantMonitor` wired over a ``SimCluster``.

    Reads the cluster's role sets, expulsion controller, manager map and
    (optionally) any attached audit logs; the result is read-only over
    all of them.
    """
    managers = {
        nid: node.manager
        for nid, node in cluster.nodes.items()
        if node.manager is not None
    }
    audit_logs: List[object] = []
    if include_audit_logs:
        for manager in managers.values():
            if manager.audit_log is not None:
                audit_logs.append(manager.audit_log)
    return InvariantMonitor(
        managers=managers,
        honest_ids=cluster.honest_ids,
        adversary_ids=cluster.freerider_ids,
        is_expelled=cluster.controller.is_expelled,
        node_ids=cluster.node_ids,
        assignment=cluster.assignment,
        expel_quorum=cluster.config.lifting.expel_quorum,
        audit_logs=audit_logs,
        clock=lambda: cluster.sim.now,
    )
