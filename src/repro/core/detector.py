"""Expulsion enforcement.

Expulsion in the paper is carried out "using the very same managers"
(§5.1): a quorum of a node's managers observing its compensated score
below ``η`` (or an auditor whose entropy checks failed) triggers it.
This module is the enforcement end shared by the simulator and the
runtime: it disconnects the node from the network fabric and removes it
from the peer samplers, and records when/why for the metrics layer.

The controller can run in *observation mode* (``enabled=False``): every
would-be expulsion is recorded but not enforced.  Figure 14 needs this
— the paper reports full score CDFs including freeriders well past the
threshold, then applies the threshold analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.membership.base import PeerSampler
from repro.sim.network import Network

NodeId = int


@dataclass(frozen=True)
class ExpulsionRecord:
    """One expulsion (or would-be expulsion in observation mode)."""

    node: NodeId
    time: float
    reason: str
    enforced: bool


class ExpulsionController:
    """Cluster-side expulsion: disconnect + deregister + record."""

    def __init__(
        self,
        network: Network,
        samplers: Iterable[PeerSampler] = (),
        *,
        enabled: bool = True,
        on_expel: Optional[Callable[[ExpulsionRecord], None]] = None,
    ) -> None:
        self.network = network
        self.samplers = list(samplers)
        self.enabled = enabled
        self.on_expel = on_expel
        self.records: Dict[NodeId, ExpulsionRecord] = {}

    def expel(self, target: NodeId, reason: str) -> bool:
        """Expel ``target``; returns False if already expelled."""
        if target in self.records:
            return False
        record = ExpulsionRecord(
            node=target,
            time=self.network.sim.now,
            reason=reason,
            enforced=self.enabled,
        )
        self.records[target] = record
        if self.enabled:
            self.network.disconnect(target)
            for sampler in self.samplers:
                # Record the expulsion in the lifecycle ledger (rejoin
                # refused permanently), not just a plain removal.
                sampler.mark_expelled(target)
        if self.on_expel is not None:
            self.on_expel(record)
        return True

    def is_expelled(self, node: NodeId) -> bool:
        """Whether ``node`` has been (or would have been) expelled."""
        record = self.records.get(node)
        return record is not None and record.enforced

    def expelled_nodes(self) -> List[NodeId]:
        """All nodes with an expulsion record (enforced or observed)."""
        return list(self.records.keys())

    def records_by_reason(self, reason_prefix: str) -> List[ExpulsionRecord]:
        """Expulsion records whose reason starts with ``reason_prefix``."""
        return [r for r in self.records.values() if r.reason.startswith(reason_prefix)]
