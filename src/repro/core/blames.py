"""Blame values — the code form of the paper's Table 1.

Blame values are calibrated so that different verification procedures
produce *comparable* quantities (§5): every value is expressed in units
of "invalid pushes", which is why they can be summed into one score.

=====================================  =============================
attack                                  blame value
=====================================  =============================
fanout decrease (``f̂ < f``)             ``f - f̂`` from each verifier
partial propose                         1 per invalid proposal per witness
invalid / missing ack                   ``f`` from the verifier
partial serve (``|S| < |R|``)           ``f·(|R|-|S|)/|R|`` from the receiver
unacknowledged history entry            1 per proposal, from the auditor
=====================================  =============================
"""

from __future__ import annotations

from repro.util.validation import require

REASON_FANOUT_DECREASE = "fanout-decrease"
REASON_INVALID_PROPOSAL = "invalid-proposal"
REASON_NO_ACK = "no-ack"
REASON_PARTIAL_SERVE = "partial-serve"
REASON_WITNESS_CONTRADICTION = "witness-contradiction"
REASON_UNACKNOWLEDGED_HISTORY = "unacknowledged-history"
REASON_AUDIT_COMPENSATION = "audit-compensation"


def fanout_decrease_blame(fanout: int, observed_fanout: int) -> float:
    """``f - f̂`` when the ack lists fewer than ``f`` partners.

    >>> fanout_decrease_blame(7, 6)
    1.0
    """
    require(fanout >= 1, "fanout must be >= 1, got %d", fanout)
    require(observed_fanout >= 0, "observed fanout must be >= 0")
    return float(max(0, fanout - observed_fanout))


def no_ack_blame(fanout: int) -> float:
    """``f`` — the ack never arrived, or omitted served chunks.

    A missing acknowledgment is equivalent to "none of my chunks were
    proposed", the worst case, hence the full ``f``.
    """
    require(fanout >= 1, "fanout must be >= 1, got %d", fanout)
    return float(fanout)


def partial_serve_blame(fanout: int, requested: int, served: int) -> float:
    """``f · (|R| - |S|) / |R|`` applied by the requester (§5.2).

    A fully ignored request (``|S| = 0``) costs exactly ``f`` — the
    same as not proposing at all, which keeps blames consistent.

    >>> partial_serve_blame(7, 4, 0)
    7.0
    >>> partial_serve_blame(7, 4, 3)
    1.75
    """
    require(fanout >= 1, "fanout must be >= 1, got %d", fanout)
    require(requested >= 1, "requested must be >= 1, got %d", requested)
    require(0 <= served <= requested, "served must be in [0, requested]")
    return fanout * (requested - served) / requested


def witness_contradiction_blame() -> float:
    """1 per witness whose testimony contradicts the ack (or is missing)."""
    return 1.0


def unacknowledged_history_blame(count: int) -> float:
    """1 per history proposal the alleged receiver does not acknowledge."""
    require(count >= 0, "count must be >= 0, got %d", count)
    return float(count)
