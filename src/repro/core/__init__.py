"""LiFTinG — the paper's primary contribution (§5).

Components:

* :mod:`repro.core.blames` — the blame values of Table 1.
* :mod:`repro.core.reputation` — the Alliatrust-like decentralised
  score store: ``M`` managers per node, blame fan-out, min-vote reads,
  loss compensation and quorum-based expulsion (§5.1, §6.2).
* :mod:`repro.core.verification` — direct verification and direct
  cross-checking (ack / confirm / confirm-response, §5.2).
* :mod:`repro.core.audit` — local history auditing: entropy checks on
  fanout and fanin plus the a-posteriori cross-check (§5.3).
* :mod:`repro.core.detector` — the cluster-side expulsion controller.
* :mod:`repro.core.auditlog` — the tamper-evident HMAC-chained record
  of blame votes and expulsion decisions (deployment hardening).
"""

from repro.core.audit import AuditResult, Auditor, AuditScheduler
from repro.core.auditlog import AuditLog, AuditRecord, ChainReport, RollbackReport
from repro.core.blames import (
    REASON_AUDIT_COMPENSATION,
    REASON_FANOUT_DECREASE,
    REASON_INVALID_PROPOSAL,
    REASON_NO_ACK,
    REASON_PARTIAL_SERVE,
    REASON_UNACKNOWLEDGED_HISTORY,
    REASON_WITNESS_CONTRADICTION,
    fanout_decrease_blame,
    no_ack_blame,
    partial_serve_blame,
    witness_contradiction_blame,
)
from repro.core.detector import ExpulsionController, ExpulsionRecord
from repro.core.reputation import (
    ManagerAssignment,
    ManagerRecord,
    ReputationManager,
    ReputationPool,
    ScoreBoard,
)
from repro.core.soa import DenseIdRegistry, ProtocolStatePool, SlotRows
from repro.core.verification import VerificationEngine

__all__ = [
    "AuditLog",
    "AuditRecord",
    "AuditResult",
    "ChainReport",
    "RollbackReport",
    "AuditScheduler",
    "Auditor",
    "ExpulsionController",
    "ExpulsionRecord",
    "DenseIdRegistry",
    "ManagerAssignment",
    "ManagerRecord",
    "REASON_AUDIT_COMPENSATION",
    "REASON_FANOUT_DECREASE",
    "REASON_INVALID_PROPOSAL",
    "REASON_NO_ACK",
    "REASON_PARTIAL_SERVE",
    "REASON_UNACKNOWLEDGED_HISTORY",
    "REASON_WITNESS_CONTRADICTION",
    "ReputationManager",
    "ReputationPool",
    "ProtocolStatePool",
    "ScoreBoard",
    "SlotRows",
    "VerificationEngine",
    "fanout_decrease_blame",
    "no_ack_blame",
    "partial_serve_blame",
    "witness_contradiction_blame",
]
