"""Struct-of-arrays substrate for hot per-node protocol state.

LiFTinG's headline property is constant per-node work at large N, but a
simulation that stores every node's transient protocol state in per-node
Python dicts pays a large *constant* for that work and an O(objects)
memory bill that caps the reachable N.  This module provides the two
pieces that let the hot state live in pooled numpy columns instead:

``DenseIdRegistry``
    A cluster-owned mapping NodeId <-> contiguous slot index.  Slots are
    stable across graceful leave/rejoin; a node readmitted under a bumped
    incarnation is *remapped* — its old slot is zeroed in every attached
    pool and recycled through a free-list, so no transient state can leak
    across incarnations.

``SlotRows`` / ``ProtocolStatePool``
    Pooled per-slot row storage: each logical per-node collection (fresh
    chunk map, pending-chunk set, blame outbox) becomes a ``[capacity,
    width]`` column block plus a per-slot row count.  Appends are O(1)
    numpy scalar stores; per-period consumption is a single ``tolist()``
    over the live rows, which preserves the append order that the dict
    versions exposed as insertion order (byte-identical RNG behaviour
    downstream).

The pools deliberately hold *transient* state only.  Durable reputation
records live in :class:`repro.core.reputation.ReputationPool`, which is
keyed per (manager, target) record rather than per node and survives
readmission — the paper's scores are absolute, not per-incarnation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

NodeId = int

__all__ = ["DenseIdRegistry", "SlotRows", "ProtocolStatePool"]


class DenseIdRegistry:
    """NodeId <-> dense contiguous slot index, with remap-on-readmit.

    ``register`` assigns the next free slot (recycling retired slots
    LIFO).  ``remap`` retires a node's current slot — clearing it in all
    attached pools so recycled columns start zeroed — and assigns a fresh
    one.  Slots of nodes that merely leave gracefully are *not* retired;
    the registry is stable across leave/rejoin and only churns a slot
    when an incarnation bump demands a clean sheet.
    """

    __slots__ = ("_slot_of", "_node_at", "_free", "_capacity", "_pools")

    def __init__(self) -> None:
        self._slot_of: Dict[NodeId, int] = {}
        self._node_at: List[Optional[NodeId]] = []
        self._free: List[int] = []
        self._capacity = 0
        self._pools: List[object] = []

    # -- pool attachment -------------------------------------------------
    def attach(self, pool) -> None:
        """Attach a pool that must track this registry's capacity.

        The pool must expose ``ensure_capacity(capacity)`` and
        ``clear_slot(slot)``.
        """
        pool.ensure_capacity(self._capacity)
        self._pools.append(pool)

    # -- queries ---------------------------------------------------------
    @property
    def capacity(self) -> int:
        """High-water slot count (including retired-but-free slots)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._slot_of

    def slot_of(self, node_id: NodeId) -> int:
        return self._slot_of[node_id]

    def node_at(self, slot: int) -> Optional[NodeId]:
        return self._node_at[slot]

    # -- mutation --------------------------------------------------------
    def register(self, node_id: NodeId) -> int:
        if node_id in self._slot_of:
            raise ValueError(f"node {node_id!r} already registered")
        if self._free:
            slot = self._free.pop()
            self._node_at[slot] = node_id
        else:
            slot = self._capacity
            self._capacity += 1
            self._node_at.append(node_id)
            for pool in self._pools:
                pool.ensure_capacity(self._capacity)
        self._slot_of[node_id] = slot
        return slot

    def remap(self, node_id: NodeId) -> int:
        """Retire ``node_id``'s slot (zeroing it in attached pools) and
        assign a fresh slot for the new incarnation."""
        old = self._slot_of.pop(node_id)
        self._node_at[old] = None
        for pool in self._pools:
            pool.clear_slot(old)
        self._free.append(old)
        return self.register(node_id)


class SlotRows:
    """Per-slot variable-length rows over one or two pooled columns.

    Layout: ``col0``/``col1`` are ``[capacity, width]`` arrays and
    ``counts[slot]`` is the number of live rows for that slot.  Width
    doubles globally when any slot overflows; capacity follows the
    registry.  Rows keep append order — consumers that previously walked
    a dict in insertion order walk ``tolist()`` of the live prefix and
    see the identical sequence.

    ``counts`` is deliberately a plain Python list: these methods run
    once per protocol event, and a list index is a zero-frame plain int
    where a numpy scalar would cost an ``int()`` conversion per touch.
    Membership scans likewise go through ``tolist()`` + list ops rather
    than ``(row == v).any()`` — for the handful of live rows a slot
    holds, the C-level list scan is faster and costs one frame where the
    ufunc-reduce path costs three.
    """

    __slots__ = ("col0", "col1", "counts", "_width", "_capacity", "_dtype0", "_dtype1")

    def __init__(self, dtype0, dtype1=None, capacity: int = 1, width: int = 16) -> None:
        self._dtype0 = dtype0
        self._dtype1 = dtype1
        self._capacity = max(1, capacity)
        self._width = max(1, width)
        self.col0 = np.zeros((self._capacity, self._width), dtype=dtype0)
        self.col1 = (
            np.zeros((self._capacity, self._width), dtype=dtype1)
            if dtype1 is not None
            else None
        )
        self.counts: List[int] = [0] * self._capacity

    # -- growth ----------------------------------------------------------
    def ensure_capacity(self, capacity: int) -> None:
        if capacity <= self._capacity:
            return
        new_cap = self._capacity
        while new_cap < capacity:
            new_cap *= 2
        col0 = np.zeros((new_cap, self._width), dtype=self._dtype0)
        col0[: self._capacity] = self.col0
        self.col0 = col0
        if self.col1 is not None:
            col1 = np.zeros((new_cap, self._width), dtype=self._dtype1)
            col1[: self._capacity] = self.col1
            self.col1 = col1
        self.counts.extend([0] * (new_cap - self._capacity))
        self._capacity = new_cap

    def _grow_width(self) -> None:
        width = self._width * 2
        col0 = np.zeros((self._capacity, width), dtype=self._dtype0)
        col0[:, : self._width] = self.col0
        self.col0 = col0
        if self.col1 is not None:
            col1 = np.zeros((self._capacity, width), dtype=self._dtype1)
            col1[:, : self._width] = self.col1
            self.col1 = col1
        self._width = width

    # -- per-slot operations --------------------------------------------
    def clear_slot(self, slot: int) -> None:
        n = self.counts[slot]
        if n:
            self.col0[slot, :n] = 0
            if self.col1 is not None:
                self.col1[slot, :n] = 0
            self.counts[slot] = 0

    def count(self, slot: int) -> int:
        return self.counts[slot]

    def append(self, slot: int, v0, v1=None) -> None:
        n = self.counts[slot]
        if n == self._width:
            self._grow_width()
        self.col0[slot, n] = v0
        if self.col1 is not None:
            self.col1[slot, n] = v1
        self.counts[slot] = n + 1

    def add_unique(self, slot: int, v0) -> bool:
        """Append ``v0`` unless already present; returns True if added."""
        n = self.counts[slot]
        if n and v0 in self.col0[slot, :n].tolist():
            return False
        if n == self._width:
            self._grow_width()
        self.col0[slot, n] = v0
        self.counts[slot] = n + 1
        return True

    def contains(self, slot: int, v0) -> bool:
        n = self.counts[slot]
        return bool(n) and v0 in self.col0[slot, :n].tolist()

    def discard(self, slot: int, v0) -> bool:
        """Remove one occurrence of ``v0``; returns True if removed."""
        n = self.counts[slot]
        if not n:
            return False
        row = self.col0[slot]
        try:
            i = row[:n].tolist().index(v0)
        except ValueError:
            return False
        last = n - 1
        if i != last:
            row[i] = row[last]
            if self.col1 is not None:
                c1 = self.col1[slot]
                c1[i] = c1[last]
        row[last] = 0
        if self.col1 is not None:
            self.col1[slot, last] = 0
        self.counts[slot] = last
        return True

    def take(self, slot: int):
        """Return the live rows as Python lists and clear the slot.

        Returns ``values0`` (and ``values1`` when two columns exist) in
        append order — the dict-insertion order the pooled state models.
        """
        n = self.counts[slot]
        if not n:
            return ([], []) if self.col1 is not None else []
        values0 = self.col0[slot, :n].tolist()
        self.col0[slot, :n] = 0
        if self.col1 is not None:
            values1 = self.col1[slot, :n].tolist()
            self.col1[slot, :n] = 0
            self.counts[slot] = 0
            return values0, values1
        self.counts[slot] = 0
        return values0

    def values(self, slot: int):
        """Live first-column rows as a Python list (append order)."""
        n = self.counts[slot]
        return self.col0[slot, :n].tolist() if n else []


class ProtocolStatePool:
    """Cluster-owned pooled backing for ``GossipNode`` transient state.

    One instance serves every node in a cluster; standalone nodes create
    a private capacity-1 pool.  All three blocks are transient and are
    zeroed wholesale on ``clear_slot`` (graceful state reset or
    remap-on-readmit).
    """

    __slots__ = ("fresh", "pending", "blame")

    def __init__(self, capacity: int = 1) -> None:
        # fresh chunk map: (chunk_id, origin) per row
        self.fresh = SlotRows(np.int64, np.int64, capacity=capacity, width=16)
        # pending-chunk set: chunk_id per row
        self.pending = SlotRows(np.int64, capacity=capacity, width=16)
        # blame outbox: (target, value) per row, aggregated at flush time
        self.blame = SlotRows(np.int64, np.float64, capacity=capacity, width=16)

    def ensure_capacity(self, capacity: int) -> None:
        self.fresh.ensure_capacity(capacity)
        self.pending.ensure_capacity(capacity)
        self.blame.ensure_capacity(capacity)

    def clear_slot(self, slot: int) -> None:
        self.fresh.clear_slot(slot)
        self.pending.clear_slot(slot)
        self.blame.clear_slot(slot)
