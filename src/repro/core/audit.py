"""Local history auditing (§5.3) — entropy checks and the a-posteriori
cross-check.

An audit of ``target`` proceeds in two message phases, all over TCP
(reliable; the stakes — expulsion — are too high for a lossy channel):

1. ``AuditRequest`` → ``AuditResponse``: the target hands over its
   claimed propose history of the last ``n_h`` periods.  The auditor
   computes the fanout multiset ``F_h`` and its Shannon entropy, and
   counts propose events (a node that silently stretched its gossip
   period has too few).
2. ``HistoryPollRequest`` → ``HistoryPollResponse`` to every alleged
   partner: *(a)* each partner acknowledges (or denies) the proposal —
   a denial is blame 1, so forging honest names into the history does
   not pay (§5.3); *(b)* each partner reports which nodes asked it to
   confirm the target's proposals — the union is the fanin multiset
   ``F'_h``, which for an honest node matches its servers and for a
   man-in-the-middle colluder is concentrated on the coalition.

Verdict: the target is expelled if either entropy falls below ``γ``.
Wrongful poll blames caused by lost propose messages are compensated by
Eq. (4)'s expectation (``(1-p_r)·|entries|``) as a credit.

Entropy thresholds are calibrated for a full window of ``n_h·f``
entries; when the audited history is smaller (young node, quiet stream)
the threshold is lowered by the max-entropy shortfall
``log2(n_h f) - log2(|F_h|)`` so that short histories are not
auto-guilty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.blames import (
    REASON_AUDIT_COMPENSATION,
    REASON_UNACKNOWLEDGED_HISTORY,
)
from repro.wire import (
    AuditRequest,
    AuditResponse,
    HistoryPollRequest,
    HistoryPollResponse,
)
from repro.util.multiset import Multiset

NodeId = int


@dataclass
class AuditResult:
    """Outcome of one local-history audit."""

    target: NodeId
    responded: bool
    proposal_count: int = 0
    fanout_entropy: float = 0.0
    fanout_size: int = 0
    fanin_entropy: float = 0.0
    fanin_size: int = 0
    unacknowledged: int = 0
    polled_entries: int = 0
    #: fraction of distinct polled witnesses that reported at least one
    #: confirm sender about the target.  An honest node's partners all
    #: see confirm traffic about it (its servers cross-check with them);
    #: a man-in-the-middle freerider redirects that traffic to its
    #: coalition, so the honest partners in its claimed history report
    #: nothing — F'_h "asked the nodes in F_h" (§5.3) collapses.
    confirm_coverage: float = 0.0
    passed_fanout: bool = False
    passed_fanin: bool = False
    passed_period_count: bool = False
    passed_coverage: bool = False
    completed_at: float = 0.0

    @property
    def passed(self) -> bool:
        """Overall verdict — failing any check means expulsion (§5.3)."""
        return (
            self.responded
            and self.passed_fanout
            and self.passed_fanin
            and self.passed_period_count
            and self.passed_coverage
        )


@dataclass
class _AuditState:
    target: NodeId
    started_at: float
    on_complete: Optional[Callable[[AuditResult], None]]
    requested_periods: int
    proposals: Tuple = ()
    expected_polls: int = 0
    received_polls: int = 0
    unacknowledged: int = 0
    fanin: Multiset = field(default_factory=Multiset)
    polled_witnesses: Set[NodeId] = field(default_factory=set)
    witnesses_with_traffic: Set[NodeId] = field(default_factory=set)
    response_seen: bool = False
    finished: bool = False


class Auditor:
    """The auditor role: drives audits and judges their results.

    Hosted by a protocol node (same host interface as the verification
    engine, plus ``on_audit_verdict(target, result)`` which the cluster
    wires to the expulsion controller).
    """

    #: a node with fewer propose events than this fraction of the
    #: requested window fails the gossip-period check.
    PERIOD_COUNT_TOLERANCE = 0.5
    #: at p_dcc = 1 at least this fraction of polled witnesses must have
    #: seen confirm traffic about the target; scaled by p_dcc (a lower
    #: verification intensity legitimately leaves more witnesses blind),
    #: and disabled at p_dcc = 0.
    COVERAGE_THRESHOLD = 0.5
    #: extra wait for poll responses after the audit response arrives.
    POLL_TIMEOUT = 5.0
    #: wait for the audit response itself.
    RESPONSE_TIMEOUT = 5.0

    def __init__(self, host) -> None:
        self.host = host
        # Fan-out batching entry point when the host offers one (the
        # simulator-backed GossipNode does; test stubs may not).
        self._host_send_many = getattr(host, "send_many", None)
        self._active: Dict[NodeId, _AuditState] = {}
        self.results: List[AuditResult] = []

    # ------------------------------------------------------------------
    # driving an audit
    # ------------------------------------------------------------------
    def start(
        self,
        target: NodeId,
        on_complete: Optional[Callable[[AuditResult], None]] = None,
    ) -> bool:
        """Begin auditing ``target``; False if one is already running."""
        if target in self._active:
            return False
        periods = self.host.lifting.history_periods
        self._active[target] = _AuditState(
            target=target,
            started_at=self.host.clock(),
            on_complete=on_complete,
            requested_periods=periods,
        )
        self.host.send(target, AuditRequest(periods=periods), reliable=True)
        self.host.call_later(self.RESPONSE_TIMEOUT, self._response_deadline, target)
        return True

    def _response_deadline(self, target: NodeId) -> None:
        state = self._active.get(target)
        if state is not None and not state.response_seen:
            # Refusing the audit is itself damning: fail every check.
            self._finalize(state)

    def on_audit_response(self, src: NodeId, response: AuditResponse) -> None:
        """The target's (possibly forged) history arrived."""
        state = self._active.get(src)
        if state is None or state.response_seen:
            return
        state.response_seen = True
        state.proposals = response.proposals
        polls = 0
        send_many = self._host_send_many
        for period, partners, chunk_ids in response.proposals:
            # One poll message per history entry, fanned to all alleged
            # partners in one batched send (the per-destination draw
            # order and accounting match a per-partner send loop).
            poll = HistoryPollRequest(target=src, period=period, chunk_ids=chunk_ids)
            if send_many is not None:
                send_many(partners, poll, reliable=True)
            else:
                for partner in partners:
                    self.host.send(partner, poll, reliable=True)
            polls += len(partners)
        state.expected_polls = polls
        if polls == 0:
            self._finalize(state)
        else:
            self.host.call_later(self.POLL_TIMEOUT, self._poll_deadline, src)

    def on_poll_response(self, src: NodeId, response: HistoryPollResponse) -> None:
        """An alleged partner's testimony arrived."""
        state = self._active.get(response.target)
        if state is None or state.finished:
            return
        state.received_polls += 1
        if not response.acknowledged:
            state.unacknowledged += 1
        if src not in state.polled_witnesses:
            # Each witness reports its whole confirm-sender log about the
            # target once; count it a single time even when the witness
            # appears in several history periods.
            state.polled_witnesses.add(src)
            if response.confirm_senders:
                state.witnesses_with_traffic.add(src)
            for sender in response.confirm_senders:
                state.fanin.add(sender)
        if state.received_polls >= state.expected_polls:
            self._finalize(state)

    def _poll_deadline(self, target: NodeId) -> None:
        state = self._active.get(target)
        if state is not None and not state.finished:
            self._finalize(state)

    # ------------------------------------------------------------------
    # judging
    # ------------------------------------------------------------------
    def _finalize(self, state: _AuditState) -> None:
        if state.finished:
            return
        state.finished = True
        self._active.pop(state.target, None)
        result = self._judge(state)
        self.results.append(result)
        self._apply_blames(state, result)
        self.host.on_audit_verdict(state.target, result)
        if state.on_complete is not None:
            state.on_complete(result)

    def _judge(self, state: _AuditState) -> AuditResult:
        lifting = self.host.lifting
        gossip = self.host.gossip
        full_window = lifting.history_periods * gossip.fanout

        # Array-backed counting: one bincount pass over the claimed
        # partner ids instead of a Python-level add per history entry;
        # the multiset's maintained accumulator then gives both
        # entropies in O(1) (no per-audit re-summation).
        fanout: Multiset = Multiset()
        claimed = [p for _period, partners, _chunk_ids in state.proposals for p in partners]
        if claimed:
            fanout.add_ids(claimed)

        result = AuditResult(
            target=state.target,
            responded=state.response_seen,
            completed_at=self.host.clock(),
        )
        if not state.response_seen:
            return result

        result.proposal_count = len(state.proposals)
        result.passed_period_count = (
            result.proposal_count
            >= self.PERIOD_COUNT_TOLERANCE * state.requested_periods
        )

        result.fanout_size = len(fanout)
        result.fanout_entropy = fanout.shannon_entropy()
        result.passed_fanout = result.fanout_size > 0 and (
            result.fanout_entropy
            >= self._effective_threshold(lifting.gamma, result.fanout_size, full_window)
        )

        result.fanin_size = len(state.fanin)
        result.fanin_entropy = state.fanin.shannon_entropy()
        # The aggregated witness logs repeat each server once per witness,
        # which rescales multiplicities uniformly and leaves the entropy
        # of the distribution intact.  The sample-size proxy for the
        # threshold shortfall must NOT come from the testimony content
        # (an attacker controls that); the number of polled history
        # entries is the honest measure of how much interaction the
        # window covers — for an honest node F'_h has about that many
        # underlying servers (§5.3: "is n_h f on average").
        result.passed_fanin = result.fanin_size > 0 and (
            result.fanin_entropy
            >= self._effective_threshold(lifting.gamma, max(1, state.expected_polls), full_window)
        )

        result.unacknowledged = state.unacknowledged
        result.polled_entries = state.expected_polls

        witnesses = max(1, len(state.polled_witnesses))
        result.confirm_coverage = len(state.witnesses_with_traffic) / witnesses
        required = self.COVERAGE_THRESHOLD * lifting.p_dcc
        result.passed_coverage = (
            state.polled_witnesses == set() or result.confirm_coverage >= required
        )
        return result

    @staticmethod
    def _effective_threshold(gamma: float, observed: int, full_window: int) -> float:
        """Lower γ by the max-entropy shortfall of a short history."""
        if observed <= 0:
            return gamma
        shortfall = max(0.0, math.log2(full_window) - math.log2(observed))
        return gamma - shortfall

    def _apply_blames(self, state: _AuditState, result: AuditResult) -> None:
        if not state.response_seen:
            return
        if result.unacknowledged > 0:
            self.host.send_blame(
                state.target, float(result.unacknowledged), REASON_UNACKNOWLEDGED_HISTORY
            )
        # Eq. (4): lost propose messages make honest entries unconfirmed;
        # credit the expectation so audits are score-neutral for honest
        # nodes on average.
        expected_wrongful = (1.0 - self.host.lifting.p_reception) * state.expected_polls
        if expected_wrongful > 0:
            self.host.send_blame(
                state.target, -expected_wrongful, REASON_AUDIT_COMPENSATION
            )


class AuditScheduler:
    """Sporadic audits: each period, with probability ``p_audit``, the
    hosting node audits a uniformly random peer (§5: "run sporadically").
    """

    def __init__(self, host, p_audit: float = 0.01) -> None:
        self.host = host
        self.p_audit = p_audit
        self.audits_started = 0

    def on_period_tick(self) -> None:
        """Called by the host once per gossip period."""
        # Audits are *a posteriori*: before a full history window has
        # elapsed every node's log is legitimately short and the
        # gossip-period check would wrongly read as "stretched period".
        if self.host.period <= self.host.lifting.history_periods:
            return
        if self.host.random() >= self.p_audit:
            return
        candidates = self.host.sampler.sample(self.host.node_id, 1)
        if candidates:
            if self.host.auditor.start(candidates[0]):
                self.audits_started += 1
