"""Latency summarisation helpers for the load-generator reports.

Two consumers share this module: the ``loadgen`` scenario's renderer
(turning a sweep report into the per-phase table humans read) and the
test suite (which uses :func:`exact_percentile` as the sorted-array
oracle that the log-linear histogram must match to within one bucket
width).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.util.validation import require

__all__ = ["exact_percentile", "format_seconds", "stage_rows"]


def exact_percentile(values: Sequence[float], q: float) -> float:
    """The exact q-th percentile under the nearest-rank definition.

    ``ceil(q/100 * n)``-th smallest value (rank at least 1) — the same
    rank rule :meth:`repro.loadgen.histogram.LatencyHistogram.percentile`
    approximates, so the two are directly comparable in tests.
    """
    require(len(values) > 0, "percentile of an empty sample")
    require(0.0 <= q <= 100.0, "percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def format_seconds(value: float) -> str:
    """Human scale for a latency: µs / ms / s with 3 significant digits."""
    if value != value:  # NaN: an empty histogram
        return "n/a"
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.2f}s"


def stage_rows(phases: Sequence[Mapping[str, object]]) -> List[str]:
    """Fixed-width table lines for a loadgen report's ``phases`` block.

    One row per phase: offered vs goodput rate, drop evidence, and the
    p50/p99 of the queue and sojourn stages (the two that move first
    when the knee is crossed).
    """
    rows = [
        "phase   rate    done/offered   drops   queue p50/p99      sojourn p50/p99"
    ]
    for entry in phases:
        stages: Dict[str, Dict[str, float]] = entry["stages"]  # type: ignore[assignment]
        queue = stages["queue"]
        sojourn = stages["sojourn"]
        drops = (
            int(entry["refused"]) + int(entry["rejected"]) + int(entry["evicted"])
        )
        rows.append(
            f"{entry['phase']:>5} {entry['offered_rate']:>6.0f} "
            f"{entry['done']:>7}/{entry['offered']:<7} {drops:>5}   "
            f"{format_seconds(queue['p50']):>7}/{format_seconds(queue['p99']):<9} "
            f"{format_seconds(sojourn['p50']):>7}/{format_seconds(sojourn['p99'])}"
        )
    return rows
