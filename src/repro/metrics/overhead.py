"""Bandwidth and message overhead (Tables 3 and 5).

Table 5's metric is the bandwidth of LiFTinG's verification and blaming
traffic relative to the dissemination traffic.  The
:class:`~repro.sim.trace.MessageTrace` already splits bytes by category;
this module turns it into the paper's percentages and into per-node
per-period message counts for Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.trace import (
    CATEGORY_DATA,
    CATEGORY_REPUTATION,
    CATEGORY_VERIFICATION,
    MessageTrace,
)
from repro.util.validation import require


@dataclass(frozen=True)
class OverheadReport:
    """Byte volumes and the headline overhead percentage."""

    data_bytes: int
    verification_bytes: int
    reputation_bytes: int
    duration: float
    n_nodes: int

    @property
    def overhead_bytes(self) -> int:
        """Verification + blaming bytes (Table 5's numerator)."""
        return self.verification_bytes + self.reputation_bytes

    @property
    def overhead_ratio(self) -> float:
        """Overhead bytes / data bytes — Table 5's percentage."""
        if self.data_bytes == 0:
            return 0.0
        return self.overhead_bytes / self.data_bytes

    @property
    def overhead_percent(self) -> float:
        """Same, in percent."""
        return 100.0 * self.overhead_ratio

    def per_node_kbps(self, byte_count: int) -> float:
        """Convert a byte total into per-node kbit/s over the run."""
        if self.duration <= 0 or self.n_nodes <= 0:
            return 0.0
        return byte_count * 8.0 / 1000.0 / self.duration / self.n_nodes

    def __str__(self) -> str:
        return (
            f"overhead {self.overhead_percent:.2f}% "
            f"(data {self.per_node_kbps(self.data_bytes):.0f} kbps/node, "
            f"verification {self.per_node_kbps(self.overhead_bytes):.2f} kbps/node)"
        )


def bandwidth_overhead(trace: MessageTrace, duration: float, n_nodes: int) -> OverheadReport:
    """Build an :class:`OverheadReport` from a message trace."""
    require(duration > 0, "duration must be > 0")
    require(n_nodes > 0, "n_nodes must be > 0")
    by_category = trace.category_bytes_all()
    return OverheadReport(
        data_bytes=by_category[CATEGORY_DATA],
        verification_bytes=by_category[CATEGORY_VERIFICATION],
        reputation_bytes=by_category[CATEGORY_REPUTATION],
        duration=duration,
        n_nodes=n_nodes,
    )


def message_counts_per_node_period(
    trace: MessageTrace, duration: float, n_nodes: int, gossip_period: float
) -> Dict[str, float]:
    """Average messages sent per node per gossip period, by kind.

    The Table 3 benchmark compares these against the expected-count
    model of :mod:`repro.analysis.overhead`.
    """
    require(duration > 0 and n_nodes > 0 and gossip_period > 0, "invalid normalisation")
    periods = duration / gossip_period
    return {
        kind: count / n_nodes / periods
        for kind, count in sorted(trace.sent_counts_by_kind().items())
    }
