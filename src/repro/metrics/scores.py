"""Score distributions and detection reports (Figures 10, 11, 14).

The protocol produces a compensated, normalised score per node (via the
min-vote over its managers); this module splits the population by
ground-truth role, builds the pdf/cdf series the paper plots, and
applies the fixed threshold ``η`` to report detection (α) and false
positives (β).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

import numpy as np

from repro.util.stats import EmpiricalDistribution


@dataclass
class DetectionReport:
    """α / β at a fixed threshold, with the underlying distributions."""

    threshold: float
    honest: EmpiricalDistribution
    freeriders: EmpiricalDistribution

    @property
    def detection(self) -> float:
        """α — fraction of freeriders at or below the threshold."""
        if len(self.freeriders) == 0:
            return 0.0
        return self.freeriders.fraction_below(self.threshold)

    @property
    def false_positives(self) -> float:
        """β — fraction of honest nodes at or below the threshold."""
        if len(self.honest) == 0:
            return 0.0
        return self.honest.fraction_below(self.threshold)

    def summary(self) -> str:
        """One-line paper-style summary."""
        return (
            f"eta={self.threshold:+.2f}: detection={self.detection:.0%}, "
            f"false positives={self.false_positives:.0%} "
            f"(honest mean={self.honest.mean:+.2f}, "
            f"freerider mean={self.freeriders.mean:+.2f})"
        )


def score_distributions(
    scores: Dict[int, float], freerider_ids: Set[int]
) -> Tuple[EmpiricalDistribution, EmpiricalDistribution]:
    """Split a node->score map into (honest, freerider) distributions."""
    honest = EmpiricalDistribution()
    freeriders = EmpiricalDistribution()
    for node_id, score in scores.items():
        if node_id in freerider_ids:
            freeriders.add(score)
        else:
            honest.add(score)
    return honest, freeriders


def detection_report(
    scores: Dict[int, float], freerider_ids: Set[int], eta: float
) -> DetectionReport:
    """Apply threshold ``eta`` to a score map."""
    honest, freeriders = score_distributions(scores, freerider_ids)
    return DetectionReport(threshold=eta, honest=honest, freeriders=freeriders)


def gap_between_populations(report: DetectionReport) -> float:
    """Distance between the honest 1st percentile and the freerider
    99th percentile — positive when the two modes are fully separated
    (the "gap" the paper observes in Figure 11a)."""
    if len(report.honest) == 0 or len(report.freeriders) == 0:
        return float("nan")
    return report.honest.quantile(0.01) - report.freeriders.quantile(0.99)


def cdf_series(distribution: EmpiricalDistribution) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience: the (x, fraction) CDF series used by the figures."""
    return distribution.cdf()
