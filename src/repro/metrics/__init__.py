"""Measurement layer: the y-axes of the paper's figures and tables.

* :mod:`repro.metrics.health` — "fraction of nodes viewing a clear
  stream" versus stream lag (Figure 1).
* :mod:`repro.metrics.scores` — score distributions and the
  detection / false-positive report (Figures 10, 11, 14).
* :mod:`repro.metrics.overhead` — bandwidth overhead of the
  verifications relative to the stream (Table 5), and message-count
  summaries (Table 3).
* :mod:`repro.metrics.latency` — percentile oracle and human-readable
  rendering for the load generator's latency reports.
"""

from repro.metrics.health import HealthReport, health_curve, node_required_lag
from repro.metrics.latency import exact_percentile, format_seconds, stage_rows
from repro.metrics.overhead import OverheadReport, bandwidth_overhead
from repro.metrics.scores import DetectionReport, detection_report, score_distributions

__all__ = [
    "DetectionReport",
    "HealthReport",
    "OverheadReport",
    "bandwidth_overhead",
    "detection_report",
    "exact_percentile",
    "format_seconds",
    "health_curve",
    "node_required_lag",
    "score_distributions",
    "stage_rows",
]
