"""Stream health: the metric of Figure 1.

A node "views a clear stream at lag L" when it can play the stream
delayed by ``L`` seconds without visible glitches — operationally, when
at least a ``coverage`` fraction (99 % by default) of the chunks
created during the measurement window reached it within ``L`` seconds
of their creation.  The curve "fraction of nodes viewing a clear stream
vs stream lag" is the CDF of the per-node *required lag*: the
``coverage``-quantile of its chunk delays, with missing chunks counted
as infinite delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.gossip.chunks import StreamSource
from repro.util.validation import require


def node_required_lag(
    node,
    source: StreamSource,
    *,
    coverage: float = 0.99,
    window: Tuple[float, float] = None,
) -> float:
    """The smallest lag at which ``node`` views a clear stream.

    ``window`` restricts to chunks created in ``[t0, t1)`` (excluding
    the cold-start transient and the chunks still in flight at the end
    of the run).  Returns ``inf`` when the node missed more than
    ``1 - coverage`` of the chunks outright.
    """
    require(0.0 < coverage <= 1.0, "coverage must be in (0, 1]")
    delays: List[float] = []
    for chunk in source.chunks:
        if window is not None and not (window[0] <= chunk.created_at < window[1]):
            continue
        if chunk.chunk_id in node.store:
            delays.append(node.store.received_at(chunk.chunk_id) - chunk.created_at)
        else:
            delays.append(math.inf)
    if not delays:
        return math.inf
    delays.sort()
    index = min(len(delays) - 1, max(0, math.ceil(coverage * len(delays)) - 1))
    return delays[index]


@dataclass
class HealthReport:
    """The health curve: fraction of nodes clear at each lag."""

    lags: np.ndarray
    fractions: np.ndarray
    required_lags: Dict[int, float]

    def fraction_at(self, lag: float) -> float:
        """Fraction of nodes viewing a clear stream at ``lag`` seconds."""
        values = np.fromiter(self.required_lags.values(), dtype=float)
        if values.size == 0:
            return 0.0
        return float(np.mean(values <= lag))

    @property
    def median_lag(self) -> float:
        """Median required lag across nodes (inf-aware)."""
        values = sorted(self.required_lags.values())
        return values[len(values) // 2] if values else math.inf


def health_curve(
    nodes: Iterable,
    source: StreamSource,
    *,
    lags: Sequence[float] = None,
    coverage: float = 0.99,
    window: Tuple[float, float] = None,
) -> HealthReport:
    """Figure 1's curve for a set of nodes.

    ``lags`` defaults to 0..60 s in 1 s steps, the paper's x-axis.
    """
    if lags is None:
        lags = np.arange(0.0, 61.0, 1.0)
    lags = np.asarray(lags, dtype=float)
    required = {node.node_id: node_required_lag(node, source, coverage=coverage, window=window) for node in nodes}
    values = np.fromiter(required.values(), dtype=float) if required else np.empty(0)
    fractions = (
        np.array([float(np.mean(values <= lag)) for lag in lags])
        if values.size
        else np.zeros_like(lags)
    )
    return HealthReport(lags=lags, fractions=fractions, required_lags=required)


def delivery_ratio(nodes: Iterable, source: StreamSource, window: Tuple[float, float] = None) -> float:
    """Mean fraction of window chunks delivered, across nodes."""
    chunk_ids = [
        c.chunk_id
        for c in source.chunks
        if window is None or (window[0] <= c.created_at < window[1])
    ]
    if not chunk_ids:
        return 0.0
    ratios = []
    for node in nodes:
        owned = sum(1 for c in chunk_ids if c in node.store)
        ratios.append(owned / len(chunk_ids))
    return float(np.mean(ratios)) if ratios else 0.0
