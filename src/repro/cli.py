"""Command-line interface: run deployments and experiments from a shell.

Installed as ``python -m repro.cli`` (or via the ``repro`` console
script when packaged).  Subcommands:

* ``detect`` — build a simulated deployment with freeriders, calibrate,
  run, and print the detection report (the quickstart as a command).
* ``health`` — the Figure 1 scenario: baseline vs freeriders vs
  freeriders-under-LiFTinG health curves.
* ``overhead`` — the Table 5 scenario: the bandwidth-overhead grid over
  stream rates and cross-checking probabilities.
* ``analyze`` — print the closed-form design constants for a parameter
  set (b̃, detection bounds, entropy ceilings).
* ``scale`` — the large-n scalability sweep: wall-clock seconds per
  simulated second for a range of deployment sizes.
* ``live`` — run the asyncio runtime over real loopback sockets.

Experiments that drive several independent deployments (``health``,
``overhead``, ``scale``) accept ``--jobs N`` to fan them out over N
worker processes (``--jobs 0`` = all cores); results are bit-identical
to the serial run (for ``scale``, use ``--jobs 1`` when the timings are
meant as baselines).  The simulation-driving subcommands accept
``--profile PATH`` to dump sorted cProfile stats of the run — the
starting point of every performance PR (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.config import FreeriderDegree, planetlab_params


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", "-n", type=int, default=100, help="system size")
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument("--duration", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--loss", type=float, default=0.04, help="datagram loss rate")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for independent deployments (0 = all cores)",
    )


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="dump sorted cProfile stats of the run to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LiFTinG: Lightweight Freerider-Tracking in Gossip (MIDDLEWARE 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run a deployment and detect freeriders")
    _add_common(detect)
    detect.add_argument("--freeriders", type=float, default=0.10, help="freerider fraction")
    detect.add_argument("--delta1", type=float, default=1 / 7)
    detect.add_argument("--delta2", type=float, default=0.1)
    detect.add_argument("--delta3", type=float, default=0.1)
    detect.add_argument("--p-dcc", type=float, default=1.0, help="cross-check probability")
    detect.add_argument("--expel", action="store_true", help="enforce expulsion")
    _add_profile(detect)

    health = sub.add_parser("health", help="Figure 1's three health curves")
    _add_common(health)
    _add_jobs(health)
    _add_profile(health)
    health.add_argument("--freeriders", type=float, default=0.25)

    overhead = sub.add_parser("overhead", help="Table 5's bandwidth-overhead grid")
    overhead.add_argument("--nodes", "-n", type=int, default=100, help="system size")
    overhead.add_argument("--seed", type=int, default=31, help="experiment seed")
    overhead.add_argument("--duration", type=float, default=10.0, help="simulated seconds")
    _add_jobs(overhead)
    _add_profile(overhead)
    overhead.add_argument(
        "--rates", type=float, nargs="+", default=[674.0, 1082.0, 2036.0],
        help="stream rates (kbps)",
    )
    overhead.add_argument(
        "--p-dcc", type=float, nargs="+", default=[0.0, 0.5, 1.0],
        help="cross-checking probabilities",
    )

    analyze = sub.add_parser("analyze", help="closed-form design constants")
    analyze.add_argument("--fanout", "-f", type=int, default=12)
    analyze.add_argument("--request-size", "-R", type=int, default=4)
    analyze.add_argument("--loss", type=float, default=0.07)
    analyze.add_argument("--colluders", type=int, default=25)
    analyze.add_argument("--history", type=int, default=50, help="n_h periods")

    scale = sub.add_parser("scale", help="large-n scalability sweep (s per sim-second vs n)")
    scale.add_argument(
        "--sizes", type=int, nargs="+", default=[100, 300, 1000],
        help="deployment sizes to measure",
    )
    scale.add_argument("--duration", type=float, default=3.0, help="timed simulated seconds per size")
    scale.add_argument("--warmup", type=float, default=2.0, help="warm-up simulated seconds per size")
    scale.add_argument("--seed", type=int, default=1, help="deployment seed")
    _add_jobs(scale)
    _add_profile(scale)

    live = sub.add_parser("live", help="run over real loopback sockets (asyncio)")
    live.add_argument("--nodes", "-n", type=int, default=12)
    live.add_argument("--seed", type=int, default=1)
    live.add_argument("--duration", type=float, default=5.0, help="real seconds")
    live.add_argument("--freeriders", type=float, default=0.2)
    return parser


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.experiments.calibration import calibrate
    from repro.experiments.cluster import ClusterConfig, SimCluster

    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=args.nodes, chunk_size=1400)
    lifting = replace(lifting, p_dcc=args.p_dcc, assumed_loss_rate=args.loss)
    print("calibrating...", file=sys.stderr)
    cal = calibrate(gossip, lifting, seed=args.seed + 1, duration=10.0, loss_rate=args.loss)
    eta = cal.eta_for_false_positives(0.01)
    cluster = SimCluster(
        ClusterConfig(
            gossip=gossip,
            lifting=lifting,
            seed=args.seed,
            loss_rate=args.loss,
            freerider_fraction=args.freeriders,
            freerider_degree=FreeriderDegree(args.delta1, args.delta2, args.delta3),
            compensation=cal.compensation,
            expulsion_enabled=args.expel,
        )
    )
    cluster.run(until=args.duration)
    print(f"compensation b~ = {cal.compensation:.2f}, eta = {eta:.2f}")
    print(cluster.detection(eta=eta).summary())
    print(cluster.overhead())
    if args.expel:
        expelled = cluster.controller.expelled_nodes()
        wrongful = [n for n in expelled if n not in cluster.freerider_ids]
        print(f"expelled: {len(expelled)} ({len(wrongful)} honest)")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.experiments.fig1 import run_fig1

    result = run_fig1(
        n=args.nodes,
        duration=args.duration,
        seed=args.seed,
        freerider_fraction=args.freeriders,
        jobs=args.jobs,
    )
    print("lag(s)  baseline  freeriders  freeriders+LiFTinG")
    for lag, base, collapsed, protected in result.rows():
        print(f"{lag:5.0f}   {base:7.2f}   {collapsed:9.2f}   {protected:12.2f}")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.experiments.table5 import run_table5

    result = run_table5(
        n=args.nodes,
        duration=args.duration,
        seed=args.seed,
        rates_kbps=tuple(args.rates),
        p_dcc_values=tuple(args.p_dcc),
        jobs=args.jobs,
    )
    print("rate(kbps)  p_dcc  measured   paper")
    for rate, p_dcc, measured, paper in result.rows():
        print(f"{rate:9.0f}   {p_dcc:4.1f}   {measured:6.2f}%   {paper:5.2f}%")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.entropy_analysis import (
        achievable_max_bias,
        gamma_for_window,
        max_bias_probability,
    )
    from repro.analysis.freerider_blames import expected_blame_excess
    from repro.analysis.overhead import expected_message_counts
    from repro.analysis.wrongful_blames import expected_blame_honest

    p_r = 1.0 - args.loss
    f, big_r = args.fanout, args.request_size
    print(f"f={f}, |R|={big_r}, loss={args.loss:.0%}")
    print(f"compensation b~ (Eq. 5):       {expected_blame_honest(f, big_r, p_r):.2f}")
    for delta in (0.035, 0.05, 0.1):
        degree = FreeriderDegree.uniform(delta)
        print(
            f"blame excess at delta={delta:5.3f}: "
            f"{expected_blame_excess(degree, f, big_r, p_r):6.2f} "
            f"(gain {degree.bandwidth_gain:.0%})"
        )
    window = args.history * f
    gamma = gamma_for_window(window)
    print(f"audit window {window} entries -> gamma = {gamma:.2f}")
    print(
        f"collusion ceiling for m'={args.colluders}: "
        f"Eq.7 {max_bias_probability(gamma, args.colluders, window):.2f}, "
        f"achievable {achievable_max_bias(gamma, args.colluders, window):.2f}"
    )
    counts = expected_message_counts(f, big_r, 1.0, 25)
    print(
        f"message budget/node/period: data {counts.data_messages:.0f}, "
        f"verification {counts.verification_messages:.0f}"
    )
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments.scaling import run_scaling

    result = run_scaling(
        sizes=args.sizes,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        jobs=args.jobs,
    )
    print("     n  s/sim-s   events/s")
    for n, sps, eps in result.rows():
        print(f"{n:6d}  {sps:7.3f}  {eps:9,.0f}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime import RuntimeCluster, RuntimeConfig

    config = RuntimeConfig(
        n=args.nodes,
        duration=args.duration,
        seed=args.seed,
        freerider_fraction=args.freeriders,
        freerider_degree=FreeriderDegree(0.25, 0.3, 0.3),
    )
    report = asyncio.run(RuntimeCluster(config).run())
    print(f"chunks: {report.chunks_emitted}, delivery {report.delivery_ratio:.1%}")
    print(report.detection.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "health": _cmd_health,
        "overhead": _cmd_overhead,
        "analyze": _cmd_analyze,
        "scale": _cmd_scale,
        "live": _cmd_live,
    }
    handler = handlers[args.command]
    profile_path = getattr(args, "profile", None)
    if profile_path:
        from repro.util.profiling import maybe_profile

        with maybe_profile(profile_path):
            return handler(args)
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
