"""Command-line interface: one generic entry point over the scenario registry.

Installed as ``python -m repro.cli`` (or via the ``repro`` console
script when packaged).  Core subcommands:

* ``repro list [--tag TAG]`` — every registered scenario.
* ``repro describe <scenario>`` — description, tags and the declared
  parameters (types, defaults, constraints).
* ``repro run <scenario> [--<param> ...] [--set k=v ...]`` — run any
  scenario.  **Flags are derived from the scenario's ``Param``
  declarations**, so every scenario-backed command uniformly accepts
  exactly the parameters it declares (``--seed``, ``--jobs``, ... —
  nothing is hand-wired and nothing can silently go missing).

Every run-style command also accepts ``--json PATH`` (write the
structured :class:`~repro.scenarios.RunResult` envelope; ``-`` =
stdout) and ``--profile PATH`` (dump sorted cProfile stats of the run —
the starting point of every performance PR, see docs/PERFORMANCE.md).

The pre-registry subcommands remain as **aliases** that delegate to the
registry with their historical defaults and flag spellings:

* ``detect``   → ``run detect``   (quickstart detection report)
* ``health``   → ``run fig1``     (Figure 1 health curves, n=100)
* ``overhead`` → ``run table5``   (Table 5 bandwidth-overhead grid)
* ``analyze``  → ``run analyze``  (closed-form design constants)
* ``scale``    → ``run scaling``  (large-n scalability sweep)
* ``live``     → ``run live``     (asyncio loopback deployment)

Experiments that drive several independent deployments accept
``--jobs N`` to fan them out over N worker processes (``--jobs 0`` =
all cores) with bit-identical results; see docs/SCENARIOS.md.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.scenarios import (
    ParamError,
    RunResult,
    ScenarioSpec,
    UnknownScenarioError,
    get,
    list_scenarios,
    run_scenario,
    run_sweep,
)

# ----------------------------------------------------------------------
# flag derivation from Param declarations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Alias:
    """A legacy subcommand delegating to a registered scenario."""

    scenario: str
    help: str
    #: historical defaults that differ from the scenario's own.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: param name -> historical flag spelling (without ``--``).
    renames: Mapping[str, str] = field(default_factory=dict)
    #: flag spelling -> short option (e.g. ``{"nodes": "-n"}``).
    shorts: Mapping[str, str] = field(default_factory=dict)
    #: historical flags with no declared parameter behind them — still
    #: accepted (scripts keep working) but ignored with a warning.
    ignored_flags: Mapping[str, str] = field(default_factory=dict)


#: the pre-registry CLI surface, kept stable.
ALIASES: Dict[str, Alias] = {
    "detect": Alias(
        scenario="detect",
        help="run a deployment and detect freeriders",
        renames={"n": "nodes"},
        shorts={"nodes": "-n"},
    ),
    "health": Alias(
        scenario="fig1",
        help="Figure 1's three health curves",
        defaults={"n": 100, "seed": 1},
        renames={"n": "nodes", "freerider_fraction": "freeriders"},
        shorts={"nodes": "-n", "jobs": "-j"},
        # The pre-registry CLI accepted --loss here and silently ignored
        # it (the fig1 runner never took a loss argument); keep scripts
        # working, but say so out loud.
        ignored_flags={"loss": "historically accepted but never used by fig1"},
    ),
    "overhead": Alias(
        scenario="table5",
        help="Table 5's bandwidth-overhead grid",
        renames={"n": "nodes", "rates_kbps": "rates", "p_dcc_values": "p-dcc"},
        shorts={"nodes": "-n", "jobs": "-j"},
    ),
    "analyze": Alias(
        scenario="analyze",
        help="closed-form design constants",
        shorts={"fanout": "-f", "request-size": "-R"},
    ),
    "scale": Alias(
        scenario="scaling",
        help="large-n scalability sweep (s per sim-second vs n)",
        shorts={"jobs": "-j"},
    ),
    "live": Alias(
        scenario="live",
        help="run over real loopback sockets (asyncio)",
        shorts={"nodes": "-n"},
        renames={"n": "nodes"},
    ),
}


def _flag_spelling(name: str) -> str:
    return name.replace("_", "-")


def _add_scenario_flags(
    parser: argparse.ArgumentParser,
    spec: ScenarioSpec,
    *,
    defaults: Mapping[str, Any] = (),
    renames: Mapping[str, str] = (),
    shorts: Mapping[str, str] = (),
) -> Dict[str, str]:
    """Derive one flag per declared parameter; returns dest -> param name.

    Flags default to ``argparse.SUPPRESS`` so that only explicitly
    passed values become overrides — the scenario's own declarations
    (or the alias's historical defaults) fill in the rest.
    """
    defaults = dict(defaults)
    renames = dict(renames)
    shorts = dict(shorts)
    dest_to_param: Dict[str, str] = {}
    for param in spec.params:
        spelling = _flag_spelling(renames.get(param.name, param.name))
        flags = [f"--{spelling}"]
        if spelling in shorts:
            flags.append(shorts[spelling])
        default = defaults.get(param.name, param.default)
        help_text = param.help or param.name
        if param.constraint:
            help_text += f" [{param.constraint}]"
        help_text += f" (default: {default!r})"
        kwargs: Dict[str, Any] = dict(default=argparse.SUPPRESS, help=help_text)
        if param.type is bool:
            kwargs["action"] = argparse.BooleanOptionalAction
        elif param.sequence:
            kwargs.update(nargs="+", type=param.type, metavar=param.type.__name__.upper())
        else:
            kwargs.update(type=param.type, metavar=param.type.__name__.upper())
        action = parser.add_argument(*flags, **kwargs)
        dest_to_param[action.dest] = param.name
    return dest_to_param


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="PARAM=VALUE",
        dest="set_pairs",
        help="override any declared parameter by name "
        "(sequences comma-separated, e.g. --set sizes=100,300)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="PARAM=A,B,C",
        dest="sweep_pairs",
        help="run the product sweep over the listed values (repeatable; "
        "one full run per cell — e.g. --sweep rate=500,1000 --sweep n=8,16; "
        "for sequence params separate values inside a cell with ':')",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        dest="json_path",
        help="write the RunResult envelope as JSON ('-' = stdout; "
        "a JSON array of envelopes under --sweep)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="dump sorted cProfile stats of the run to PATH",
    )


def _collect_overrides(
    spec: ScenarioSpec,
    args: argparse.Namespace,
    dest_to_param: Mapping[str, str],
) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for dest, param_name in dest_to_param.items():
        if hasattr(args, dest):
            overrides[param_name] = getattr(args, dest)
    for pair in getattr(args, "set_pairs", []):
        if "=" not in pair:
            raise ParamError(f"--set expects PARAM=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key.strip().replace("-", "_")] = value
    return overrides


def _collect_sweep_axes(args: argparse.Namespace) -> Dict[str, List[str]]:
    """Parse repeated ``--sweep param=a,b,c`` flags into an axes mapping.

    Values stay strings (each cell goes through the scenario's own
    coercion); for sequence-typed parameters a cell's inner values are
    separated by ``:`` (e.g. ``--sweep deltas=0.1:0.1:0.1,0.3:0.3:0.3``)
    and rewritten to the comma form the coercer expects.
    """
    axes: Dict[str, List[str]] = {}
    for pair in getattr(args, "sweep_pairs", []):
        if "=" not in pair:
            raise ParamError(f"--sweep expects PARAM=A,B,C, got {pair!r}")
        key, _, values = pair.partition("=")
        key = key.strip().replace("-", "_")
        cells = [
            cell.strip().replace(":", ",")
            for cell in values.split(",")
            if cell.strip() != ""
        ]
        if not cells:
            raise ParamError(f"--sweep {key}= lists no values")
        if key in axes:
            raise ParamError(f"--sweep names {key!r} twice")
        axes[key] = cells
    return axes


def _execute_sweep(
    spec: ScenarioSpec,
    axes: Mapping[str, List[str]],
    overrides: Mapping[str, Any],
    args: argparse.Namespace,
) -> int:
    import json as _json

    results = run_sweep(spec.name, axes, **overrides)
    json_path = getattr(args, "json_path", None)
    payload = _json.dumps(
        [_json.loads(result.to_json()) for result in results], indent=2
    )
    if json_path == "-":
        print(payload)
        return 0
    for result in results:
        cell = ", ".join(f"{key}={result.params[key]!r}" for key in axes)
        print(f"=== {spec.name} [{cell}] ===")
        print(spec.render(result) if spec.render is not None else result.to_json(indent=2))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {json_path} ({len(results)} cells)", file=sys.stderr)
    return 0


def _execute(
    spec: ScenarioSpec, overrides: Mapping[str, Any], args: argparse.Namespace
) -> int:
    axes = _collect_sweep_axes(args)
    if axes:
        # A parameter that is both swept and pinned is a ParamError from
        # run_sweep — surfaced like any other parameter mistake.
        return _execute_sweep(spec, axes, overrides, args)
    profile_path = getattr(args, "profile", None)
    if profile_path:
        from repro.util.profiling import maybe_profile

        with maybe_profile(profile_path):
            result = run_scenario(spec.name, **overrides)
    else:
        result = run_scenario(spec.name, **overrides)

    json_path = getattr(args, "json_path", None)
    if json_path == "-":
        print(result.to_json(indent=2))
        return 0
    if spec.render is not None:
        print(spec.render(result))
    else:
        print(result.to_json(indent=2))
    if json_path:
        result.dump(json_path)
        print(f"wrote {json_path}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def _cmd_run(argv: List[str]) -> int:
    """``repro run <scenario> [--flags] [--set k=v]`` — fully generic."""
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro run <scenario> [--<param> VALUE ...] [--set k=v ...]")
        print("       repro describe <scenario>   # parameter details\n")
        print("registered scenarios:")
        for spec in list_scenarios():
            print(f"  {spec.name:12s} {spec.description}")
        return 0
    name = argv[0]
    try:
        spec = get(name)
    except UnknownScenarioError as exc:
        print(f"repro run: {exc}", file=sys.stderr)
        return 2
    parser = argparse.ArgumentParser(
        prog=f"repro run {spec.name}", description=spec.description
    )
    dest_to_param = _add_scenario_flags(parser, spec)
    _add_run_options(parser)
    args = parser.parse_args(argv[1:])
    try:
        overrides = _collect_overrides(spec, args, dest_to_param)
        return _execute(spec, overrides, args)
    except ParamError as exc:
        print(f"repro run {spec.name}: {exc}", file=sys.stderr)
        return 2


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    if not specs:
        print(f"no scenarios tagged {args.tag!r}", file=sys.stderr)
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:{width}s}  [{tags}]  {spec.description}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        spec = get(args.scenario)
    except UnknownScenarioError as exc:
        print(f"repro describe: {exc}", file=sys.stderr)
        return 2
    print(f"{spec.name} — {spec.description}")
    if spec.tags:
        print(f"tags: {', '.join(spec.tags)}")
    print("\nparameters:")
    for param in spec.params:
        print(f"  {param.describe()}")
    if spec.smoke:
        pairs = ", ".join(f"{k}={v!r}" for k, v in spec.smoke.items())
        print(f"\nsmoke-size overrides: {pairs}")
    example = " ".join(
        f"--{_flag_spelling(p.name)} ..." for p in spec.params[:2]
    )
    print(f"\nrun it:  repro run {spec.name} {example}".rstrip())
    print(f"         repro run {spec.name} --json - --set <param>=<value>")
    return 0


def _make_alias_handler(alias: Alias, dest_to_param: Mapping[str, str]):
    def handler(args: argparse.Namespace) -> int:
        spec = get(alias.scenario)
        for spelling in alias.ignored_flags:
            dest = spelling.replace("-", "_")
            if hasattr(args, dest):
                print(
                    f"warning: --{spelling} is deprecated and ignored "
                    f"({alias.ignored_flags[spelling]})",
                    file=sys.stderr,
                )
        overrides = dict(alias.defaults)
        overrides.update(_collect_overrides(spec, args, dest_to_param))
        return _execute(spec, overrides, args)

    return handler


def _cmd_audit_verify(args: argparse.Namespace) -> int:
    """Verify (and optionally recover) an HMAC-chained audit log."""
    from repro.core.auditlog import AuditLog

    try:
        log = AuditLog.load(args.path, key_seed=args.key_seed)
    except OSError as exc:
        print(f"repro audit-verify: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    report = log.verify_all()
    print(report.summary())
    if report.ok:
        return 0
    if not args.recover:
        return 1
    recovery = log.rollback()
    print(recovery.summary())
    confirm = log.verify_all()
    print(confirm.summary())
    return 0 if confirm.ok else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LiFTinG: Lightweight Freerider-Tracking in Gossip (MIDDLEWARE 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Generic registry surface.  ``run`` is dispatched before argparse
    # (its flags depend on the chosen scenario); the entry here only
    # documents it in ``repro --help``.
    sub.add_parser(
        "run",
        help="run any registered scenario: repro run <scenario> [--set k=v ...]",
        add_help=False,
    )
    list_parser = sub.add_parser("list", help="list the registered scenarios")
    list_parser.add_argument("--tag", default=None, help="filter by tag")
    list_parser.set_defaults(handler=_cmd_list)
    describe = sub.add_parser(
        "describe", help="show a scenario's parameters and defaults"
    )
    describe.add_argument("scenario", help="registered scenario name")
    describe.set_defaults(handler=_cmd_describe)
    audit = sub.add_parser(
        "audit-verify",
        help="verify a tamper-evident audit log (exit 1 when the chain is broken)",
    )
    audit.add_argument("path", help="JSONL audit-log file (see the chaos scenario)")
    audit.add_argument(
        "--key-seed",
        default="lifting-audit",
        help="seed of the HMAC key the log was written with",
    )
    audit.add_argument(
        "--recover",
        action="store_true",
        help="on a broken chain, roll back to the last consistent snapshot "
        "(rewrites the file; exit 0 when the recovered chain verifies)",
    )
    audit.set_defaults(handler=_cmd_audit_verify)

    # Legacy aliases, flags derived from the same Param declarations.
    for command, alias in ALIASES.items():
        spec = get(alias.scenario)
        alias_parser = sub.add_parser(command, help=alias.help)
        dest_to_param = _add_scenario_flags(
            alias_parser,
            spec,
            defaults=alias.defaults,
            renames=alias.renames,
            shorts=alias.shorts,
        )
        for spelling, reason in alias.ignored_flags.items():
            alias_parser.add_argument(
                f"--{spelling}",
                default=argparse.SUPPRESS,
                help=f"deprecated, ignored ({reason})",
            )
        _add_run_options(alias_parser)
        alias_parser.set_defaults(handler=_make_alias_handler(alias, dest_to_param))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _cmd_run(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ParamError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
