"""Monte-Carlo sampling of per-period blames (§6.2, §6.3.1).

The sampler mirrors the verification event structure, per node and per
gossip period:

**Direct verification** (the node as proposer, ``f̂ = (1-δ1)f``
partners): for each partner the proposal arrives w.p. ``p_r``; the
request arrives w.p. ``p_r``; a lost request costs blame ``f``; with
both delivered, each of the ``|R|`` chunks reaches the requester only
w.p. ``(1-δ3)·p_r`` and each miss costs ``f/|R|``.

**Direct cross-checking** (the node as inspected, ``f`` verifiers):
a verifier whose chunks were dropped from the proposal (prob ``δ2``)
blames ``f``.  Otherwise, given the interaction happened (``p_r²``),
the verifier blames ``f`` when a served chunk or the ack was lost
(``1 - p_r^{|R|+1}``); else each of its ``f`` witness slots draws
blame 1 when the witness is missing (prob ``δ1``, fanout decrease, no
confirm needed) or when the confirm round fails
(``(1-δ1)·p_dcc·(1-p_r³)``).

Summing expectations recovers the paper's closed forms exactly — the
test suite asserts it — and the *distribution* gives ``σ(b)`` (deferred
to a tech report in the paper; measured as 25.6 in Figure 10) and the
full score CDFs of Figures 10–12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.freerider_blames import expected_blame_freerider
from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import FreeriderDegree, HONEST_DEGREE
from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class BlameModel:
    """The parameters the blame distribution depends on."""

    fanout: int
    request_size: int
    p_reception: float
    p_dcc: float = 1.0

    def __post_init__(self) -> None:
        require(self.fanout >= 1, "fanout must be >= 1")
        require(self.request_size >= 1, "request_size must be >= 1")
        require_probability(self.p_reception, "p_reception")
        require_probability(self.p_dcc, "p_dcc")

    # ------------------------------------------------------------------
    def expected_blame(self, degree: FreeriderDegree = HONEST_DEGREE) -> float:
        """Closed-form per-period expectation (Eq. 5 / ``b̃'(Δ)``)."""
        return expected_blame_freerider(
            degree, self.fanout, self.request_size, self.p_reception, self.p_dcc
        )

    @property
    def compensation(self) -> float:
        """``b̃`` — the honest expectation used for compensation."""
        return expected_blame_honest(
            self.fanout, self.request_size, self.p_reception, self.p_dcc
        )

    # ------------------------------------------------------------------
    def sample_period_blames(
        self,
        rng: np.random.Generator,
        count: int,
        degree: FreeriderDegree = HONEST_DEGREE,
    ) -> np.ndarray:
        """Per-period blame totals for ``count`` i.i.d. nodes."""
        require(count >= 1, "count must be >= 1, got %d", count)
        f = self.fanout
        big_r = self.request_size
        p_r = self.p_reception
        d1, d2, d3 = degree.as_tuple()
        blame = np.zeros(count)

        # --- direct verification (as proposer) -------------------------
        # Each of the f potential partner slots is contacted w.p. (1-δ1)
        # — the analysis treats δ1 as a continuous contact rate, so the
        # sampler does too (the packet simulator rounds to f̂ instead).
        p_contacted_and_proposed = (1.0 - d1) * p_r
        if p_contacted_and_proposed > 0:
            n_prop = rng.binomial(f, p_contacted_and_proposed, size=count)
            n_req = rng.binomial(n_prop, p_r)
            blame += f * (n_prop - n_req)
            p_chunk_miss = 1.0 - p_r * (1.0 - d3)
            missing_chunks = rng.binomial(n_req * big_r, p_chunk_miss)
            blame += (f / big_r) * missing_chunks

        # --- direct cross-checking (as inspected) ----------------------
        n_dropped = rng.binomial(f, d2, size=count)
        blame += f * n_dropped
        n_interact = rng.binomial(f - n_dropped, p_r**2)
        p_invalid = 1.0 - p_r ** (big_r + 1)
        n_invalid = rng.binomial(n_interact, p_invalid)
        blame += f * n_invalid
        intact = n_interact - n_invalid

        # Witness term.  The partner list and the propose messages to the
        # witnesses are SHARED across all verifiers of the period (there
        # is one propose event), so those failure modes are sampled once
        # per node and multiply the verifier count — this correlation
        # raises the variance without changing the mean (the paper's
        # formulas are expectations and cannot distinguish the two).
        w_present = rng.binomial(f, 1.0 - d1, size=count)  # partners listed
        w_delivered = rng.binomial(w_present, p_r)  # proposes that arrived
        # Fanout decrease is visible from the ack alone: every intact
        # verifier blames f - f̂ without needing a confirm round.
        blame += intact * (f - w_present)
        # Verifiers that actually run the confirm round:
        runs = rng.binomial(intact, self.p_dcc)
        # ...each blames 1 per witness whose propose was lost (shared)...
        blame += runs * (w_present - w_delivered)
        # ...and 1 per witness whose confirm or response was lost
        # (independent per verifier-witness pair).
        blame += rng.binomial(runs * w_delivered, 1.0 - p_r**2)
        return blame

    def sample_sigma(
        self,
        rng: np.random.Generator,
        samples: int = 200_000,
        degree: FreeriderDegree = HONEST_DEGREE,
    ) -> float:
        """Monte-Carlo estimate of the per-period blame stddev ``σ(b)``."""
        draws = self.sample_period_blames(rng, samples, degree)
        return float(np.std(draws, ddof=1))


@dataclass(frozen=True)
class ScoreSample:
    """Normalised scores of the two populations after ``rounds`` periods."""

    honest: np.ndarray
    freeriders: np.ndarray
    rounds: int
    compensation: float

    def detection_fraction(self, eta: float) -> float:
        """Fraction of freerider scores below the threshold (α)."""
        if self.freeriders.size == 0:
            return 0.0
        return float(np.mean(self.freeriders < eta))

    def false_positive_fraction(self, eta: float) -> float:
        """Fraction of honest scores below the threshold (β)."""
        if self.honest.size == 0:
            return 0.0
        return float(np.mean(self.honest < eta))


def simulate_scores(
    model: BlameModel,
    rng: np.random.Generator,
    *,
    n_honest: int,
    n_freeriders: int = 0,
    degree: FreeriderDegree = HONEST_DEGREE,
    rounds: int = 50,
    compensation: Optional[float] = None,
) -> ScoreSample:
    """Simulate ``rounds`` gossip periods of blame accumulation.

    Returns normalised scores ``s = -(1/r) Σ (b_i - b̃)`` (Eq. 6) for
    both populations.  ``compensation`` defaults to the closed-form
    ``b̃``; pass 0.0 to ablate compensation.
    """
    require(rounds >= 1, "rounds must be >= 1, got %d", rounds)
    require(n_honest >= 0 and n_freeriders >= 0, "populations must be >= 0")
    b_tilde = model.compensation if compensation is None else compensation

    honest_total = np.zeros(n_honest)
    freerider_total = np.zeros(n_freeriders)
    for _round in range(rounds):
        if n_honest:
            honest_total += model.sample_period_blames(rng, n_honest)
        if n_freeriders:
            freerider_total += model.sample_period_blames(rng, n_freeriders, degree)

    honest_scores = b_tilde - honest_total / rounds if n_honest else np.empty(0)
    freerider_scores = (
        b_tilde - freerider_total / rounds if n_freeriders else np.empty(0)
    )
    return ScoreSample(
        honest=honest_scores,
        freeriders=freerider_scores,
        rounds=rounds,
        compensation=b_tilde,
    )


def detection_sweep(
    model: BlameModel,
    rng: np.random.Generator,
    deltas,
    *,
    eta: float,
    rounds: int = 50,
    n_freeriders: int = 2_000,
    n_honest: int = 2_000,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 12's sweep: ``(α, β, gain)`` for each uniform ``δ``.

    ``δ1 = δ2 = δ3 = δ``; gain is the saved upload bandwidth
    ``1 - (1-δ)³``.
    """
    alphas, betas, gains = [], [], []
    for delta in deltas:
        degree = FreeriderDegree.uniform(float(delta))
        sample = simulate_scores(
            model,
            rng,
            n_honest=n_honest,
            n_freeriders=n_freeriders,
            degree=degree,
            rounds=rounds,
        )
        alphas.append(sample.detection_fraction(eta))
        betas.append(sample.false_positive_fraction(eta))
        gains.append(degree.bandwidth_gain)
    return np.asarray(alphas), np.asarray(betas), np.asarray(gains)
