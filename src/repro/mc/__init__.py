"""Vectorised Monte-Carlo engine for the paper's §6 simulations.

The analysis figures (10–13) are statements about a 10,000-node system
— far beyond what a packet-level pure-Python simulation can sweep.  The
paper's own "extensive simulations" are Monte-Carlo draws of the blame
and entropy models, and that is what this package implements, vectorised
with numpy:

* :mod:`repro.mc.blame_model` — samples per-period blames following the
  exact event structure of the verifications (losses on proposals,
  requests, serves, acks, confirms), for honest nodes and freeriders of
  arbitrary degree ``Δ``; its expectations provably equal Eq. (2)/(3)/
  (5) and ``b̃'(Δ)``, which the property tests check.
* :mod:`repro.mc.entropy` — samples history entropies (fanout and
  fanin) under uniform or coalition-biased partner selection
  (Figure 13, §6.3.2).
"""

from repro.mc.blame_model import (
    BlameModel,
    ScoreSample,
    simulate_scores,
)
from repro.mc.entropy import (
    biased_fanout_entropies,
    row_entropies,
    sample_fanin_entropies,
    sample_fanout_entropies,
)

__all__ = [
    "BlameModel",
    "ScoreSample",
    "biased_fanout_entropies",
    "row_entropies",
    "sample_fanin_entropies",
    "sample_fanout_entropies",
    "simulate_scores",
]
