"""Monte-Carlo sampling of history entropies (Figure 13, §6.3.2).

Samples the Shannon entropy of partner histories:

* **fanout** — each node's history is ``n_h · f`` uniform picks among
  the other ``n-1`` nodes (full membership); Figure 13a's observed
  range at n=10,000, n_h·f=600 is [9.11, 9.21] against a maximum of
  ``log2(600) = 9.23``.
* **fanin** — invert all nodes' picks: the multiset of nodes that chose
  node ``i``; its size fluctuates around ``n_h·f`` (Figure 13b's wider
  range [8.98, 9.34]).
* **biased fanout** — the coalition model of §6.3.2: with probability
  ``p_m`` a pick goes to a uniform co-colluder, otherwise to a uniform
  honest node; used to validate Eq. (7)'s threshold inversion.

Everything is vectorised; the core primitive :func:`row_entropies`
computes per-row entropies of an integer matrix by sorting and
run-length encoding.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.validation import require, require_probability


def row_entropies(matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy (base 2) of each row's value multiset.

    >>> import numpy as np
    >>> row_entropies(np.array([[1, 1, 2, 2], [5, 5, 5, 5]])).round(3)
    array([1., 0.])
    """
    matrix = np.asarray(matrix)
    require(matrix.ndim == 2 and matrix.size > 0, "need a non-empty 2-D matrix")
    n_rows, width = matrix.shape
    ordered = np.sort(matrix, axis=1)
    change = np.ones((n_rows, width), dtype=bool)
    change[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    flat = change.ravel()
    starts = np.flatnonzero(flat)
    run_lengths = np.diff(np.append(starts, flat.size))
    row_of_run = starts // width
    p = run_lengths / width
    contributions = -p * np.log2(p)
    entropies = np.zeros(n_rows)
    np.add.at(entropies, row_of_run, contributions)
    return entropies


def _uniform_picks_excluding_self(
    rng: np.random.Generator, n_system: int, n_rows: int, picks: int
) -> np.ndarray:
    """(n_rows, picks) uniform picks in [0, n_system) excluding the row's
    own id (rows are identified with nodes 0..n_rows-1)."""
    raw = rng.integers(0, n_system - 1, size=(n_rows, picks), dtype=np.int64)
    own = np.arange(n_rows, dtype=np.int64)[:, None]
    return raw + (raw >= own)


def sample_fanout_entropies(
    rng: np.random.Generator,
    n_system: int,
    history_picks: int,
    n_samples: Optional[int] = None,
) -> np.ndarray:
    """Entropies of ``n_samples`` honest fanout histories (Figure 13a).

    ``history_picks`` is ``n_h · f`` (600 in the paper).
    """
    require(n_system >= 2, "n_system must be >= 2")
    require(history_picks >= 1, "history_picks must be >= 1")
    rows = n_system if n_samples is None else n_samples
    picks = _uniform_picks_excluding_self(rng, n_system, rows, history_picks)
    return row_entropies(picks)


def sample_fanin_entropies(
    rng: np.random.Generator,
    n_system: int,
    history_picks: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Entropies and sizes of every node's fanin multiset (Figure 13b).

    Simulates all ``n`` nodes making ``n_h·f`` uniform picks and inverts
    them: node ``i``'s fanin is the multiset of pickers that chose it.
    Returns ``(entropies, sizes)`` for nodes with non-empty fanin.
    """
    require(n_system >= 2, "n_system must be >= 2")
    picks = _uniform_picks_excluding_self(rng, n_system, n_system, history_picks)
    senders = np.repeat(np.arange(n_system, dtype=np.int64), history_picks)
    picked = picks.ravel()

    # Count each (picked, sender) pair via one sort, then fold pair
    # counts into per-picked entropies.
    keys = picked * n_system + senders
    keys.sort()
    change = np.ones(keys.size, dtype=bool)
    change[1:] = keys[1:] != keys[:-1]
    starts = np.flatnonzero(change)
    pair_counts = np.diff(np.append(starts, keys.size))
    pair_picked = (keys[starts] // n_system).astype(np.int64)

    totals = np.bincount(picked, minlength=n_system).astype(float)
    p = pair_counts / totals[pair_picked]
    contributions = -p * np.log2(p)
    entropies = np.zeros(n_system)
    np.add.at(entropies, pair_picked, contributions)

    non_empty = totals > 0
    return entropies[non_empty], totals[non_empty]


def biased_fanout_entropies(
    rng: np.random.Generator,
    n_system: int,
    history_picks: int,
    n_samples: int,
    m_colluders: int,
    bias: float,
    *,
    planned: bool = False,
) -> np.ndarray:
    """Entropies of coalition-biased histories (§6.3.2's model).

    Each pick goes to a co-colluder with probability ``bias`` (``p_m``),
    otherwise to a uniform honest node.  Colluders occupy ids
    ``[0, m_colluders)``; the sampled node is assumed honest-id-free
    (the O(1/n) self-pick bias is negligible and ignored here, as in the
    paper's analysis).

    ``planned=False`` (default) models a naive freerider sampling
    i.i.d.; finite-sample clumping costs it entropy relative to Eq. (7).
    ``planned=True`` models the paper's smartest adversary: exactly
    ``round(p_m · picks)`` colluder slots served **round-robin** ("by
    proposing chunks only to other freeriders in a round-robin manner",
    §6.3.2), which attains Eq. (7)'s entropy up to integer effects —
    this is the variant Eq. (7)'s inversion must be compared against.
    """
    require_probability(bias, "bias")
    require(1 <= m_colluders < n_system, "m_colluders must be in [1, n_system)")
    if planned:
        # Colluders served round-robin, honest picks all distinct — the
        # integer-feasible optimum (see
        # :func:`repro.analysis.entropy_analysis.achievable_collusion_entropy`).
        k = int(round(bias * history_picks))
        honest_needed = history_picks - k
        rows = []
        round_robin = np.arange(k, dtype=np.int64) % m_colluders
        honest_pool = n_system - m_colluders
        require(
            honest_needed <= honest_pool,
            "planned mode needs n - m' >= (1 - p_m) n_h f for distinct honest picks",
        )
        for _row in range(n_samples):
            honest_row = (
                rng.choice(honest_pool, size=honest_needed, replace=False) + m_colluders
            )
            rows.append(np.concatenate([round_robin, honest_row]))
        return row_entropies(np.array(rows, dtype=np.int64))
    honest = rng.integers(
        m_colluders, n_system, size=(n_samples, history_picks), dtype=np.int64
    )
    colluder_pick = rng.random(size=(n_samples, history_picks)) < bias
    colluders = rng.integers(0, m_colluders, size=(n_samples, history_picks), dtype=np.int64)
    picks = np.where(colluder_pick, colluders, honest)
    return row_entropies(picks)


def sampler_history_entropies(
    sampler,
    node_ids,
    periods: int,
    fanout: int,
) -> np.ndarray:
    """History entropies using an actual :class:`PeerSampler`.

    Drives the sampler exactly like protocol nodes would (``periods``
    samples of ``fanout`` partners per node) — used by the ablation
    comparing full membership with the gossip peer-sampling service,
    whose views are not perfectly uniform.
    """
    histories = []
    for node in node_ids:
        picks: list = []
        for _period in range(periods):
            picks.extend(sampler.sample(node, fanout))
        histories.append(picks)
    width = min(len(h) for h in histories)
    require(width >= 1, "sampler produced an empty history")
    matrix = np.array([h[:width] for h in histories], dtype=np.int64)
    return row_entropies(matrix)
