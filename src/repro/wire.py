"""Wire messages with byte-accurate sizing.

(Top-level module so that :mod:`repro.core` can import message types
without triggering the :mod:`repro.gossip` package initialisation —
the protocol node there imports :mod:`repro.core` in turn.)

Message sizes drive the bandwidth-overhead results (Table 5), so each
message computes its wire size from realistic field encodings:

* datagram header (IP + UDP): 28 bytes; stream header (IP + TCP): 40;
* 1-byte message type tag;
* 4-byte chunk ids, 4-byte proposal ids, 6-byte node addresses
  (IPv4 + port), 4-byte blame values / scores.

Categories (``data`` / ``verification`` / ``reputation`` / ``control``)
feed the :class:`~repro.sim.trace.MessageTrace` accounting: Table 5's
"cross-checking and blaming overhead" is the verification+reputation
bytes divided by the data bytes.

All message classes are frozen slotted dataclasses: simulation-scale
runs hold hundreds of thousands of in-flight messages, and ``__slots__``
removes the per-instance ``__dict__``.  Classes whose wire size does not
depend on the payload declare ``WIRE_SIZE_FIXED = True`` so the network
can cache the size per message *type* instead of calling ``wire_size()``
per send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.trace import (
    CATEGORY_CONTROL,
    CATEGORY_DATA,
    CATEGORY_REPUTATION,
    CATEGORY_VERIFICATION,
)

UDP_HEADER = 28
TCP_HEADER = 40
TYPE_TAG = 1
CHUNK_ID_BYTES = 4
PROPOSAL_ID_BYTES = 4
NODE_ID_BYTES = 6
VALUE_BYTES = 4
PERIOD_BYTES = 4

NodeId = int
ChunkId = int


# ----------------------------------------------------------------------
# data path (§3)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Propose:
    """Phase 1: advertise the chunk ids received since the last period."""

    CATEGORY = CATEGORY_DATA

    proposal_id: int
    chunk_ids: Tuple[ChunkId, ...]

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + PROPOSAL_ID_BYTES + CHUNK_ID_BYTES * len(self.chunk_ids)


@dataclass(frozen=True, slots=True)
class Request:
    """Phase 2: ask the proposer for the subset of chunks needed."""

    CATEGORY = CATEGORY_DATA

    proposal_id: int
    chunk_ids: Tuple[ChunkId, ...]

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + PROPOSAL_ID_BYTES + CHUNK_ID_BYTES * len(self.chunk_ids)


@dataclass(frozen=True, slots=True)
class Serve:
    """Phase 3: deliver one requested chunk.

    ``origin`` is the node the receiver should consider the chunk's
    sender — honest nodes set it to themselves; a man-in-the-middle
    colluder spoofs it (§5.2, Figure 8b) so that the receiver's acks and
    fanin bookkeeping point at the colluding third party.
    """

    CATEGORY = CATEGORY_DATA

    proposal_id: int
    chunk_id: ChunkId
    payload_size: int
    origin: NodeId

    def wire_size(self) -> int:
        return (
            UDP_HEADER
            + TYPE_TAG
            + PROPOSAL_ID_BYTES
            + CHUNK_ID_BYTES
            + NODE_ID_BYTES
            + self.payload_size
        )


# ----------------------------------------------------------------------
# direct cross-checking (§5.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Ack:
    """``ack[i](partners)`` — sent by a receiver to each node that served
    it, after its propose phase: "I proposed your chunks to these
    partners"."""

    CATEGORY = CATEGORY_VERIFICATION

    chunk_ids: Tuple[ChunkId, ...]
    partners: Tuple[NodeId, ...]

    def wire_size(self) -> int:
        return (
            UDP_HEADER
            + TYPE_TAG
            + CHUNK_ID_BYTES * len(self.chunk_ids)
            + NODE_ID_BYTES * len(self.partners)
        )


@dataclass(frozen=True, slots=True)
class Confirm:
    """``confirm[i](p1)`` — the verifier asks a witness whether
    ``proposer`` really proposed ``chunk_ids`` to it."""

    CATEGORY = CATEGORY_VERIFICATION

    proposer: NodeId
    chunk_ids: Tuple[ChunkId, ...]

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES + CHUNK_ID_BYTES * len(self.chunk_ids)


@dataclass(frozen=True, slots=True)
class ConfirmResponse:
    """Witness answer: did the proposal arrive and include the chunks?"""

    CATEGORY = CATEGORY_VERIFICATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    proposer: NodeId
    valid: bool

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES + 1


# ----------------------------------------------------------------------
# reputation (§5.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Blame:
    """A blame of ``value`` against ``target``, sent to its managers."""

    CATEGORY = CATEGORY_REPUTATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    target: NodeId
    value: float
    reason: str = ""

    def wire_size(self) -> int:
        # The reason string is diagnostic only and is not serialised.
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES + VALUE_BYTES


@dataclass(frozen=True, slots=True)
class ScoreQuery:
    """Ask a manager for its copy of ``target``'s score."""

    CATEGORY = CATEGORY_REPUTATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    target: NodeId

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES


@dataclass(frozen=True, slots=True)
class ScoreReply:
    """A manager's reply to a :class:`ScoreQuery`."""

    CATEGORY = CATEGORY_REPUTATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    target: NodeId
    score: float
    known: bool

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES + VALUE_BYTES + 1


@dataclass(frozen=True, slots=True)
class ExpelVote:
    """A manager's vote (to its co-managers) that ``target`` be expelled."""

    CATEGORY = CATEGORY_REPUTATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    target: NodeId
    reason: str = "score"

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + NODE_ID_BYTES + 1


# ----------------------------------------------------------------------
# local history auditing (§5.3) — runs over TCP
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AuditRequest:
    """Ask the target for its history of the last ``periods`` periods."""

    CATEGORY = CATEGORY_VERIFICATION
    WIRE_SIZE_FIXED = True  # payload-independent: the network caches it per type

    periods: int

    def wire_size(self) -> int:
        return TCP_HEADER + TYPE_TAG + PERIOD_BYTES


@dataclass(frozen=True, slots=True)
class AuditResponse:
    """The audited node's (possibly forged) history snapshot.

    ``proposals`` maps period index to ``(partners, chunk_ids)`` of the
    propose event of that period (empty tuple when none).
    """

    CATEGORY = CATEGORY_VERIFICATION

    proposals: Tuple[Tuple[int, Tuple[NodeId, ...], Tuple[ChunkId, ...]], ...]

    def wire_size(self) -> int:
        size = TCP_HEADER + TYPE_TAG
        for _period, partners, chunk_ids in self.proposals:
            size += (
                PERIOD_BYTES
                + NODE_ID_BYTES * len(partners)
                + CHUNK_ID_BYTES * len(chunk_ids)
            )
        return size


@dataclass(frozen=True, slots=True)
class HistoryPollRequest:
    """A-posteriori cross-check: "did ``target`` propose these chunks to
    you around ``period``, and who asked you to confirm its proposals?"
    """

    CATEGORY = CATEGORY_VERIFICATION

    target: NodeId
    period: int
    chunk_ids: Tuple[ChunkId, ...]

    def wire_size(self) -> int:
        return (
            TCP_HEADER
            + TYPE_TAG
            + NODE_ID_BYTES
            + PERIOD_BYTES
            + CHUNK_ID_BYTES * len(self.chunk_ids)
        )


@dataclass(frozen=True, slots=True)
class HistoryPollResponse:
    """Witness answer to a :class:`HistoryPollRequest`.

    ``confirm_senders`` is the witness's log of nodes that sent it
    ``Confirm`` messages about the target — the raw material of the
    fanin multiset ``F'_h`` (§5.3).
    """

    CATEGORY = CATEGORY_VERIFICATION

    target: NodeId
    period: int
    acknowledged: bool
    confirm_senders: Tuple[NodeId, ...]

    def wire_size(self) -> int:
        return (
            TCP_HEADER
            + TYPE_TAG
            + NODE_ID_BYTES
            + PERIOD_BYTES
            + 1
            + NODE_ID_BYTES * len(self.confirm_senders)
        )


# ----------------------------------------------------------------------
# SWIM-style failure detection (membership plane)
# ----------------------------------------------------------------------
#: A piggybacked membership update is ``(rank, node, incarnation)`` —
#: 1-byte status rank, node address, 4-byte incarnation counter.
UPDATE_BYTES = 1 + NODE_ID_BYTES + 4

Update = Tuple[int, NodeId, int]


@dataclass(frozen=True, slots=True)
class Ping:
    """Direct liveness probe; carries the prober's incarnation plus a
    bounded batch of piggybacked membership updates."""

    CATEGORY = CATEGORY_CONTROL

    seq: int
    incarnation: int
    updates: Tuple[Update, ...]

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + 4 + 4 + UPDATE_BYTES * len(self.updates)


@dataclass(frozen=True, slots=True)
class PingAck:
    """Answer to a :class:`Ping`; ``target`` names the node vouched for
    (itself on a direct ack, the probed node on a relayed one)."""

    CATEGORY = CATEGORY_CONTROL

    seq: int
    target: NodeId
    incarnation: int
    updates: Tuple[Update, ...]

    def wire_size(self) -> int:
        return (
            UDP_HEADER
            + TYPE_TAG
            + 4
            + NODE_ID_BYTES
            + 4
            + UPDATE_BYTES * len(self.updates)
        )


@dataclass(frozen=True, slots=True)
class PingReq:
    """Indirect probe: ask a proxy to ping ``target`` on our behalf
    (SWIM's ping-req, defeating path asymmetry and local loss)."""

    CATEGORY = CATEGORY_CONTROL

    seq: int
    target: NodeId
    incarnation: int
    updates: Tuple[Update, ...]

    def wire_size(self) -> int:
        return (
            UDP_HEADER
            + TYPE_TAG
            + 4
            + NODE_ID_BYTES
            + 4
            + UPDATE_BYTES * len(self.updates)
        )


@dataclass(frozen=True, slots=True)
class MembershipUpdate:
    """Pure dissemination rider: membership updates piggybacked on the
    propose fan-out when there is no probe to carry them."""

    CATEGORY = CATEGORY_CONTROL

    updates: Tuple[Update, ...]

    def wire_size(self) -> int:
        return UDP_HEADER + TYPE_TAG + UPDATE_BYTES * len(self.updates)


#: Every wire message class, in declaration order.  The protocol node
#: pre-seeds its dispatch table with all of them (absent handlers map to
#: ``None``) so the network's delivery drain resolves handlers with a
#: plain subscript that can only miss for non-protocol message types.
WIRE_MESSAGE_CLASSES = (
    Propose,
    Request,
    Serve,
    Ack,
    Confirm,
    ConfirmResponse,
    Blame,
    ScoreQuery,
    ScoreReply,
    ExpelVote,
    AuditRequest,
    AuditResponse,
    HistoryPollRequest,
    HistoryPollResponse,
    Ping,
    PingAck,
    PingReq,
    MembershipUpdate,
)
