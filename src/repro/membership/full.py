"""Full-membership directory with uniform sampling.

Keeps the alive set as an array with O(1) swap-remove, and samples
``count`` distinct partners by partial Fisher–Yates — O(count) per call
regardless of system size, which matters when every node samples every
500 ms.

The reverse index (node -> position in the alive array) has two
layouts.  Simulation node ids are small contiguous ints, so the default
is a dense list indexed by node id (-1 == absent): membership probes on
the sampling hot path are a list index instead of a dict hash, and the
index costs one machine int per id instead of a dict entry.  A non-int
or pathological id demotes the directory to the dict layout for good —
behaviour is identical, only the constant changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.membership.base import NodeId, PeerSampler
from repro.util.validation import require

#: Ids at or above this never get a dense slot (a stray huge id must
#: not allocate gigabytes of index); the directory falls back to the
#: dict layout instead.
_DENSE_ID_LIMIT = 1_048_576


class FullMembership(PeerSampler):
    """Uniform sampling over an explicitly known node population.

    >>> import numpy as np
    >>> fm = FullMembership(np.random.default_rng(0), range(10))
    >>> partners = fm.sample(caller=3, count=4)
    >>> len(partners) == 4 and 3 not in partners and len(set(partners)) == 4
    True
    """

    def __init__(self, rng: np.random.Generator, nodes: Iterable[NodeId]) -> None:
        self._rng = rng
        self._nodes: List[NodeId] = list(nodes)
        require(len(set(self._nodes)) == len(self._nodes), "duplicate node ids")
        self._index: Optional[Dict[NodeId, int]] = None
        self._pos: Optional[List[int]] = None
        if all(
            type(node) is int and 0 <= node < _DENSE_ID_LIMIT for node in self._nodes
        ):
            pos = [-1] * ((max(self._nodes) + 1) if self._nodes else 0)
            for i, node in enumerate(self._nodes):
                pos[node] = i
            self._pos = pos
        else:
            self._index = {node: i for i, node in enumerate(self._nodes)}

    def _demote_to_dict(self) -> None:
        """Switch to the dict index permanently (a weird id appeared)."""
        self._index = {node: i for i, node in enumerate(self._nodes)}
        self._pos = None

    def add(self, node: NodeId) -> None:
        """Add a (re)joining node."""
        pos = self._pos
        if pos is not None:
            if type(node) is int and 0 <= node < _DENSE_ID_LIMIT:
                if node >= len(pos):
                    pos.extend([-1] * (node + 1 - len(pos)))
                if pos[node] >= 0:
                    return
                pos[node] = len(self._nodes)
                self._nodes.append(node)
                return
            self._demote_to_dict()
        if node in self._index:
            return
        self._index[node] = len(self._nodes)
        self._nodes.append(node)

    def remove(self, node: NodeId) -> None:
        """Swap-remove ``node`` from the alive set (no-op if absent)."""
        pos_list = self._pos
        if pos_list is not None:
            try:
                pos = pos_list[node] if node >= 0 else -1
            except (IndexError, TypeError):
                return
            if pos < 0:
                return
            pos_list[node] = -1
            last = self._nodes.pop()
            if last != node:
                self._nodes[pos] = last
                pos_list[last] = pos
            return
        pos = self._index.pop(node, None)
        if pos is None:
            return
        last = self._nodes.pop()
        if last != node:
            self._nodes[pos] = last
            self._index[last] = pos

    def alive_nodes(self) -> Sequence[NodeId]:
        return tuple(self._nodes)

    def contains(self, node: NodeId) -> bool:
        pos = self._pos
        if pos is not None:
            try:
                return node >= 0 and pos[node] >= 0
            except (IndexError, TypeError):
                return False
        return node in self._index

    def _readmit(self, node: NodeId) -> bool:
        self.add(node)
        return True

    def __len__(self) -> int:
        return len(self._nodes)

    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """``count`` distinct uniform partners, excluding ``caller``.

        Uses a partial Fisher–Yates over the alive array; the array is
        restored afterwards so the directory stays shared between all
        nodes without copies.
        """
        require(count >= 0, "count must be >= 0, got %d", count)
        nodes = self._nodes
        population = len(nodes) - (1 if self.contains(caller) else 0)
        take = min(count, population)
        if take <= 0:
            return []

        picked: List[NodeId] = []
        swapped: List[tuple] = []
        limit = len(nodes)
        rng = self._rng
        while len(picked) < take and limit > 0:
            j = int(rng.integers(0, limit))
            candidate = nodes[j]
            limit -= 1
            nodes[j], nodes[limit] = nodes[limit], nodes[j]
            swapped.append((j, limit))
            if candidate != caller:
                picked.append(candidate)
        # Undo the swaps so that the shared array ordering (and therefore
        # other callers' sampling) is unaffected by this call.
        for j, k in reversed(swapped):
            nodes[j], nodes[k] = nodes[k], nodes[j]
        return picked
