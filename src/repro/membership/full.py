"""Full-membership directory with uniform sampling.

Keeps the alive set as an array with O(1) swap-remove, and samples
``count`` distinct partners by partial Fisher–Yates — O(count) per call
regardless of system size, which matters when every node samples every
500 ms.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.membership.base import NodeId, PeerSampler
from repro.util.validation import require


class FullMembership(PeerSampler):
    """Uniform sampling over an explicitly known node population.

    >>> import numpy as np
    >>> fm = FullMembership(np.random.default_rng(0), range(10))
    >>> partners = fm.sample(caller=3, count=4)
    >>> len(partners) == 4 and 3 not in partners and len(set(partners)) == 4
    True
    """

    def __init__(self, rng: np.random.Generator, nodes: Iterable[NodeId]) -> None:
        self._rng = rng
        self._nodes: List[NodeId] = list(nodes)
        require(len(set(self._nodes)) == len(self._nodes), "duplicate node ids")
        self._index: Dict[NodeId, int] = {node: i for i, node in enumerate(self._nodes)}

    def add(self, node: NodeId) -> None:
        """Add a (re)joining node."""
        if node in self._index:
            return
        self._index[node] = len(self._nodes)
        self._nodes.append(node)

    def remove(self, node: NodeId) -> None:
        """Swap-remove ``node`` from the alive set (no-op if absent)."""
        pos = self._index.pop(node, None)
        if pos is None:
            return
        last = self._nodes.pop()
        if last != node:
            self._nodes[pos] = last
            self._index[last] = pos

    def alive_nodes(self) -> Sequence[NodeId]:
        return tuple(self._nodes)

    def contains(self, node: NodeId) -> bool:
        return node in self._index

    def _readmit(self, node: NodeId) -> bool:
        self.add(node)
        return True

    def __len__(self) -> int:
        return len(self._nodes)

    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """``count`` distinct uniform partners, excluding ``caller``.

        Uses a partial Fisher–Yates over the alive array; the array is
        restored afterwards so the directory stays shared between all
        nodes without copies.
        """
        require(count >= 0, "count must be >= 0, got %d", count)
        nodes = self._nodes
        population = len(nodes) - (1 if caller in self._index else 0)
        take = min(count, population)
        if take <= 0:
            return []

        picked: List[NodeId] = []
        swapped: List[tuple] = []
        limit = len(nodes)
        rng = self._rng
        while len(picked) < take and limit > 0:
            j = int(rng.integers(0, limit))
            candidate = nodes[j]
            limit -= 1
            nodes[j], nodes[limit] = nodes[limit], nodes[j]
            swapped.append((j, limit))
            if candidate != caller:
                picked.append(candidate)
        # Undo the swaps so that the shared array ordering (and therefore
        # other callers' sampling) is unaffected by this call.
        for j, k in reversed(swapped):
            nodes[j], nodes[k] = nodes[k], nodes[j]
        return picked
