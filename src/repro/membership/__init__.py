"""Membership and random peer sampling.

The system model (§2) assumes every node can pick a uniformly random set
of nodes, "usually achieved using full membership or a random peer
sampling protocol [13, 18]".  We provide both:

* :class:`~repro.membership.full.FullMembership` — a shared directory
  with uniform sampling and expulsion support; this is what the paper's
  entropy thresholds (Figure 13) are calibrated against.
* :class:`~repro.membership.rps.GossipPeerSampling` — a decentralised
  view-shuffling peer-sampling service in the style of Jelasity et al.
  [13]; its slightly less uniform samples shrink the entropy headroom,
  which the ablation benchmark measures.
"""

from repro.membership.base import (
    PeerSampler,
    STATUS_ALIVE,
    STATUS_DEAD,
    STATUS_EXPELLED,
    STATUS_LEFT,
    STATUS_SUSPECT,
)
from repro.membership.failure_detector import (
    ChurnMonitor,
    FailureDetectorParams,
    SwimFailureDetector,
    apply_membership_event,
)
from repro.membership.full import FullMembership
from repro.membership.rps import GossipPeerSampling

__all__ = [
    "ChurnMonitor",
    "FailureDetectorParams",
    "FullMembership",
    "GossipPeerSampling",
    "PeerSampler",
    "STATUS_ALIVE",
    "STATUS_DEAD",
    "STATUS_EXPELLED",
    "STATUS_LEFT",
    "STATUS_SUSPECT",
    "SwimFailureDetector",
    "apply_membership_event",
]
