"""Gossip-based random peer sampling (view shuffling).

A decentralised alternative to the full-membership directory, in the
style of Jelasity et al., "Gossip-based Peer Sampling" (TOCS 2007)
[13]: each node keeps a small partial *view* of ``(peer, age)`` entries;
periodically it picks the oldest peer in its view, exchanges half of its
view with it, and merges the answer, evicting the oldest entries.

The service is driven by an explicit :meth:`step` — one shuffle round
for every node — so it can run under the discrete-event simulator, the
Monte-Carlo engine, or standalone.  Its samples are *close to* uniform;
the residual bias is exactly what LiFTinG's entropy threshold ``γ`` must
tolerate (§5.3: "Since the peer selection service underlying the gossip
protocol may not be perfect, the threshold must be tolerant to small
deviation"), and the peer-sampling ablation benchmark quantifies it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.membership.base import NodeId, PeerSampler
from repro.util.validation import require


class _View:
    """A node's partial view: peer -> age, bounded size."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[NodeId, int] = {}

    def peers(self) -> List[NodeId]:
        return list(self.entries.keys())

    def age_all(self) -> None:
        for peer in self.entries:
            self.entries[peer] += 1

    def oldest(self) -> NodeId:
        return max(self.entries.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def merge(self, incoming: Iterable[Tuple[NodeId, int]], owner: NodeId, size: int) -> None:
        """Merge entries, keep freshest per peer, evict oldest overflow."""
        for peer, age in incoming:
            if peer == owner:
                continue
            current = self.entries.get(peer)
            if current is None or age < current:
                self.entries[peer] = age
        while len(self.entries) > size:
            victim = self.oldest()
            del self.entries[victim]


class GossipPeerSampling(PeerSampler):
    """A shuffling peer-sampling service over a node population.

    Parameters
    ----------
    rng:
        Randomness source for bootstrap, shuffle-partner and sampling.
    nodes:
        Initial population.
    view_size:
        Entries per view (``c`` in [13]; 2–3× fanout is typical).
    shuffle_length:
        Entries exchanged per shuffle (defaults to ``view_size // 2``).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        nodes: Iterable[NodeId],
        view_size: int = 20,
        shuffle_length: int = None,
    ) -> None:
        self._rng = rng
        self._nodes: List[NodeId] = list(nodes)
        require(len(self._nodes) >= 2, "need at least 2 nodes")
        require(view_size >= 2, "view_size must be >= 2, got %d", view_size)
        self.view_size = min(view_size, len(self._nodes) - 1)
        self.shuffle_length = (
            max(1, self.view_size // 2) if shuffle_length is None else shuffle_length
        )
        require(
            1 <= self.shuffle_length <= self.view_size,
            "shuffle_length must be in [1, view_size]",
        )
        self._views: Dict[NodeId, _View] = {}
        self._alive: Dict[NodeId, bool] = {node: True for node in self._nodes}
        self._bootstrap()
        self.rounds = 0

    def _bootstrap(self) -> None:
        """Give every node a random initial view (tracker-style join)."""
        population = np.array(self._nodes)
        for node in self._nodes:
            view = _View()
            while len(view.entries) < self.view_size:
                peer = int(population[self._rng.integers(0, len(population))])
                if peer != node:
                    view.entries[peer] = 0
            self._views[node] = view

    # ------------------------------------------------------------------
    # protocol rounds
    # ------------------------------------------------------------------
    def step(self, rounds: int = 1) -> None:
        """Run ``rounds`` shuffle rounds; in each, every alive node
        initiates one exchange with the oldest peer of its view."""
        for _ in range(rounds):
            self.rounds += 1
            order = [n for n in self._nodes if self._alive[n]]
            self._rng.shuffle(order)
            for node in order:
                self._shuffle_once(node)

    def _shuffle_once(self, initiator: NodeId) -> None:
        view = self._views[initiator]
        view.age_all()
        if not view.entries:
            return
        partner = view.oldest()
        if not self._alive.get(partner, False):
            # Dead partner: drop it — the healing behaviour of [13].
            del view.entries[partner]
            if not view.entries:
                return
            partner = view.oldest()
            if not self._alive.get(partner, False):
                return
        partner_view = self._views[partner]

        to_send = self._select_exchange(view, exclude=partner)
        to_reply = self._select_exchange(partner_view, exclude=initiator)

        # The initiator advertises itself with age 0 (the "push" part).
        partner_view.merge(
            list(to_send) + [(initiator, 0)], owner=partner, size=self.view_size
        )
        del view.entries[partner]
        view.merge(list(to_reply) + [(partner, 0)], owner=initiator, size=self.view_size)

    def _select_exchange(self, view: _View, exclude: NodeId) -> List[Tuple[NodeId, int]]:
        candidates = [(p, a) for p, a in view.entries.items() if p != exclude]
        if len(candidates) <= self.shuffle_length:
            return candidates
        idx = self._rng.choice(len(candidates), size=self.shuffle_length, replace=False)
        return [candidates[int(i)] for i in idx]

    # ------------------------------------------------------------------
    # PeerSampler interface
    # ------------------------------------------------------------------
    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """Distinct partners drawn from the caller's current view."""
        require(count >= 0, "count must be >= 0, got %d", count)
        view = self._views.get(caller)
        if view is None:
            return []
        peers = [p for p in view.peers() if self._alive.get(p, False)]
        if not peers:
            return []
        take = min(count, len(peers))
        idx = self._rng.choice(len(peers), size=take, replace=False)
        return [peers[int(i)] for i in idx]

    def remove(self, node: NodeId) -> None:
        if node in self._alive:
            self._alive[node] = False

    def alive_nodes(self) -> Sequence[NodeId]:
        return tuple(n for n in self._nodes if self._alive[n])

    def view_of(self, node: NodeId) -> List[NodeId]:
        """The current partial view of ``node`` (for tests/metrics)."""
        return self._views[node].peers()

    def indegree_distribution(self) -> Dict[NodeId, int]:
        """How many views each node appears in — uniformity diagnostic."""
        counts: Dict[NodeId, int] = {node: 0 for node in self._nodes}
        for owner, view in self._views.items():
            if not self._alive[owner]:
                continue
            for peer in view.entries:
                if peer in counts:
                    counts[peer] += 1
        return counts
