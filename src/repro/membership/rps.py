"""Gossip-based random peer sampling (view shuffling).

A decentralised alternative to the full-membership directory, in the
style of Jelasity et al., "Gossip-based Peer Sampling" (TOCS 2007)
[13]: each node keeps a small partial *view* of ``(peer, age)`` entries;
periodically it picks the oldest peer in its view, exchanges half of its
view with it, and merges the answer, evicting the oldest entries.

The service is driven by an explicit :meth:`step` — one shuffle round
for every node — so it can run under the discrete-event simulator, the
Monte-Carlo engine, or standalone.  Its samples are *close to* uniform;
the residual bias is exactly what LiFTinG's entropy threshold ``γ`` must
tolerate (§5.3: "Since the peer selection service underlying the gossip
protocol may not be perfect, the threshold must be tolerant to small
deviation"), and the peer-sampling ablation benchmark quantifies it.

Two engines implement the same protocol:

* **vectorized** (the default): views live in preallocated numpy id/age
  matrices (``-1`` marks an empty slot).  Aging is batched — one
  ``ages += 1`` pass over all alive views per round instead of a
  per-entry dict update per shuffle — oldest-peer selection is an
  ``argmax`` over the view row, and merge-evict is a single
  sort/dedupe/partition pass instead of per-entry dict writes with a
  repeated linear-scan eviction.  Node ids must be non-negative ints.
* **scalar** (``vectorized=False``): the original per-node dict views,
  kept as the executable reference; the uniformity regression test
  (``tests/membership/test_rps.py``) pins the vectorized engine's
  sampling statistics against it.

The engines make the same *kinds* of RNG draws but not the same
sequence, and batched aging shifts when mid-round merged entries age,
so individual runs differ; their stationary view statistics are
equivalent (that is what the regression test asserts).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.membership.base import NodeId, PeerSampler
from repro.util.validation import require


class _View:
    """A node's partial view: peer -> age, bounded size (scalar engine)."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[NodeId, int] = {}

    def peers(self) -> List[NodeId]:
        return list(self.entries.keys())

    def age_all(self) -> None:
        # One bulk rebuild instead of a per-key ``entries[peer] += 1``
        # loop: a fresh dict built in C from a comprehension is cheaper
        # than len(entries) hash-probe read-modify-writes.
        self.entries = {peer: age + 1 for peer, age in self.entries.items()}

    def oldest(self) -> NodeId:
        return max(self.entries.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def merge(self, incoming: Iterable[Tuple[NodeId, int]], owner: NodeId, size: int) -> None:
        """Merge entries, keep freshest per peer, evict oldest overflow."""
        for peer, age in incoming:
            if peer == owner:
                continue
            current = self.entries.get(peer)
            if current is None or age < current:
                self.entries[peer] = age
        while len(self.entries) > size:
            victim = self.oldest()
            del self.entries[victim]


class GossipPeerSampling(PeerSampler):
    """A shuffling peer-sampling service over a node population.

    Parameters
    ----------
    rng:
        Randomness source for bootstrap, shuffle-partner and sampling.
    nodes:
        Initial population.
    view_size:
        Entries per view (``c`` in [13]; 2–3× fanout is typical).
    shuffle_length:
        Entries exchanged per shuffle (defaults to ``view_size // 2``).
    vectorized:
        Use the numpy array engine (default).  Requires non-negative
        integer node ids; pass False for the scalar dict reference.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        nodes: Iterable[NodeId],
        view_size: int = 20,
        shuffle_length: int = None,
        vectorized: bool = True,
    ) -> None:
        self._rng = rng
        self._nodes: List[NodeId] = list(nodes)
        require(len(self._nodes) >= 2, "need at least 2 nodes")
        require(view_size >= 2, "view_size must be >= 2, got %d", view_size)
        self.view_size = min(view_size, len(self._nodes) - 1)
        self.shuffle_length = (
            max(1, self.view_size // 2) if shuffle_length is None else shuffle_length
        )
        require(
            1 <= self.shuffle_length <= self.view_size,
            "shuffle_length must be in [1, view_size]",
        )
        self.vectorized = vectorized
        self._alive: Dict[NodeId, bool] = {node: True for node in self._nodes}
        self.rounds = 0
        if vectorized:
            require(
                all(isinstance(n, (int, np.integer)) and n >= 0 for n in self._nodes),
                "vectorized peer sampling requires non-negative integer node ids",
            )
            self._row: Dict[NodeId, int] = {n: i for i, n in enumerate(self._nodes)}
            count = len(self._nodes)
            #: view matrices; ids == -1 marks an empty slot.
            self._ids = np.full((count, self.view_size), -1, dtype=np.int64)
            self._ages = np.zeros((count, self.view_size), dtype=np.int64)
            self._alive_rows = np.ones(count, dtype=bool)
            #: id-key multiplier for (age, id) lexicographic argmax.
            self._id_bound = int(max(self._nodes)) + 1
            self._bootstrap_vectorized()
        else:
            self._views: Dict[NodeId, _View] = {}
            self._bootstrap()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Give every node a random initial view (tracker-style join)."""
        population = np.array(self._nodes)
        for node in self._nodes:
            view = _View()
            while len(view.entries) < self.view_size:
                peer = int(population[self._rng.integers(0, len(population))])
                if peer != node:
                    view.entries[peer] = 0
            self._views[node] = view

    def _bootstrap_vectorized(self) -> None:
        """Same tracker-style join, filling the id matrix row by row."""
        population = np.array(self._nodes)
        size = self.view_size
        for row, node in enumerate(self._nodes):
            chosen: Dict[NodeId, None] = {}
            while len(chosen) < size:
                peer = int(population[self._rng.integers(0, len(population))])
                if peer != node:
                    chosen[peer] = None
            self._ids[row] = np.fromiter(chosen.keys(), dtype=np.int64, count=size)

    # ------------------------------------------------------------------
    # protocol rounds
    # ------------------------------------------------------------------
    def step(self, rounds: int = 1) -> None:
        """Run ``rounds`` shuffle rounds; in each, every alive node
        initiates one exchange with the oldest peer of its view."""
        for _ in range(rounds):
            self.rounds += 1
            order = [n for n in self._nodes if self._alive[n]]
            self._rng.shuffle(order)
            if self.vectorized:
                # Batched aging: every alive node's whole view ages once
                # per round in a single matrix pass (the scalar engine
                # ages per shuffle; see the module docstring).
                rows = self._alive_rows
                self._ages[rows] += self._ids[rows] >= 0
                for node in order:
                    self._shuffle_once_vectorized(node)
            else:
                for node in order:
                    self._shuffle_once(node)

    # ------------------------------------------------------------------
    # scalar engine
    # ------------------------------------------------------------------
    def _shuffle_once(self, initiator: NodeId) -> None:
        view = self._views[initiator]
        view.age_all()
        if not view.entries:
            return
        partner = view.oldest()
        if not self._alive.get(partner, False):
            # Dead partner: drop it — the healing behaviour of [13].
            del view.entries[partner]
            if not view.entries:
                return
            partner = view.oldest()
            if not self._alive.get(partner, False):
                return
        partner_view = self._views[partner]

        to_send = self._select_exchange(view, exclude=partner)
        to_reply = self._select_exchange(partner_view, exclude=initiator)

        # The initiator advertises itself with age 0 (the "push" part).
        partner_view.merge(
            list(to_send) + [(initiator, 0)], owner=partner, size=self.view_size
        )
        del view.entries[partner]
        view.merge(list(to_reply) + [(partner, 0)], owner=initiator, size=self.view_size)

    def _select_exchange(self, view: _View, exclude: NodeId) -> List[Tuple[NodeId, int]]:
        candidates = [(p, a) for p, a in view.entries.items() if p != exclude]
        if len(candidates) <= self.shuffle_length:
            return candidates
        idx = self._rng.choice(len(candidates), size=self.shuffle_length, replace=False)
        return [candidates[int(i)] for i in idx]

    # ------------------------------------------------------------------
    # vectorized engine
    # ------------------------------------------------------------------
    def _oldest_slot(self, row: int) -> int:
        """Slot index of the (age, id)-max entry of ``row`` (-1: empty)."""
        ids = self._ids[row]
        valid = ids >= 0
        if not valid.any():
            return -1
        key = self._ages[row] * self._id_bound + ids
        key = np.where(valid, key, -1)
        return int(np.argmax(key))

    def _shuffle_once_vectorized(self, initiator: NodeId) -> None:
        row = self._row[initiator]
        slot = self._oldest_slot(row)
        if slot < 0:
            return
        ids_row = self._ids[row]
        partner = int(ids_row[slot])
        if not self._alive.get(partner, False):
            ids_row[slot] = -1  # healing: drop the dead entry
            slot = self._oldest_slot(row)
            if slot < 0:
                return
            partner = int(ids_row[slot])
            if not self._alive.get(partner, False):
                return
        partner_row = self._row[partner]

        send_ids, send_ages = self._select_exchange_vectorized(row, exclude=partner)
        reply_ids, reply_ages = self._select_exchange_vectorized(
            partner_row, exclude=initiator
        )

        # The initiator advertises itself with age 0 (the "push" part).
        self._merge_vectorized(
            partner_row,
            np.append(send_ids, initiator),
            np.append(send_ages, 0),
            owner=partner,
        )
        ids_row[slot] = -1  # hand the partner entry over before merging
        self._merge_vectorized(
            row,
            np.append(reply_ids, partner),
            np.append(reply_ages, 0),
            owner=initiator,
        )

    def _select_exchange_vectorized(self, row: int, exclude: NodeId):
        ids = self._ids[row]
        mask = (ids >= 0) & (ids != exclude)
        candidate_slots = np.flatnonzero(mask)
        if candidate_slots.size > self.shuffle_length:
            picks = self._rng.choice(
                candidate_slots.size, size=self.shuffle_length, replace=False
            )
            candidate_slots = candidate_slots[picks]
        return ids[candidate_slots], self._ages[row][candidate_slots]

    def _merge_vectorized(self, row: int, incoming_ids, incoming_ages, owner: NodeId) -> None:
        """Merge-evict in one pass: keep the freshest entry per peer,
        then keep the ``view_size`` entries with the smallest (age, id)
        keys — exactly the scalar engine's repeated oldest-eviction,
        collapsed into a single partition."""
        ids_row = self._ids[row]
        ages_row = self._ages[row]
        valid = ids_row >= 0
        all_ids = np.concatenate([ids_row[valid], incoming_ids])
        all_ages = np.concatenate([ages_row[valid], incoming_ages])
        keep = all_ids != owner
        all_ids = all_ids[keep]
        all_ages = all_ages[keep]
        # Freshest per peer: sort by (id, age) and keep each id's first.
        order = np.lexsort((all_ages, all_ids))
        sorted_ids = all_ids[order]
        sorted_ages = all_ages[order]
        first = np.empty(sorted_ids.size, dtype=bool)
        if sorted_ids.size:
            first[0] = True
            first[1:] = sorted_ids[1:] != sorted_ids[:-1]
        unique_ids = sorted_ids[first]
        unique_ages = sorted_ages[first]
        size = self.view_size
        if unique_ids.size > size:
            key = unique_ages * self._id_bound + unique_ids
            keep_idx = np.argpartition(key, size - 1)[:size]
            unique_ids = unique_ids[keep_idx]
            unique_ages = unique_ages[keep_idx]
        count = unique_ids.size
        ids_row[:count] = unique_ids
        ages_row[:count] = unique_ages
        ids_row[count:] = -1
        ages_row[count:] = 0

    # ------------------------------------------------------------------
    # PeerSampler interface
    # ------------------------------------------------------------------
    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """Distinct partners drawn from the caller's current view."""
        require(count >= 0, "count must be >= 0, got %d", count)
        if self.vectorized:
            row = self._row.get(caller)
            if row is None:
                return []
            alive = self._alive
            peers = [int(p) for p in self._ids[row] if p >= 0 and alive.get(int(p), False)]
        else:
            view = self._views.get(caller)
            if view is None:
                return []
            peers = [p for p in view.peers() if self._alive.get(p, False)]
        if not peers:
            return []
        take = min(count, len(peers))
        idx = self._rng.choice(len(peers), size=take, replace=False)
        return [peers[int(i)] for i in idx]

    def remove(self, node: NodeId) -> None:
        if node in self._alive:
            self._alive[node] = False
            if self.vectorized:
                self._alive_rows[self._row[node]] = False

    def contains(self, node: NodeId) -> bool:
        return self._alive.get(node, False)

    def _readmit(self, node: NodeId) -> bool:
        # A decentralised service only knows nodes it has bootstrapped;
        # strangers must join through the tracker, not via readmit.
        if node not in self._alive:
            return False
        self._alive[node] = True
        if self.vectorized:
            self._alive_rows[self._row[node]] = True
        return True

    def alive_nodes(self) -> Sequence[NodeId]:
        return tuple(n for n in self._nodes if self._alive[n])

    def view_of(self, node: NodeId) -> List[NodeId]:
        """The current partial view of ``node`` (for tests/metrics)."""
        if self.vectorized:
            return [int(p) for p in self._ids[self._row[node]] if p >= 0]
        return self._views[node].peers()

    def indegree_distribution(self) -> Dict[NodeId, int]:
        """How many views each node appears in — uniformity diagnostic."""
        counts: Dict[NodeId, int] = {node: 0 for node in self._nodes}
        if self.vectorized:
            alive_ids = self._ids[self._alive_rows]
            present = alive_ids[alive_ids >= 0]
            binned = np.bincount(present.astype(np.intp))
            for node in np.flatnonzero(binned):
                node = int(node)
                if node in counts:
                    counts[node] = int(binned[node])
            return counts
        for owner, view in self._views.items():
            if not self._alive[owner]:
                continue
            for peer in view.entries:
                if peer in counts:
                    counts[peer] += 1
        return counts
