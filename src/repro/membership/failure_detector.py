"""SWIM-style failure detection shared by both planes.

LiFTinG's blame machinery cannot tell a freerider from a node that
merely crashed: both go silent, both accrue blames, and an honest
restart could be expelled — the wrongful-expulsion axis of
``analysis/wrongful_blames.py``.  This module supplies the missing
signal: a churn detector in the style of SWIM (Das et al., DSN 2002)
that distinguishes *suspected* nodes (possibly down, possibly slow)
from *confirmed-dead* ones, so the reputation layer can quarantine
blames during the ambiguous window (see
:meth:`repro.core.reputation.ReputationManager.quarantine_target`).

Protocol per gossip period, per node:

1. **Probe** — ping one sampled peer; on ack-timeout, ask ``k`` sampled
   proxies to ping it on our behalf (``PingReq``); if no direct or
   relayed ack arrives, suspect the target.
2. **Suspicion** — a suspected node stays *sampleable* (messages still
   reach it) and has ``suspicion_periods`` gossip periods to refute by
   bumping its incarnation number.  Unrefuted suspicion becomes
   confirmed death.
3. **Dissemination** — state changes ride as bounded
   ``(rank, node, incarnation)`` piggybacks on every probe message and
   on the existing propose fan-out (``MembershipUpdate``), SWIM's
   infection-style broadcast at zero extra round trips.

Update precedence is lexicographic on ``(incarnation, rank)`` with
ranks alive(0) < suspect(1) < left(2) < dead(3): within one incarnation
bad news beats good news; a bumped incarnation (only the node itself
can bump — that *is* the refutation) beats everything older.

The detector is plane-agnostic: it talks to its host through the same
``send`` / ``call_later`` / ``clock`` surface that
:class:`~repro.gossip.protocol.SimTransport` and the live
``AsyncTransport`` both provide, and all timeouts are expressed in
gossip-period units so one parameter set works at any timescale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.membership.base import (
    NodeId,
    STATUS_ALIVE,
    STATUS_DEAD,
    STATUS_LEFT,
    STATUS_SUSPECT,
)
from repro.util.validation import require
from repro.wire import MembershipUpdate, Ping, PingAck, PingReq

#: Wire-encoded status ranks; order encodes within-incarnation
#: precedence (see module docstring).
RANK_ALIVE = 0
RANK_SUSPECT = 1
RANK_LEFT = 2
RANK_DEAD = 3

STATUS_OF_RANK = {
    RANK_ALIVE: STATUS_ALIVE,
    RANK_SUSPECT: STATUS_SUSPECT,
    RANK_LEFT: STATUS_LEFT,
    RANK_DEAD: STATUS_DEAD,
}


@dataclass(frozen=True)
class FailureDetectorParams:
    """Detector tuning; all timeouts are in *gossip periods* so the
    same parameters work on the simulator (T_g = 0.5 s) and the live
    loopback cluster (T_g = 0.25 s).

    ping_timeout:
        Direct-ack wait before falling back to proxies.
    indirect_timeout:
        Relayed-ack wait before raising suspicion.  ``ping_timeout +
        indirect_timeout`` should stay below 1.0 so a probe resolves
        within its own period.
    proxies:
        ``k`` ping-req relays per failed direct probe.
    suspicion_periods:
        Refutation window before a suspect is confirmed dead.
    retransmit:
        How many carrier messages each update rides on before it is
        dropped from the piggyback outbox (SWIM's λ log n retransmit).
    max_piggyback:
        Update budget per carrier message.
    """

    ping_timeout: float = 0.35
    indirect_timeout: float = 0.5
    proxies: int = 3
    suspicion_periods: float = 8.0
    retransmit: int = 10
    max_piggyback: int = 8

    def __post_init__(self) -> None:
        require(self.ping_timeout > 0.0, "ping_timeout must be > 0")
        require(self.indirect_timeout > 0.0, "indirect_timeout must be > 0")
        require(self.proxies >= 0, "proxies must be >= 0")
        require(self.suspicion_periods > 0.0, "suspicion_periods must be > 0")
        require(self.retransmit >= 1, "retransmit must be >= 1")
        require(self.max_piggyback >= 1, "max_piggyback must be >= 1")


class SwimFailureDetector:
    """One node's failure-detector component.

    Owned by a :class:`~repro.gossip.protocol.GossipNode` the way the
    verification engine is: it shares the host's transport, sampler and
    period timer, and reports local state transitions through
    ``on_change(node, status, incarnation)``.
    """

    __slots__ = (
        "host",
        "params",
        "on_change",
        "incarnation",
        "_ping_timeout",
        "_indirect_timeout",
        "_suspicion_window",
        "_known",
        "_pending",
        "_proxied",
        "_outbox",
        "_seq",
        "_stopped",
        "_ever_started",
        "probes_sent",
        "indirect_probes",
        "suspicions_raised",
        "refutations_sent",
        "confirms",
    )

    def __init__(
        self,
        host,
        params: FailureDetectorParams,
        on_change: Optional[Callable[[NodeId, str, int], None]] = None,
    ) -> None:
        self.host = host
        self.params = params
        self.on_change = on_change
        period = host.gossip.gossip_period
        self._ping_timeout = params.ping_timeout * period
        self._indirect_timeout = params.indirect_timeout * period
        self._suspicion_window = params.suspicion_periods * period
        #: our own incarnation; bumped only by ourselves (refutation).
        self.incarnation = 0
        #: node -> [incarnation, rank, suspicion deadline]
        self._known: Dict[NodeId, List] = {}
        #: direct-probe seq -> target awaiting an ack
        self._pending: Dict[int, NodeId] = {}
        #: relayed-probe seq -> (origin, origin seq, issued at)
        self._proxied: Dict[int, Tuple[NodeId, int, float]] = {}
        #: node -> [remaining carries, rank, incarnation]; insertion
        #: order doubles as freshness (re-enqueue moves to the end).
        self._outbox: Dict[NodeId, List] = {}
        self._seq = 0
        self._stopped = True
        self._ever_started = False
        self.probes_sent = 0
        self.indirect_probes = 0
        self.suspicions_raised = 0
        self.refutations_sent = 0
        self.confirms = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """(Re)activate.  A restart bumps our incarnation so the alive
        announcement supersedes any suspect/dead verdict reached while
        we were down — the rejoin handshake."""
        if self._ever_started:
            self.incarnation += 1
            self._enqueue(RANK_ALIVE, self.host.node_id, self.incarnation)
        self._ever_started = True
        self._stopped = False

    def stop(self) -> None:
        """Deactivate; in-flight timer callbacks become no-ops."""
        self._stopped = True
        self._pending.clear()
        self._proxied.clear()

    def announce_leave(self) -> None:
        """Best-effort graceful-departure broadcast (no refutation will
        follow, so receivers evict immediately without suspicion)."""
        if self._stopped:
            return
        host = self.host
        peers = host.sampler.sample(host.node_id, host.gossip.fanout)
        if peers:
            update = (RANK_LEFT, host.node_id, self.incarnation)
            host.send_many(peers, MembershipUpdate(updates=(update,)))

    # ------------------------------------------------------------------
    # update table
    # ------------------------------------------------------------------
    def status_of(self, node: NodeId) -> str:
        entry = self._known.get(node)
        return STATUS_ALIVE if entry is None else STATUS_OF_RANK[entry[1]]

    def _enqueue(self, rank: int, node: NodeId, incarnation: int) -> None:
        outbox = self._outbox
        outbox.pop(node, None)
        outbox[node] = [self.params.retransmit, rank, incarnation]

    def drain_updates(self, first: Optional[NodeId] = None) -> Tuple[Tuple[int, NodeId, int], ...]:
        """Up to ``max_piggyback`` updates for one carrier message,
        freshest first.  When ``first`` names a node we currently
        suspect, that suspicion is always included — it is the channel
        through which the suspect learns it must refute."""
        out: List[Tuple[int, NodeId, int]] = []
        if first is not None:
            entry = self._known.get(first)
            if entry is not None and entry[1] == RANK_SUSPECT:
                out.append((RANK_SUSPECT, first, entry[0]))
        outbox = self._outbox
        if outbox:
            budget = self.params.max_piggyback
            for node in list(reversed(outbox)):
                if len(out) >= budget:
                    break
                if node == first and out and out[0][1] == first:
                    continue
                slot = outbox[node]
                out.append((slot[1], node, slot[2]))
                slot[0] -= 1
                if slot[0] <= 0:
                    del outbox[node]
        return tuple(out)

    def _apply_update(self, rank: int, node: NodeId, incarnation: int) -> bool:
        """Merge one update under the precedence rules.  Returns True
        when it changed our view (and was therefore re-disseminated)."""
        host_id = self.host.node_id
        if node == host_id:
            # Word of our own death (or suspicion) is exaggerated:
            # refute by bumping the incarnation and flooding alive.
            if rank != RANK_ALIVE and incarnation >= self.incarnation:
                self.incarnation = incarnation + 1
                self.refutations_sent += 1
                self._enqueue(RANK_ALIVE, host_id, self.incarnation)
                return True
            return False
        entry = self._known.get(node)
        if entry is None:
            if rank == RANK_ALIVE and incarnation == 0:
                return False  # the default assumption; nothing new
            entry = self._known[node] = [0, RANK_ALIVE, 0.0]
        if (incarnation, rank) <= (entry[0], entry[1]):
            return False
        old_status = STATUS_OF_RANK[entry[1]]
        entry[0] = incarnation
        entry[1] = rank
        if rank == RANK_SUSPECT:
            entry[2] = self.host.clock() + self._suspicion_window
        self._enqueue(rank, node, incarnation)
        new_status = STATUS_OF_RANK[rank]
        if new_status != old_status and self.on_change is not None:
            self.on_change(node, new_status, incarnation)
        return True

    def _apply_updates(self, updates) -> None:
        for rank, node, incarnation in updates:
            self._apply_update(rank, node, incarnation)

    # ------------------------------------------------------------------
    # the probe cycle (driven by the host's period timer)
    # ------------------------------------------------------------------
    def on_period_tick(self) -> None:
        if self._stopped:
            return
        host = self.host
        now = host.clock()
        # Expired suspicions become confirmed deaths.
        for node, entry in list(self._known.items()):
            if entry[1] == RANK_SUSPECT and now >= entry[2]:
                self.confirms += 1
                self._apply_update(RANK_DEAD, node, entry[0])
        # Forget relays whose ack can no longer arrive.
        if self._proxied:
            horizon = now - 4.0 * self._suspicion_window
            stale = [seq for seq, (_, _, t) in self._proxied.items() if t < horizon]
            for seq in stale:
                del self._proxied[seq]
        targets = host.sampler.sample(host.node_id, 1)
        if not targets:
            return
        target = targets[0]
        self._seq += 1
        seq = self._seq
        self._pending[seq] = target
        self.probes_sent += 1
        host.send(
            target,
            Ping(seq=seq, incarnation=self.incarnation, updates=self.drain_updates(first=target)),
        )
        host.call_later(self._ping_timeout, self._on_ping_timeout, seq)

    def _on_ping_timeout(self, seq: int) -> None:
        if self._stopped:
            return
        target = self._pending.get(seq)
        if target is None:
            return  # acked in time
        host = self.host
        proxies = [
            p
            for p in host.sampler.sample(host.node_id, self.params.proxies + 1)
            if p != target
        ][: self.params.proxies]
        if proxies:
            self.indirect_probes += 1
            host.send_many(
                proxies,
                PingReq(
                    seq=seq,
                    target=target,
                    incarnation=self.incarnation,
                    updates=self.drain_updates(),
                ),
            )
        host.call_later(self._indirect_timeout, self._on_probe_failed, seq)

    def _on_probe_failed(self, seq: int) -> None:
        if self._stopped:
            return
        target = self._pending.pop(seq, None)
        if target is None:
            return  # a relayed ack landed during the indirect wait
        entry = self._known.get(target)
        incarnation = entry[0] if entry is not None else 0
        if self._apply_update(RANK_SUSPECT, target, incarnation):
            self.suspicions_raised += 1

    # ------------------------------------------------------------------
    # message handlers (wired into the host's dispatch table)
    # ------------------------------------------------------------------
    def on_ping(self, src: NodeId, message: Ping) -> None:
        if self._stopped:
            return
        self._apply_updates(message.updates)
        self._apply_update(RANK_ALIVE, src, message.incarnation)
        self.host.send(
            src,
            PingAck(
                seq=message.seq,
                target=self.host.node_id,
                incarnation=self.incarnation,
                updates=self.drain_updates(first=src),
            ),
        )

    def on_ping_req(self, src: NodeId, message: PingReq) -> None:
        if self._stopped:
            return
        self._apply_updates(message.updates)
        self._apply_update(RANK_ALIVE, src, message.incarnation)
        self._seq += 1
        relay_seq = self._seq
        self._proxied[relay_seq] = (src, message.seq, self.host.clock())
        self.host.send(
            message.target,
            Ping(
                seq=relay_seq,
                incarnation=self.incarnation,
                updates=self.drain_updates(first=message.target),
            ),
        )

    def on_ping_ack(self, src: NodeId, message: PingAck) -> None:
        if self._stopped:
            return
        self._apply_updates(message.updates)
        # An ack at incarnation i cannot clear suspicion at i (only a
        # refutation bump can) but it does refresh plain aliveness.
        self._apply_update(RANK_ALIVE, message.target, message.incarnation)
        if self._pending.pop(message.seq, None) is not None:
            return
        relay = self._proxied.pop(message.seq, None)
        if relay is not None:
            origin, origin_seq, _ = relay
            self.host.send(
                origin,
                PingAck(
                    seq=origin_seq,
                    target=message.target,
                    incarnation=message.incarnation,
                    updates=(),
                ),
            )

    def on_membership_update(self, src: NodeId, message: MembershipUpdate) -> None:
        if self._stopped:
            return
        self._apply_updates(message.updates)


class ChurnMonitor:
    """Plane-agnostic churn bookkeeping for a whole cluster.

    Fed by the cluster-level membership-event handler (see
    :func:`apply_membership_event`) and by the fault driver; turns raw
    transitions into the two convergence metrics the ``churn`` scenario
    reports: *detection delay* (crash → first confirmed-dead verdict)
    and *recovery delay* (restart → suspicion cleared / readmitted).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.crashes = 0
        self.restarts = 0
        self.leaves = 0
        self.rejoins = 0
        self.rejoins_refused = 0
        self.suspicions = 0
        self.refutations = 0
        self.confirmed_dead = 0
        self.readmissions = 0
        self.detection_delays: List[float] = []
        self.recovery_delays: List[float] = []
        self._crash_at: Dict[NodeId, float] = {}
        self._restart_at: Dict[NodeId, float] = {}

    # --- fault-driver side ---------------------------------------------
    def on_crashed(self, node: NodeId) -> None:
        self.crashes += 1
        self._crash_at[node] = self.clock()

    def on_restarted(self, node: NodeId) -> None:
        self.restarts += 1
        self._restart_at[node] = self.clock()

    def on_left(self, node: NodeId) -> None:
        self.leaves += 1

    def on_rejoined(self, node: NodeId) -> None:
        self.rejoins += 1

    def on_rejoin_refused(self, node: NodeId) -> None:
        self.rejoins_refused += 1

    # --- detector side --------------------------------------------------
    def on_suspected(self, node: NodeId) -> None:
        self.suspicions += 1

    def on_refuted(self, node: NodeId) -> None:
        self.refutations += 1
        restarted = self._restart_at.pop(node, None)
        if restarted is not None:
            self.recovery_delays.append(self.clock() - restarted)

    def on_confirmed_dead(self, node: NodeId) -> None:
        self.confirmed_dead += 1
        crashed = self._crash_at.pop(node, None)
        if crashed is not None:
            self.detection_delays.append(self.clock() - crashed)

    def on_readmitted(self, node: NodeId) -> None:
        self.readmissions += 1
        restarted = self._restart_at.pop(node, None)
        if restarted is not None:
            self.recovery_delays.append(self.clock() - restarted)

    def summary(self) -> Dict[str, object]:
        detection = self.detection_delays
        recovery = self.recovery_delays
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "leaves": self.leaves,
            "rejoins": self.rejoins,
            "rejoins_refused": self.rejoins_refused,
            "suspicions": self.suspicions,
            "refutations": self.refutations,
            "confirmed_dead": self.confirmed_dead,
            "readmissions": self.readmissions,
            "mean_detection_delay": (sum(detection) / len(detection)) if detection else None,
            "max_detection_delay": max(detection) if detection else None,
            "mean_recovery_delay": (sum(recovery) / len(recovery)) if recovery else None,
            "max_recovery_delay": max(recovery) if recovery else None,
        }


def apply_membership_event(
    membership,
    monitor: Optional[ChurnMonitor],
    reporter: NodeId,
    node: NodeId,
    status: str,
    incarnation: int,
    audit_log=None,
) -> Optional[str]:
    """Fold one node-local detector transition into the cluster's shared
    membership directory (both planes route their ``on_membership_event``
    callbacks here).

    Many nodes report the same transition as the update disseminates;
    the shared directory's current state dedupes them, so the monitor
    counts *cluster-level* transitions, not per-node echoes.  Returns
    the applied transition name, or None for an echo.
    """
    if status != STATUS_ALIVE and incarnation < membership.incarnation_of(node):
        # A straggler verdict about a previous incarnation (e.g. a slow
        # detector confirming dead a node that already refuted or was
        # readmitted under a bumped incarnation) must not re-kill it.
        return None
    current = membership.status_of(node)
    applied = None
    if status == STATUS_SUSPECT:
        if membership.mark_suspect(node):
            applied = "suspect"
            if monitor is not None:
                monitor.on_suspected(node)
    elif status == STATUS_ALIVE:
        membership.note_incarnation(node, incarnation)
        if membership.clear_suspect(node):
            applied = "refute"
            if monitor is not None:
                monitor.on_refuted(node)
        elif current in (STATUS_DEAD, STATUS_LEFT):
            if membership.readmit(node, incarnation):
                applied = "readmit"
                if monitor is not None:
                    monitor.on_readmitted(node)
    elif status == STATUS_DEAD:
        if membership.mark_dead(node):
            applied = "confirm_dead"
            if monitor is not None:
                monitor.on_confirmed_dead(node)
    elif status == STATUS_LEFT:
        if membership.mark_left(node):
            applied = "leave"
            if monitor is not None:
                monitor.on_left(node)
    if applied is not None and audit_log is not None:
        audit_log.append(
            "membership",
            transition=applied,
            node=node,
            reporter=reporter,
            incarnation=incarnation,
        )
    return applied
