"""The peer-sampling interface the gossip layer programs against."""

from __future__ import annotations

import abc
from typing import List, Sequence

NodeId = int


class PeerSampler(abc.ABC):
    """Supplies random communication partners to protocol nodes.

    The gossip node calls :meth:`sample` once per gossip period to get
    its ``f`` propose partners.  Samples must never contain the caller
    itself, must be duplicate-free, and must exclude expelled nodes.
    """

    @abc.abstractmethod
    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """Up to ``count`` distinct partners for ``caller``.

        Fewer than ``count`` may be returned when the (known) population
        is too small.
        """

    @abc.abstractmethod
    def remove(self, node: NodeId) -> None:
        """Stop handing out ``node`` (it left or was expelled)."""

    @abc.abstractmethod
    def alive_nodes(self) -> Sequence[NodeId]:
        """The nodes currently eligible for sampling."""

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is currently eligible."""
        return node in set(self.alive_nodes())
