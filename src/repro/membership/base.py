"""The peer-sampling interface the gossip layer programs against."""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

NodeId = int

#: Node lifecycle states (see docs/RESILIENCE.md, "Membership & suspicion").
#:
#: ``alive``     — full member, sampled normally.
#: ``suspect``   — a failure detector raised suspicion; the node *stays
#:                 sampleable* (so a refutation can reach it) but is
#:                 flagged, and blames against it are quarantined.
#: ``dead``      — suspicion expired unrefuted; evicted from sampling.
#:                 May rejoin with a bumped incarnation.
#: ``left``      — graceful departure; evicted, may rejoin.
#: ``expelled``  — removed by the LiFTinG expulsion quorum; rejoin is
#:                 refused permanently.
STATUS_ALIVE = "alive"
STATUS_SUSPECT = "suspect"
STATUS_DEAD = "dead"
STATUS_LEFT = "left"
STATUS_EXPELLED = "expelled"


class PeerSampler(abc.ABC):
    """Supplies random communication partners to protocol nodes.

    The gossip node calls :meth:`sample` once per gossip period to get
    its ``f`` propose partners.  Samples must never contain the caller
    itself, must be duplicate-free, and must exclude expelled nodes.

    On top of the sampling contract the base class keeps a small
    lifecycle ledger (status + incarnation per node, lazily created so
    subclass constructors need no cooperation).  Only *deviations* from
    ``alive`` are stored: a node with no entry is alive iff it is
    eligible for sampling.
    """

    @abc.abstractmethod
    def sample(self, caller: NodeId, count: int) -> List[NodeId]:
        """Up to ``count`` distinct partners for ``caller``.

        Fewer than ``count`` may be returned when the (known) population
        is too small.
        """

    @abc.abstractmethod
    def remove(self, node: NodeId) -> None:
        """Stop handing out ``node`` (it left or was expelled)."""

    @abc.abstractmethod
    def alive_nodes(self) -> Sequence[NodeId]:
        """The nodes currently eligible for sampling."""

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is currently eligible.

        Subclasses override this with an O(1) membership test against
        their own index; the fallback scans ``alive_nodes()`` without
        materialising a throwaway set.
        """
        return node in self.alive_nodes()

    # ------------------------------------------------------------------
    # lifecycle ledger
    # ------------------------------------------------------------------
    def _status_map(self) -> Dict[NodeId, str]:
        statuses = getattr(self, "_statuses", None)
        if statuses is None:
            statuses = self._statuses = {}
        return statuses

    def _incarnation_map(self) -> Dict[NodeId, int]:
        incarnations = getattr(self, "_incarnations", None)
        if incarnations is None:
            incarnations = self._incarnations = {}
        return incarnations

    def status_of(self, node: NodeId) -> str:
        """The lifecycle state of ``node``."""
        status = self._status_map().get(node)
        if status is not None:
            return status
        return STATUS_ALIVE if self.contains(node) else STATUS_DEAD

    def is_suspected(self, node: NodeId) -> bool:
        return self._status_map().get(node) == STATUS_SUSPECT

    def suspected_nodes(self) -> List[NodeId]:
        """Nodes currently flagged suspect (still sampleable)."""
        return [n for n, s in self._status_map().items() if s == STATUS_SUSPECT]

    def mark_suspect(self, node: NodeId) -> bool:
        """Flag ``node`` as suspected; it stays sampleable.

        Returns False when the node is not eligible (already evicted)
        or already suspected.
        """
        statuses = self._status_map()
        if statuses.get(node) is not None or not self.contains(node):
            return False
        statuses[node] = STATUS_SUSPECT
        return True

    def clear_suspect(self, node: NodeId) -> bool:
        """Drop the suspect flag (the node refuted the suspicion)."""
        statuses = self._status_map()
        if statuses.get(node) != STATUS_SUSPECT:
            return False
        del statuses[node]
        return True

    def mark_dead(self, node: NodeId) -> bool:
        """Evict ``node`` as confirmed dead (suspicion expired)."""
        statuses = self._status_map()
        if statuses.get(node) in (STATUS_DEAD, STATUS_LEFT, STATUS_EXPELLED):
            return False
        statuses[node] = STATUS_DEAD
        self.remove(node)
        return True

    def mark_left(self, node: NodeId) -> bool:
        """Evict ``node`` after a graceful departure."""
        statuses = self._status_map()
        if statuses.get(node) in (STATUS_DEAD, STATUS_LEFT, STATUS_EXPELLED):
            return False
        statuses[node] = STATUS_LEFT
        self.remove(node)
        return True

    def mark_expelled(self, node: NodeId) -> None:
        """Evict ``node`` permanently (LiFTinG expulsion quorum)."""
        self._status_map()[node] = STATUS_EXPELLED
        self.remove(node)

    def readmit(self, node: NodeId, incarnation: int = 0) -> bool:
        """Bring a dead/left node back into the sampling pool.

        Refused for expelled nodes — expulsion is permanent.  The
        caller supplies the node's bumped incarnation so stale
        suspicions cannot immediately re-evict it.
        """
        statuses = self._status_map()
        if statuses.get(node) == STATUS_EXPELLED:
            return False
        if not self._readmit(node):
            return False
        statuses.pop(node, None)
        incarnations = self._incarnation_map()
        if incarnation > incarnations.get(node, 0):
            incarnations[node] = incarnation
        return True

    def _readmit(self, node: NodeId) -> bool:
        """Subclass hook: make ``node`` sampleable again.

        Returns False when the node cannot be readmitted (e.g. it was
        never known to a decentralised sampler).
        """
        raise NotImplementedError

    def incarnation_of(self, node: NodeId) -> int:
        return self._incarnation_map().get(node, 0)

    def note_incarnation(self, node: NodeId, incarnation: int) -> None:
        """Record the highest incarnation seen for ``node``."""
        incarnations = self._incarnation_map()
        if incarnation > incarnations.get(node, 0):
            incarnations[node] = incarnation
