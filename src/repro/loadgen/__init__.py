"""Open-loop load generation and latency observability for the live plane.

This package measures what the asyncio runtime actually sustains: a
deterministic constant-arrival-rate (open-loop) frame schedule is driven
through a live :class:`~repro.runtime.transport.AsyncTransport` node,
per-stage latencies (socket→queue, queue wait, batch dispatch) are
recorded into mergeable log-linear histograms, and a knee detector steps
the offered rate until goodput stops tracking it.  See
``docs/LOADGEN.md`` for the methodology (open- vs closed-loop load,
coordinated omission, what "the knee" means) and the ``loadgen``
scenario (``repro run loadgen``) for the packaged sweep.

* :mod:`repro.loadgen.histogram` — fixed-bucket log-linear latency
  histogram: O(1) record, mergeable across workers, stdlib only.
* :mod:`repro.loadgen.schedule` — seeded, rate-stepped open-loop
  arrival schedules (uniform or Poisson arrivals).
* :mod:`repro.loadgen.probe` — the stage-timestamp probe the transport
  hooks call; owns the per-phase per-stage histograms.
* :mod:`repro.loadgen.driver` — the open-loop generator coroutine and
  its :class:`~repro.loadgen.driver.LoadProfile` configuration.
* :mod:`repro.loadgen.knee` — goodput-vs-offered knee detection.
"""

from repro.loadgen.driver import LOADGEN_ID, LoadGenerator, LoadProfile
from repro.loadgen.histogram import HISTOGRAM_SCHEMA, LatencyHistogram
from repro.loadgen.knee import KneeReport, detect_knee
from repro.loadgen.probe import STAGES, StageProbe
from repro.loadgen.schedule import ArrivalSchedule, Phase, RateStep, rate_ladder

__all__ = [
    "ArrivalSchedule",
    "HISTOGRAM_SCHEMA",
    "KneeReport",
    "LOADGEN_ID",
    "LatencyHistogram",
    "LoadGenerator",
    "LoadProfile",
    "Phase",
    "RateStep",
    "STAGES",
    "StageProbe",
    "detect_knee",
    "rate_ladder",
]
