"""Deterministic open-loop arrival schedules (seeded, rate-stepped).

An *open-loop* generator fixes the arrival times of every frame up
front, independently of how fast the system under test responds — the
opposite of a closed-loop ("send, wait for reply, send again") driver,
whose arrival rate silently collapses to whatever the target sustains
and therefore can never see past the knee.  Pre-computing the schedule
also kills coordinated omission at the source: latency is always
measured from the *scheduled* arrival time, so a stall that delays a
send is charged to the frames it delayed rather than silently shrinking
the sample.

A schedule is a ladder of :class:`RateStep` phases.  Each phase's
arrival times come from a ``numpy`` generator seeded with
``[seed, phase_index]``, so the full schedule is a pure function of
``(steps, seed, arrivals)`` — identical across machines and across
partial re-runs of a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.validation import require, require_positive

__all__ = ["ArrivalSchedule", "Phase", "RateStep", "rate_ladder"]

#: supported interarrival processes.
ARRIVAL_PROCESSES = ("uniform", "poisson")


@dataclass(frozen=True)
class RateStep:
    """One rung of the offered-load ladder: ``rate`` msgs/s for ``duration`` s."""

    rate: float
    duration: float

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")
        require_positive(self.duration, "duration")


def rate_ladder(
    start: float,
    step: float,
    count: int,
    duration: float,
) -> List[RateStep]:
    """An arithmetic ladder: ``count`` phases of ``duration`` s each,
    stepping the offered rate from ``start`` by ``step`` per phase."""
    require_positive(start, "start")
    require(step >= 0.0, "step must be >= 0, got %r", step)
    require(count >= 1, "count must be >= 1, got %r", count)
    require_positive(duration, "duration")
    return [RateStep(rate=start + i * step, duration=duration) for i in range(count)]


@dataclass(frozen=True)
class Phase:
    """One realised phase: the rung plus its concrete arrival times."""

    index: int
    rate: float
    start: float
    duration: float
    times: np.ndarray  # absolute scheduled send times, sorted

    @property
    def count(self) -> int:
        return int(self.times.shape[0])

    @property
    def end(self) -> float:
        return self.start + self.duration


def _phase_offsets(step: RateStep, rng: np.random.Generator, arrivals: str) -> np.ndarray:
    """Arrival offsets within one phase, in ``[0, duration)``, sorted."""
    if arrivals == "uniform":
        # Constant interarrival gap; the half-gap offset keeps the first
        # frame off the phase boundary so phase edges stay unambiguous.
        n = int(step.rate * step.duration)
        gap = 1.0 / step.rate
        return (np.arange(n, dtype=np.float64) + 0.5) * gap
    if arrivals == "poisson":
        # Exponential interarrivals; draw ~rate*duration gaps with slack,
        # extend in the (rare) case the cumulative sum falls short.
        mean_gap = 1.0 / step.rate
        expected = int(step.rate * step.duration)
        gaps = rng.exponential(mean_gap, size=expected + max(16, expected // 4))
        times = np.cumsum(gaps)
        while times[-1] < step.duration:
            more = rng.exponential(mean_gap, size=max(16, expected // 4))
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        return times[times < step.duration]
    raise ValueError(f"unknown arrival process {arrivals!r} (expected one of {ARRIVAL_PROCESSES})")


class ArrivalSchedule:
    """The fully materialised open-loop schedule for a rate ladder.

    ``times`` is the concatenated, strictly increasing array of absolute
    scheduled send times; ``phase_of[i]`` is the phase index of frame
    ``i`` (frames are numbered by schedule order, which is the sequence
    number the driver stamps into each frame).
    """

    def __init__(
        self,
        steps: Sequence[RateStep],
        seed: int = 0,
        arrivals: str = "uniform",
    ) -> None:
        require(len(steps) >= 1, "schedule needs at least one rate step")
        require(
            arrivals in ARRIVAL_PROCESSES,
            "arrivals must be one of %r, got %r",
            ARRIVAL_PROCESSES,
            arrivals,
        )
        self.steps: Tuple[RateStep, ...] = tuple(steps)
        self.seed = int(seed)
        self.arrivals = arrivals

        phases: List[Phase] = []
        chunks: List[np.ndarray] = []
        phase_ids: List[np.ndarray] = []
        start = 0.0
        for index, step in enumerate(self.steps):
            rng = np.random.default_rng([self.seed, index])
            offsets = _phase_offsets(step, rng, arrivals)
            times = start + offsets
            phases.append(
                Phase(
                    index=index,
                    rate=step.rate,
                    start=start,
                    duration=step.duration,
                    times=times,
                )
            )
            chunks.append(times)
            phase_ids.append(np.full(times.shape[0], index, dtype=np.int32))
            start += step.duration

        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.times: np.ndarray = np.concatenate(chunks)
        self.phase_of: np.ndarray = np.concatenate(phase_ids)
        self.total_duration = start

    @property
    def total_count(self) -> int:
        return int(self.times.shape[0])

    def phase_counts(self) -> List[int]:
        return [phase.count for phase in self.phases]

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (per-phase rates/counts, not the raw times)."""
        return {
            "seed": self.seed,
            "arrivals": self.arrivals,
            "total_count": self.total_count,
            "total_duration": self.total_duration,
            "phases": [
                {
                    "index": phase.index,
                    "rate": phase.rate,
                    "start": phase.start,
                    "duration": phase.duration,
                    "count": phase.count,
                }
                for phase in self.phases
            ],
        }
