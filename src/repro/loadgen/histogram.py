"""Fixed-bucket log-linear latency histogram (stdlib only).

The load generator records one latency sample per frame per stage at
rates of tens of thousands per second, so the recorder must be O(1)
with no allocation, and per-phase histograms must *merge* exactly so
that worker shards and per-phase shards aggregate into one distribution
without resampling.  Sorting the raw samples (the textbook percentile)
would cost O(n log n) memory and time at exactly the moment the system
under test is saturated — the histogram trades a bounded, known
quantisation error for a fixed footprint of a few KiB.

Bucket layout (HdrHistogram-style log-linear):

* bucket 0 is the underflow bucket ``[0, min_value]``;
* each power-of-two *decade* above ``min_value`` is split into
  ``subbuckets`` equal-width linear buckets, so the relative
  quantisation error is bounded by ``1/subbuckets`` everywhere;
* one terminal overflow bucket catches ``>= max_value``.

``percentile`` returns the **upper edge** of the bucket holding the
requested rank (clamped to the largest recorded value), so the reported
value is always ``>=`` the exact percentile and within one bucket width
of it — the property pinned by ``tests/loadgen/test_histogram.py``
against a sorted-array reference.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

from repro.util.validation import require

__all__ = ["HISTOGRAM_SCHEMA", "LatencyHistogram"]

#: schema tag stamped into every serialised histogram.
HISTOGRAM_SCHEMA = "repro.latency_histogram/1"


class LatencyHistogram:
    """Mergeable log-linear histogram over ``[0, max_value)`` seconds.

    ``min_value`` is the resolution floor (everything at or below it
    lands in the underflow bucket); ``subbuckets`` linear buckets per
    power-of-two decade bound the relative error by ``1/subbuckets``.
    Two histograms merge exactly iff they share the same geometry.
    """

    __slots__ = (
        "min_value",
        "max_value",
        "subbuckets",
        "decades",
        "counts",
        "count",
        "total",
        "min_recorded",
        "max_recorded",
    )

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 60.0,
        subbuckets: int = 32,
    ) -> None:
        require(min_value > 0.0, "min_value must be > 0")
        require(max_value > min_value, "max_value must exceed min_value")
        require(subbuckets >= 1, "subbuckets must be >= 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.subbuckets = int(subbuckets)
        self.decades = max(1, math.ceil(math.log2(self.max_value / self.min_value)))
        # [underflow] + decades*subbuckets + [overflow]
        self.counts = [0] * (2 + self.decades * self.subbuckets)
        self.count = 0
        self.total = 0.0
        self.min_recorded = math.inf
        self.max_recorded = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket a sample lands in (negatives clamp to underflow)."""
        if value <= self.min_value:
            return 0
        if value >= self.max_value:
            return len(self.counts) - 1
        mantissa, exponent = math.frexp(value / self.min_value)
        # value/min = mantissa * 2**exponent with mantissa in [0.5, 1),
        # so the decade index is exponent-1 and the linear sub-bucket is
        # the mantissa's position within [0.5, 1).
        sub = int((2.0 * mantissa - 1.0) * self.subbuckets)
        if sub >= self.subbuckets:  # mantissa rounding at the decade edge
            sub = self.subbuckets - 1
        index = 1 + (exponent - 1) * self.subbuckets + sub
        last = len(self.counts) - 1
        return index if index < last else last

    def record(self, value: float) -> None:
        """Add one sample; O(1), no allocation."""
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_recorded:
            self.min_recorded = value
        if value > self.max_recorded:
            self.max_recorded = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    # bucket geometry
    # ------------------------------------------------------------------
    def bucket_bounds(self, index: int) -> tuple:
        """``(lower, upper)`` of one bucket (overflow upper = inf)."""
        require(0 <= index < len(self.counts), "bucket index out of range")
        if index == 0:
            return (0.0, self.min_value)
        if index == len(self.counts) - 1:
            return (self.max_value, math.inf)
        decade, sub = divmod(index - 1, self.subbuckets)
        base = self.min_value * (2.0 ** decade)
        lower = base * (1.0 + sub / self.subbuckets)
        upper = base * (1.0 + (sub + 1) / self.subbuckets)
        return (lower, upper)

    def bucket_width(self, index: int) -> float:
        """Width of one bucket (inf for the overflow bucket)."""
        lower, upper = self.bucket_bounds(index)
        return upper - lower

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """The q-th percentile (upper bucket edge, within one width).

        Returns ``nan`` on an empty histogram.  The overflow bucket
        reports the largest recorded value (the histogram cannot bound
        it tighter than "at least ``max_value``").
        """
        require(0.0 <= q <= 100.0, "percentile must be in [0, 100]")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                upper = self.bucket_bounds(index)[1]
                return min(upper, self.max_recorded)
        return self.max_recorded  # unreachable: counts sum to count

    def percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0, 99.9)
    ) -> Dict[str, float]:
        """JSON-safe ``{"p50": ..., ...}`` projection of :meth:`percentile`."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    # ------------------------------------------------------------------
    # merging & serialisation
    # ------------------------------------------------------------------
    def compatible_with(self, other: "LatencyHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.subbuckets == other.subbuckets
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (exact)."""
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge histograms with different geometry: "
                f"({self.min_value}, {self.max_value}, {self.subbuckets}) vs "
                f"({other.min_value}, {other.max_value}, {other.subbuckets})"
            )
        counts = self.counts
        for index, bucket_count in enumerate(other.counts):
            counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min_recorded < self.min_recorded:
            self.min_recorded = other.min_recorded
        if other.max_recorded > self.max_recorded:
            self.max_recorded = other.max_recorded
        return self

    def copy(self) -> "LatencyHistogram":
        out = LatencyHistogram(self.min_value, self.max_value, self.subbuckets)
        out.merge(self)
        return out

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the union of all inputs."""
        result = None
        for histogram in histograms:
            if result is None:
                result = histogram.copy()
            else:
                result.merge(histogram)
        if result is None:
            return cls()
        return result

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialisation (sparse counts)."""
        return {
            "schema": HISTOGRAM_SCHEMA,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "subbuckets": self.subbuckets,
            "count": self.count,
            "total": self.total,
            "min_recorded": self.min_recorded if self.count else None,
            "max_recorded": self.max_recorded if self.count else None,
            "counts": {
                str(index): bucket_count
                for index, bucket_count in enumerate(self.counts)
                if bucket_count
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LatencyHistogram":
        schema = payload.get("schema")
        if schema != HISTOGRAM_SCHEMA:
            raise ValueError(
                f"unsupported histogram schema {schema!r} "
                f"(expected {HISTOGRAM_SCHEMA!r})"
            )
        out = cls(
            min_value=float(payload["min_value"]),
            max_value=float(payload["max_value"]),
            subbuckets=int(payload["subbuckets"]),
        )
        for key, bucket_count in dict(payload["counts"]).items():
            out.counts[int(key)] = int(bucket_count)
        out.count = int(payload["count"])
        out.total = float(payload["total"])
        minimum = payload.get("min_recorded")
        maximum = payload.get("max_recorded")
        out.min_recorded = math.inf if minimum is None else float(minimum)
        out.max_recorded = 0.0 if maximum is None else float(maximum)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={self.percentile(50):.6f}, p99={self.percentile(99):.6f})"
        )
