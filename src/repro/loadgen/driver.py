"""The open-loop generator coroutine and its configuration.

The generator owns a pre-materialised :class:`ArrivalSchedule` and a
catch-up send loop: each wakeup it transmits every frame whose scheduled
time has passed (bounded by ``burst_cap`` per iteration so the event
loop — and the ingress pump — keep running during a backlog), then
sleeps until the next scheduled arrival.  Falling behind never thins the
schedule: late frames go out as a burst, and the probe's sojourn stage,
anchored at the *scheduled* time, charges the delay to them.

Measured frames are UDP ``Serve`` messages aimed at one target node:

* ``proposal_id`` carries the schedule sequence number (negative
  encoding, see :mod:`repro.loadgen.probe`), which real proposal ids
  (always >= 0) can never collide with — the verification engine treats
  each as an unknown proposal and no-ops;
* ``chunk_id`` cycles over a bounded working set at a high offset, so
  the first ``working_set`` frames take the fresh-chunk path (store
  insert + next-period propose) and every later frame takes the
  duplicate path — protocol amplification stays bounded by the working
  set instead of growing with the offered load, and the loadgen id
  space never collides with the stream source's chunk ids;
* ``origin`` is ``SOURCE_ID``, so receivers skip acks and fan-in
  history for them, exactly as they do for the real stream source.

The generator sends from its own registered endpoint (``LOADGEN_ID``)
— the serve handlers never read the sender id, and a distinct id keeps
transport accounting (refusals, breaker state) attributable.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.gossip.chunks import SOURCE_ID
from repro.loadgen.knee import KneeReport, detect_knee
from repro.loadgen.probe import StageProbe, encode_seq
from repro.loadgen.schedule import ArrivalSchedule, rate_ladder
from repro.util.validation import require
from repro.wire import Serve

__all__ = ["LOADGEN_ID", "LoadGenerator", "LoadProfile"]

#: the generator's node id on the transport (SOURCE_ID is -1).
LOADGEN_ID = -2

#: schema tag of :meth:`LoadGenerator.report`.
LOADGEN_REPORT_SCHEMA = "repro.loadgen_report/1"


@dataclass(frozen=True)
class LoadProfile:
    """One stepped-rate open-loop sweep."""

    #: offered rate of the first phase (frames/s) and per-phase increment.
    start_rate: float = 500.0
    step_rate: float = 500.0
    steps: int = 4
    step_duration: float = 1.0
    seed: int = 0
    #: interarrival process: "uniform" or "poisson".
    arrivals: str = "uniform"
    #: distinct chunk ids cycled through (bounds protocol amplification).
    working_set: int = 256
    #: base of the loadgen chunk-id namespace, far above any real stream
    #: chunk id a run of sane duration can reach.
    chunk_offset: int = 1 << 20
    payload_size: int = 1
    #: goodput/offered ratio below which a phase counts as saturated.
    knee_tolerance: float = 0.9
    #: max frames sent per catch-up iteration before yielding the loop.
    burst_cap: int = 256
    #: drain window after the last phase (in-flight frames finish).
    settle: float = 0.25

    def __post_init__(self) -> None:
        require(self.working_set >= 1, "working_set must be >= 1")
        require(self.burst_cap >= 1, "burst_cap must be >= 1")
        require(self.settle >= 0.0, "settle must be >= 0")

    def build_schedule(self) -> ArrivalSchedule:
        return ArrivalSchedule(
            rate_ladder(self.start_rate, self.step_rate, self.steps, self.step_duration),
            seed=self.seed,
            arrivals=self.arrivals,
        )


class LoadGenerator:
    """Drives one profile's schedule at a target node over a transport."""

    def __init__(self, transport, profile: LoadProfile, target: int) -> None:
        self.transport = transport
        self.profile = profile
        self.target = target
        self.schedule = profile.build_schedule()
        self.probe = StageProbe(self.schedule)

    async def start(self) -> None:
        """Register the generator endpoint and attach the probe."""
        await self.transport.open_endpoints(LOADGEN_ID, lambda _src, _msg: None)
        self.transport.probe = self.probe

    async def run(self) -> None:
        """Execute the schedule (call :meth:`start` first)."""
        transport = self.transport
        probe = self.probe
        profile = self.profile
        times = self.schedule.times
        n = self.schedule.total_count
        target = self.target
        working_set = profile.working_set
        chunk_offset = profile.chunk_offset
        payload_size = profile.payload_size
        burst_cap = profile.burst_cap

        t0 = transport.clock()
        probe.begin(t0)
        seq = 0
        while seq < n:
            now = transport.clock() - t0
            burst = 0
            while seq < n and times[seq] <= now:
                message = Serve(
                    proposal_id=encode_seq(seq),
                    chunk_id=chunk_offset + seq % working_set,
                    payload_size=payload_size,
                    origin=SOURCE_ID,
                )
                t_sent = transport.clock()
                accepted = transport.send(LOADGEN_ID, target, message, reliable=False)
                probe.on_sent(seq, t_sent, accepted)
                seq += 1
                burst += 1
                if burst >= burst_cap:
                    break
            if seq >= n:
                break
            if burst >= burst_cap:
                await asyncio.sleep(0)  # backlog: yield, keep catching up
                continue
            delay = times[seq] - (transport.clock() - t0)
            await asyncio.sleep(delay if delay > 0.0 else 0.0)
        if profile.settle > 0.0:
            await asyncio.sleep(profile.settle)

    def detach(self) -> None:
        """Unhook the probe from the transport's hot paths."""
        if self.transport.probe is self.probe:
            self.transport.probe = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def knee(self) -> KneeReport:
        """Knee of the completed sweep (goodput vs offered, per phase)."""
        offered = [phase.rate for phase in self.schedule.phases]
        goodput = [
            self.probe.done[phase.index] / phase.duration
            for phase in self.schedule.phases
        ]
        return detect_knee(offered, goodput, tolerance=self.profile.knee_tolerance)

    def report(self, resilience: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The full JSON-safe sweep report.

        ``resilience`` is the transport's post-run
        ``resilience_snapshot()``; when given, its ingress counters ride
        along as the drop evidence the knee claim rests on.
        """
        payload: Dict[str, object] = {
            "schema": LOADGEN_REPORT_SCHEMA,
            "profile": asdict(self.profile),
            "schedule": self.schedule.describe(),
            "target": self.target,
            "phases": self.probe.phase_report(),
            "overall": self.probe.overall_report(),
            "knee": self.knee().to_dict(),
        }
        if resilience is not None:
            payload["resilience"] = resilience
            ingress = resilience.get("ingress", {})
            payload["ingress_high_water"] = ingress.get("high_water")
            payload["ingress_dropped"] = (
                ingress.get("dropped_oldest", 0) + ingress.get("rejected", 0)
            )
        return payload
