"""Stage-timestamp probe: decomposes frame latency inside the transport.

The transport calls three hooks (all guarded by a single ``probe is not
None`` check on its hot paths, so the cost when disabled is one
attribute load):

* :meth:`StageProbe.on_ingest` — a decoded frame entered the bounded
  ingress queue (or was rejected by the overflow policy);
* :meth:`StageProbe.on_evicted` — a queued frame was evicted by the
  drop-oldest overflow policy to admit a newcomer;
* :meth:`StageProbe.on_dispatched` — a coalesced same-destination run
  was drained and handed to ``on_message_batch``.

From the driver's send-side timestamps and these hooks the probe
decomposes each measured frame's life into four stages, each recorded
into a per-phase :class:`~repro.loadgen.histogram.LatencyHistogram`:

========  =====================  ==========================================
stage     interval               what it measures
========  =====================  ==========================================
ingress   t_sent → t_ingest      socket + decode (UDP loopback + codec)
queue     t_ingest → t_drain     wait in the BoundedIngressQueue
dispatch  t_drain → t_done       batch handoff + protocol handler work
sojourn   t_sched → t_done       end-to-end from the *scheduled* arrival
========  =====================  ==========================================

``sojourn`` is anchored at the scheduled (not actual) send time, so a
driver that falls behind charges the stall to the frames it delayed —
the standard coordinated-omission correction.  ``dispatch`` shares one
``t_done`` across a coalesced run, so it reports the amortised batch
cost per frame, which is the quantity the pump actually spends.

Measured frames are ``Serve`` messages whose ``proposal_id`` encodes the
schedule sequence number as a negative integer (real proposal ids count
up from zero, so the namespaces can never collide); the receiving
protocol node treats them as unknown-proposal serves — the full decode →
queue → dispatch path runs, then the engine no-ops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.schedule import ArrivalSchedule
from repro.wire import Serve

__all__ = ["STAGES", "StageProbe", "decode_seq", "encode_seq"]

#: latency stages, in frame-lifetime order.
STAGES = ("ingress", "queue", "dispatch", "sojourn")

#: measured-frame sequence numbers are carried as
#: ``proposal_id = -(seq + _PROPOSAL_OFFSET)``; real proposal ids are
#: always >= 0, so any id <= -_PROPOSAL_OFFSET is unambiguously ours.
_PROPOSAL_OFFSET = 10


def encode_seq(seq: int) -> int:
    """Fold a schedule sequence number into a loadgen proposal id."""
    return -(seq + _PROPOSAL_OFFSET)


def decode_seq(message: object) -> Optional[int]:
    """The schedule sequence number of a measured frame, else ``None``."""
    if type(message) is not Serve:
        return None
    proposal_id = message.proposal_id
    if proposal_id > -_PROPOSAL_OFFSET:
        return None
    return -proposal_id - _PROPOSAL_OFFSET


class StageProbe:
    """Per-phase, per-stage latency accounting for one schedule.

    All per-frame state is pre-allocated numpy columns indexed by the
    schedule sequence number, so the hooks are O(1) appends into fixed
    storage — no dict churn on the transport's hot path.
    """

    def __init__(
        self,
        schedule: ArrivalSchedule,
        *,
        hist_min: float = 1e-6,
        hist_max: float = 60.0,
        subbuckets: int = 32,
    ) -> None:
        self.schedule = schedule
        n = schedule.total_count
        phases = len(schedule.phases)
        self._phase_of = schedule.phase_of
        self._t_sent = np.full(n, np.nan, dtype=np.float64)
        self._t_sched = np.full(n, np.nan, dtype=np.float64)
        self._started = False
        #: per-phase outcome counters, index = phase
        self.sent: List[int] = [0] * phases
        self.refused: List[int] = [0] * phases
        self.ingested: List[int] = [0] * phases
        self.rejected: List[int] = [0] * phases
        self.evicted: List[int] = [0] * phases
        self.done: List[int] = [0] * phases
        self._hist_config = (hist_min, hist_max, subbuckets)
        self.histograms: List[Dict[str, LatencyHistogram]] = [
            {
                stage: LatencyHistogram(hist_min, hist_max, subbuckets)
                for stage in STAGES
            }
            for _ in range(phases)
        ]

    def begin(self, t0: float) -> None:
        """Anchor the schedule at transport-clock time ``t0``."""
        self._t_sched = t0 + self.schedule.times
        self._started = True

    # ------------------------------------------------------------------
    # driver-side hook
    # ------------------------------------------------------------------
    def on_sent(self, seq: int, t_sent: float, accepted: bool) -> None:
        """The driver attempted frame ``seq`` at ``t_sent``."""
        phase = self._phase_of[seq]
        if accepted:
            self._t_sent[seq] = t_sent
            self.sent[phase] += 1
        else:
            self.refused[phase] += 1

    # ------------------------------------------------------------------
    # transport-side hooks
    # ------------------------------------------------------------------
    def on_ingest(
        self, src: int, message: object, t_ingest: float, accepted: bool
    ) -> None:
        """A decoded frame hit the ingress queue (maybe rejected)."""
        seq = decode_seq(message)
        if seq is None:
            return
        phase = self._phase_of[seq]
        if not accepted:
            self.rejected[phase] += 1
            return
        self.ingested[phase] += 1
        t_sent = self._t_sent[seq]
        if t_sent == t_sent:  # not NaN
            self.histograms[phase]["ingress"].record(t_ingest - t_sent)

    def on_evicted(self, item) -> None:
        """A queued ``(t, dst, src, message)`` entry was dropped-oldest."""
        seq = decode_seq(item[3])
        if seq is None:
            return
        self.evicted[self._phase_of[seq]] += 1

    def on_dispatched(
        self, batch, lo: int, hi: int, t_drain: float, t_done: float
    ) -> None:
        """Entries ``batch[lo:hi]`` were handed to one receiver.

        ``t_drain`` is taken just before the handler runs, ``t_done``
        just after it returns, so the dispatch stage charges each frame
        the amortised cost of its coalesced run.
        """
        phase_of = self._phase_of
        t_sched = self._t_sched
        histograms = self.histograms
        done = self.done
        for k in range(lo, hi):
            entry = batch[k]
            seq = decode_seq(entry[3])
            if seq is None:
                continue
            phase = phase_of[seq]
            stage = histograms[phase]
            stage["queue"].record(t_drain - entry[0])
            stage["dispatch"].record(t_done - t_drain)
            stage["sojourn"].record(t_done - t_sched[seq])
            done[phase] += 1

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def merged_stage(self, stage: str) -> LatencyHistogram:
        """One histogram holding every phase's samples for ``stage``."""
        return LatencyHistogram.merged(h[stage] for h in self.histograms)

    def phase_report(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0, 99.9)
    ) -> List[Dict[str, object]]:
        """JSON-safe per-phase outcome counters + stage percentiles."""
        out: List[Dict[str, object]] = []
        for phase in self.schedule.phases:
            i = phase.index
            out.append(
                {
                    "phase": i,
                    "offered_rate": phase.rate,
                    "offered": phase.count,
                    "sent": self.sent[i],
                    "refused": self.refused[i],
                    "ingested": self.ingested[i],
                    "rejected": self.rejected[i],
                    "evicted": self.evicted[i],
                    "done": self.done[i],
                    "goodput_rate": self.done[i] / phase.duration,
                    "stages": {
                        stage: self.histograms[i][stage].percentiles(qs)
                        for stage in STAGES
                    },
                }
            )
        return out

    def overall_report(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0, 99.9)
    ) -> Dict[str, object]:
        """Cross-phase totals + merged stage percentiles."""
        merged = {stage: self.merged_stage(stage) for stage in STAGES}
        return {
            "offered": self.schedule.total_count,
            "sent": sum(self.sent),
            "refused": sum(self.refused),
            "ingested": sum(self.ingested),
            "rejected": sum(self.rejected),
            "evicted": sum(self.evicted),
            "done": sum(self.done),
            "stages": {stage: merged[stage].percentiles(qs) for stage in STAGES},
            "stage_means": {stage: merged[stage].mean for stage in STAGES},
        }
