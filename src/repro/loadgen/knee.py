"""Knee detection: where goodput stops tracking offered load.

Below saturation an open-loop system delivers (to within noise) exactly
what is offered, so the goodput/offered ratio sits near 1.0.  Past the
knee the ingress queue fills, drops begin, and goodput flatlines while
offered load keeps climbing — the ratio falls.  The knee is defined as
the last phase whose ratio stays at or above ``tolerance`` *before* the
first phase that falls below it; everything at or after that first
failing phase is "beyond the knee".

This is deliberately a pure function over per-phase (offered, goodput)
pairs so it can be unit-tested without a live transport and reused on
recorded sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.validation import require

__all__ = ["KneeReport", "detect_knee"]


@dataclass(frozen=True)
class KneeReport:
    """Outcome of a stepped-rate sweep.

    ``knee_rate`` is the highest offered rate that still tracked
    (``None`` if even the first phase failed); ``saturated`` is False
    when every phase tracked — the sweep never pushed past the knee and
    the true knee lies above ``max(offered)``.
    """

    tolerance: float
    offered: List[float]
    goodput: List[float]
    ratios: List[float]
    saturated: bool
    knee_phase: Optional[int] = None  # last tracking phase index
    first_saturated_phase: Optional[int] = None
    knee_rate: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "tolerance": self.tolerance,
            "offered": list(self.offered),
            "goodput": list(self.goodput),
            "ratios": list(self.ratios),
            "saturated": self.saturated,
            "knee_phase": self.knee_phase,
            "first_saturated_phase": self.first_saturated_phase,
            "knee_rate": self.knee_rate,
        }
        payload.update(self.extras)
        return payload


def detect_knee(
    offered: Sequence[float],
    goodput: Sequence[float],
    tolerance: float = 0.9,
) -> KneeReport:
    """Find the knee in a stepped-rate sweep.

    ``offered[i]`` / ``goodput[i]`` are the offered and delivered rates
    of phase ``i`` (any consistent unit — msgs/s or raw counts over
    equal-length phases).  ``tolerance`` is the minimum goodput/offered
    ratio that still counts as "tracking".
    """
    require(len(offered) == len(goodput), "offered and goodput must align")
    require(len(offered) >= 1, "need at least one phase")
    require(0.0 < tolerance <= 1.0, "tolerance must be in (0, 1]")

    ratios = [
        (g / o) if o > 0.0 else 0.0
        for o, g in zip(offered, goodput)
    ]
    first_saturated: Optional[int] = None
    for index, ratio in enumerate(ratios):
        if ratio < tolerance:
            first_saturated = index
            break

    if first_saturated is None:
        # Every phase tracked: no knee inside the sweep range.
        return KneeReport(
            tolerance=tolerance,
            offered=list(offered),
            goodput=list(goodput),
            ratios=ratios,
            saturated=False,
            knee_phase=len(offered) - 1,
            first_saturated_phase=None,
            knee_rate=None,
        )

    knee_phase = first_saturated - 1 if first_saturated > 0 else None
    return KneeReport(
        tolerance=tolerance,
        offered=list(offered),
        goodput=list(goodput),
        ratios=ratios,
        saturated=True,
        knee_phase=knee_phase,
        first_saturated_phase=first_saturated,
        knee_rate=offered[knee_phase] if knee_phase is not None else None,
    )
