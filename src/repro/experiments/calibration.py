"""Empirical calibration of compensation and threshold.

The closed-form compensation ``b̃`` (Eq. 5) assumes the idealised
steady state of the analysis: every node interacts with exactly ``f``
servers and ``f`` partners per period and requests a constant ``|R|``
chunks.  A real deployment interacts less (chunks are deduplicated, so
only a subset of the ``f`` proposals received each period leads to a
request), so applying the closed form verbatim over-compensates and
shifts honest scores above zero.

The paper's stance is that "the theoretical analysis allows system
designers to set its parameters to their optimal values" (§9); for the
packet-level simulator the equivalent designer step is an *empirical*
calibration run: deploy a small honest-only system with the production
parameters, measure the mean wrongful blame per node per period, and
use that as the compensation.  The same run yields the honest score
spread, from which a threshold with a target false-positive rate is
derived (the paper picked η = −9.75 "so that the probability of false
positive is lower than 1 %", §6.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Optional

import numpy as np

from repro.config import GossipParams, LiftingParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.runtime.parallel import Job, run_jobs
from repro.scenarios import Param, RunResult, run_scenario, scenario
from repro.util.validation import require


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of an honest-only calibration run."""

    #: measured mean blame per node per period (the compensation to use).
    compensation: float
    #: standard deviation of compensated normalised scores at the end.
    score_stddev: float
    #: periods the calibration covered.
    periods: float
    #: number of nodes measured.
    n: int

    def eta_for_false_positives(self, target_beta: float = 0.01) -> float:
        """A threshold with (Gaussian-approximated) β ≤ ``target_beta``.

        Honest normalised scores are approximately normal around 0; the
        ``target_beta`` quantile gives the paper's "η such that β < 1 %"
        rule.  Falls back to Tchebychev when scipy's normal quantile is
        degenerate.
        """
        require(0.0 < target_beta < 0.5, "target_beta must be in (0, 0.5)")
        from scipy.stats import norm

        quantile = float(norm.ppf(target_beta))
        return quantile * self.score_stddev


def _extract_calibration(cluster, *, duration: float) -> CalibrationResult:
    """Worker-side reduction of a calibration cluster to its result."""
    gossip = cluster.config.gossip
    # Min-vote with compensation 0 returns -B_max / r; recover per-period
    # blame rates from it.
    raw_scores = cluster.scores()
    elapsed_periods = duration / gossip.gossip_period
    blame_rates = np.array([-s for s in raw_scores.values()])  # B_max / r
    compensation = float(np.median(blame_rates))
    compensated = compensation - blame_rates  # normalised scores at end
    # Robust spread: IQR / 1.349 approximates the healthy population's σ.
    q25, q75 = np.percentile(compensated, [25.0, 75.0])
    robust_std = float((q75 - q25) / 1.349)
    return CalibrationResult(
        compensation=compensation,
        score_stddev=robust_std,
        periods=elapsed_periods,
        n=gossip.n,
    )


def calibration_job(
    gossip: GossipParams,
    lifting: LiftingParams,
    *,
    seed: int = 1234,
    duration: float = 15.0,
    n: Optional[int] = None,
    loss_rate: float = 0.04,
    degraded_fraction: float = 0.0,
    degraded_loss: float = 0.12,
    degraded_upload: Optional[float] = None,
    key="calibration",
) -> Job:
    """The honest-only calibration deployment as a runnable :class:`Job`.

    Used directly by experiments (e.g. Figure 14) that want the
    calibration to go through the same parallel runner as their other
    deployments; :func:`calibrate` is the run-it-now convenience.
    """
    require(duration > 0, "duration must be > 0")
    size = min(gossip.n, 120) if n is None else n
    config = ClusterConfig(
        gossip=replace(gossip, n=size),
        lifting=lifting,
        seed=seed,
        loss_rate=loss_rate,
        degraded_fraction=degraded_fraction,
        degraded_loss=degraded_loss,
        degraded_upload=degraded_upload,
        lifting_enabled=True,
        expulsion_enabled=False,
        compensation=0.0,  # raw blames, no compensation
    )
    return Job(
        config=config,
        until=duration,
        extractors=(
            ("calibration", partial(_extract_calibration, duration=duration)),
        ),
        key=key,
    )


_CALIBRATION_PARAMS = (
    Param("n", int, 120, "calibration deployment size",
          validate=lambda v: v >= 8, constraint=">= 8"),
    Param("duration", float, 15.0, "simulated seconds",
          validate=lambda v: v > 0, constraint="> 0"),
    Param("seed", int, 1234, "deployment seed"),
    Param("loss", float, 0.04, "datagram loss rate of the environment",
          validate=lambda v: 0.0 <= v < 1.0, constraint="in [0, 1)"),
    Param("p_dcc", float, 1.0, "cross-checking probability",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("degraded_fraction", float, 0.0, "fraction of poorly connected nodes",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("degraded_loss", float, 0.12, "extra endpoint loss of degraded nodes"),
    Param("degraded_upload", float, 0.0,
          "upload cap of degraded nodes in bytes/s (0 = uncapped)"),
    Param("jobs", int, 1, "worker processes (a single job; kept for uniformity)"),
)


def _calibration_reduce(results, params) -> CalibrationResult:
    [result] = results
    return result.get("calibration")


def _calibration_metrics(result: CalibrationResult, params) -> dict:
    return {
        "compensation": result.compensation,
        "score_stddev": result.score_stddev,
        "periods": result.periods,
        "n": result.n,
        "eta_false_positives_1pct": result.eta_for_false_positives(0.01),
    }


def _calibration_render(run: RunResult) -> str:
    result: CalibrationResult = run.artifact
    return (
        f"compensation b~ = {result.compensation:.2f} blame/period over "
        f"{result.periods:.0f} periods (n={result.n})\n"
        f"score stddev = {result.score_stddev:.2f}; eta for beta<=1% = "
        f"{result.eta_for_false_positives(0.01):.2f}"
    )


@scenario(
    "calibration",
    "Empirical compensation/threshold calibration on an honest deployment",
    params=_CALIBRATION_PARAMS,
    reduce=_calibration_reduce,
    summarize=_calibration_metrics,
    render=_calibration_render,
    tags=("calibration", "deployment"),
    smoke={"n": 24, "duration": 4.0},
)
def _calibration_scenario(params):
    """One honest-only deployment job in the PlanetLab environment.

    For calibration in a *custom* environment (arbitrary
    ``GossipParams``/``LiftingParams`` objects), use :func:`calibrate`
    directly — parameter objects are not JSON-declarable.
    """
    gossip, lifting = planetlab_params()
    lifting = replace(lifting, p_dcc=params["p_dcc"])
    return [
        calibration_job(
            gossip,
            lifting,
            seed=params["seed"],
            duration=params["duration"],
            n=params["n"],
            loss_rate=params["loss"],
            degraded_fraction=params["degraded_fraction"],
            degraded_loss=params["degraded_loss"],
            degraded_upload=params["degraded_upload"] or None,
        )
    ]


def run_calibration(**overrides) -> CalibrationResult:
    """Run the calibration scenario and return its rich result.

    Thin wrapper over ``run_scenario("calibration", ...)``; accepts the
    scenario's declared parameters as keywords.
    """
    return run_scenario("calibration", **overrides).artifact


def calibrate(
    gossip: GossipParams,
    lifting: LiftingParams,
    *,
    seed: int = 1234,
    duration: float = 15.0,
    n: Optional[int] = None,
    loss_rate: float = 0.04,
    degraded_fraction: float = 0.0,
    degraded_loss: float = 0.12,
    degraded_upload: Optional[float] = None,
) -> CalibrationResult:
    """Run an honest-only deployment and measure blame statistics.

    ``n`` defaults to ``min(gossip.n, 120)`` — blame rates per node are
    size-independent once the system is well mixed, so the calibration
    can run on a smaller deployment than the production one.

    When the production deployment contains poorly connected nodes the
    calibration environment should too (pass ``degraded_fraction``) —
    their losses inflate everybody's wrongful blames.  The compensation
    uses the *median* per-node blame rate, which is robust against the
    degraded nodes' own heavy blame tail (the designer cannot tell
    degraded nodes apart a priori); the score spread is likewise taken
    from the inter-quartile range so that the derived threshold targets
    the healthy population.
    """
    job = calibration_job(
        gossip,
        lifting,
        seed=seed,
        duration=duration,
        n=n,
        loss_rate=loss_rate,
        degraded_fraction=degraded_fraction,
        degraded_loss=degraded_loss,
        degraded_upload=degraded_upload,
    )
    [result] = run_jobs([job])
    return result.get("calibration")
