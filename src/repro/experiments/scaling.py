"""Large-n scalability sweep: wall-clock cost per simulated second vs n.

Not a paper artefact — LiFTinG was validated on ~300 PlanetLab nodes,
and the ROADMAP's north star needs single deployments far beyond that.
This experiment measures how expensive one simulated second of a
PlanetLab-style deployment is as the system size grows, producing the
scaling curve recorded in ``benchmarks/BENCH_substrate.json`` (see
``benchmarks/bench_scaling_curve.py`` and the "Scaling with n" section
of ``docs/PERFORMANCE.md``).

Timing runs *inside* the worker around a warmed-up cluster, so a
multi-process sweep (``jobs > 1``) still times each deployment
correctly — but concurrent workers contend for cores, so curves meant
as performance baselines should be recorded with ``jobs=1``; ``jobs``
exists for functional smoke sweeps (CI) where wall accuracy is
secondary.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.config import planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.runtime.parallel import Task
from repro.scenarios import Param, RunResult, run_scenario, scenario
from repro.util.validation import require


@dataclass(frozen=True)
class ScalingPoint:
    """Measured cost of one deployment size."""

    n: int
    wall_seconds: float
    sim_seconds: float
    #: engine events fired during the timed window.
    events: int
    #: tracemalloc peak over construction + warm-up (MiB).  Dominated by
    #: the standing per-node state, which is what the SoA re-layout
    #: targets; 0.0 when the worker could not trace (nested tracing).
    peak_mem_mib: float = 0.0

    @property
    def s_per_sim_second(self) -> float:
        """Wall-clock seconds spent per simulated second."""
        return self.wall_seconds / self.sim_seconds

    @property
    def events_per_wall_second(self) -> float:
        """Engine throughput during the timed window."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    @property
    def peak_mem_kib_per_node(self) -> float:
        """Peak traced memory per deployment node (KiB) — the curve that
        must bend *down* as n grows for the pooled layout to pay off."""
        if self.n <= 0:
            return 0.0
        return self.peak_mem_mib * 1024.0 / self.n


@dataclass(frozen=True)
class ScalingResult:
    """The measured curve of a size sweep."""

    points: Tuple[ScalingPoint, ...]
    warmup: float
    duration: float
    seed: int

    def rows(self) -> Tuple[Tuple[int, float, float], ...]:
        """(n, s_per_sim_second, events_per_wall_second) per size."""
        return tuple(
            (p.n, p.s_per_sim_second, p.events_per_wall_second) for p in self.points
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (used by the benchmark recorder)."""
        return {
            "warmup_sim_s": self.warmup,
            "duration_sim_s": self.duration,
            "seed": self.seed,
            "s_per_sim_second": {str(p.n): round(p.s_per_sim_second, 4) for p in self.points},
            "peak_mem_mib": {str(p.n): round(p.peak_mem_mib, 2) for p in self.points},
        }


def scaling_config(n: int, seed: int = 1) -> ClusterConfig:
    """The deployment the sweep times: PlanetLab parameters at size ``n``.

    Mirrors the ``cluster300`` regression kernel (fanout 5, 10 managers)
    so curve points are comparable with the recorded baselines.
    """
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=n, fanout=5, source_fanout=5)
    lifting = replace(lifting, managers=10)
    return ClusterConfig(gossip=gossip, lifting=lifting, seed=seed)


def _measure_point(n: int, seed: int, warmup: float, duration: float) -> ScalingPoint:
    """Worker body: build, warm up, time ``duration`` simulated seconds.

    Memory is traced over construction + warm-up only: tracemalloc slows
    execution 2-4x, so tracing stops *before* the timed window starts —
    the wall-clock numbers are never taken under instrumentation.  The
    peak is dominated by the standing cluster state (the transient churn
    on top is bounded by warm-up traffic), which is the quantity the
    MiB/node curve tracks.
    """
    traced = not tracemalloc.is_tracing()
    if traced:
        tracemalloc.start()
    cluster = SimCluster(scaling_config(n, seed=seed))
    cluster.run(until=warmup)
    peak_mib = 0.0
    if traced:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_mib = peak / (1024.0 * 1024.0)
    events_before = cluster.sim.events_processed
    start = time.perf_counter()
    cluster.run(until=warmup + duration)
    wall = time.perf_counter() - start
    return ScalingPoint(
        n=n,
        wall_seconds=wall,
        sim_seconds=duration,
        events=cluster.sim.events_processed - events_before,
        peak_mem_mib=peak_mib,
    )


_SCALING_PARAMS = (
    Param("sizes", int, (100, 300, 1000), sequence=True,
          help="deployment sizes to measure",
          validate=lambda v: len(v) >= 1, constraint="at least one size"),
    Param("duration", float, 3.0, "timed simulated seconds per size",
          validate=lambda v: v > 0, constraint="> 0"),
    Param("warmup", float, 2.0, "warm-up simulated seconds per size",
          validate=lambda v: v >= 0, constraint=">= 0"),
    Param("seed", int, 1, "deployment seed"),
    Param("jobs", int, 1, "worker processes (keep 1 for timing baselines)"),
)


def _scaling_reduce(points, params) -> ScalingResult:
    return ScalingResult(
        points=tuple(points),
        warmup=params["warmup"],
        duration=params["duration"],
        seed=params["seed"],
    )


def _scaling_metrics(result: ScalingResult, params) -> dict:
    return {
        "warmup_sim_s": result.warmup,
        "duration_sim_s": result.duration,
        "points": [
            {
                "n": point.n,
                "s_per_sim_second": point.s_per_sim_second,
                "events_per_wall_second": point.events_per_wall_second,
                "events": point.events,
                "peak_mem_mib": point.peak_mem_mib,
                "peak_mem_kib_per_node": point.peak_mem_kib_per_node,
            }
            for point in result.points
        ],
    }


def _scaling_render(run: RunResult) -> str:
    lines = ["     n  s/sim-s   events/s  peak MiB  KiB/node"]
    for point in run.artifact.points:
        lines.append(
            f"{point.n:6d}  {point.s_per_sim_second:7.3f}"
            f"  {point.events_per_wall_second:9,.0f}"
            f"  {point.peak_mem_mib:8.1f}"
            f"  {point.peak_mem_kib_per_node:8.1f}"
        )
    return "\n".join(lines)


@scenario(
    "scaling",
    "Large-n scalability sweep — wall-clock seconds per simulated second vs n",
    params=_SCALING_PARAMS,
    reduce=_scaling_reduce,
    summarize=_scaling_metrics,
    render=_scaling_render,
    tags=("sweep", "performance", "deployment"),
    smoke={"sizes": (30,), "duration": 0.4, "warmup": 0.2},
)
def _scaling_scenario(params):
    """One timing task per deployment size (timed inside the worker)."""
    return [
        Task(
            fn=_measure_point,
            args=(int(n), params["seed"], params["warmup"], params["duration"]),
            key=int(n),
        )
        for n in params["sizes"]
    ]


def run_scaling(
    sizes: Sequence[int] = (100, 300, 1000),
    *,
    duration: float = 3.0,
    warmup: float = 2.0,
    seed: int = 1,
    jobs: int = 1,
) -> ScalingResult:
    """Measure the s-per-sim-second curve over ``sizes``.

    Thin backward-compatible wrapper over ``run_scenario("scaling", ...)``.
    """
    require(len(sizes) >= 1, "need at least one size")
    return run_scenario(
        "scaling",
        sizes=tuple(int(n) for n in sizes),
        duration=duration,
        warmup=warmup,
        seed=seed,
        jobs=jobs,
    ).artifact
