"""Large-n scalability sweep: wall-clock cost per simulated second vs n.

Not a paper artefact — LiFTinG was validated on ~300 PlanetLab nodes,
and the ROADMAP's north star needs single deployments far beyond that.
This experiment measures how expensive one simulated second of a
PlanetLab-style deployment is as the system size grows, producing the
scaling curve recorded in ``benchmarks/BENCH_substrate.json`` (see
``benchmarks/bench_scaling_curve.py`` and the "Scaling with n" section
of ``docs/PERFORMANCE.md``).

Timing runs *inside* the worker around a warmed-up cluster, so a
multi-process sweep (``jobs > 1``) still times each deployment
correctly — but concurrent workers contend for cores, so curves meant
as performance baselines should be recorded with ``jobs=1``; ``jobs``
exists for functional smoke sweeps (CI) where wall accuracy is
secondary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.config import planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.runtime.parallel import Task, run_tasks
from repro.util.validation import require


@dataclass(frozen=True)
class ScalingPoint:
    """Measured cost of one deployment size."""

    n: int
    wall_seconds: float
    sim_seconds: float
    #: engine events fired during the timed window.
    events: int

    @property
    def s_per_sim_second(self) -> float:
        """Wall-clock seconds spent per simulated second."""
        return self.wall_seconds / self.sim_seconds

    @property
    def events_per_wall_second(self) -> float:
        """Engine throughput during the timed window."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds


@dataclass(frozen=True)
class ScalingResult:
    """The measured curve of a size sweep."""

    points: Tuple[ScalingPoint, ...]
    warmup: float
    duration: float
    seed: int

    def rows(self) -> Tuple[Tuple[int, float, float], ...]:
        """(n, s_per_sim_second, events_per_wall_second) per size."""
        return tuple(
            (p.n, p.s_per_sim_second, p.events_per_wall_second) for p in self.points
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (used by the benchmark recorder)."""
        return {
            "warmup_sim_s": self.warmup,
            "duration_sim_s": self.duration,
            "seed": self.seed,
            "s_per_sim_second": {str(p.n): round(p.s_per_sim_second, 4) for p in self.points},
        }


def scaling_config(n: int, seed: int = 1) -> ClusterConfig:
    """The deployment the sweep times: PlanetLab parameters at size ``n``.

    Mirrors the ``cluster300`` regression kernel (fanout 5, 10 managers)
    so curve points are comparable with the recorded baselines.
    """
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=n, fanout=5, source_fanout=5)
    lifting = replace(lifting, managers=10)
    return ClusterConfig(gossip=gossip, lifting=lifting, seed=seed)


def _measure_point(n: int, seed: int, warmup: float, duration: float) -> ScalingPoint:
    """Worker body: build, warm up, time ``duration`` simulated seconds."""
    cluster = SimCluster(scaling_config(n, seed=seed))
    cluster.run(until=warmup)
    events_before = cluster.sim.events_processed
    start = time.perf_counter()
    cluster.run(until=warmup + duration)
    wall = time.perf_counter() - start
    return ScalingPoint(
        n=n,
        wall_seconds=wall,
        sim_seconds=duration,
        events=cluster.sim.events_processed - events_before,
    )


def run_scaling(
    sizes: Sequence[int] = (100, 300, 1000),
    *,
    duration: float = 3.0,
    warmup: float = 2.0,
    seed: int = 1,
    jobs: int = 1,
) -> ScalingResult:
    """Measure the s-per-sim-second curve over ``sizes``."""
    require(len(sizes) >= 1, "need at least one size")
    require(duration > 0, "duration must be > 0")
    require(warmup >= 0, "warmup must be >= 0")
    tasks = [
        Task(fn=_measure_point, args=(int(n), seed, warmup, duration), key=int(n))
        for n in sizes
    ]
    points = run_tasks(tasks, jobs=jobs)
    return ScalingResult(
        points=tuple(points), warmup=warmup, duration=duration, seed=seed
    )
