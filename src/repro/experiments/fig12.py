"""Figure 12 — detection probability and bandwidth gain vs δ.

Sweeps the uniform degree of freeriding ``δ1 = δ2 = δ3 = δ`` and plots

* the fraction of freeriders detected at the fixed threshold
  ``η = -9.75`` after ``r = 50`` periods (left axis), and
* the upload bandwidth saved, ``1-(1-δ)³`` (right axis).

Paper landmarks: δ = 0.05 → α ≈ 65 %; δ ≥ 0.1 → α > 99 %; a 10 % gain
(δ ≈ 0.035, FlightPath's rationality threshold) is caught half the
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.config import FreeriderDegree, analysis_params
from repro.mc.blame_model import BlameModel, simulate_scores
from repro.runtime.parallel import Task
from repro.scenarios import Param, run_scenario, scenario
from repro.util.rng import make_generator


@dataclass
class Fig12Result:
    """The sweep series."""

    deltas: np.ndarray
    detection: np.ndarray
    false_positives: np.ndarray
    gain: np.ndarray
    eta: float

    def detection_at(self, delta: float) -> float:
        """Interpolated detection probability at ``delta``."""
        return float(np.interp(delta, self.deltas, self.detection))

    def gain_at(self, delta: float) -> float:
        """Interpolated bandwidth gain at ``delta``."""
        return float(np.interp(delta, self.deltas, self.gain))

    def delta_for_gain(self, gain: float) -> float:
        """The δ achieving a given bandwidth gain."""
        return float(np.interp(gain, self.gain, self.deltas))

    def rows(self) -> Sequence[Tuple[float, float, float]]:
        """(δ, α, gain) rows for printing."""
        return [
            (float(d), float(a), float(g))
            for d, a, g in zip(self.deltas, self.detection, self.gain)
        ]


def _fig12_point(
    model: BlameModel,
    seed: int,
    index: int,
    delta: float,
    eta: float,
    rounds: int,
    samples_per_point: int,
) -> Tuple[float, float, float]:
    """One sweep point ``(α, β, gain)`` from its own derived RNG stream."""
    degree = FreeriderDegree.uniform(float(delta))
    rng = make_generator(seed, f"fig12/delta/{index}")
    sample = simulate_scores(
        model,
        rng,
        n_honest=samples_per_point,
        n_freeriders=samples_per_point,
        degree=degree,
        rounds=rounds,
    )
    return (
        sample.detection_fraction(eta),
        sample.false_positive_fraction(eta),
        degree.bandwidth_gain,
    )


#: the paper's δ sweep: fine steps through the wise region, coarser above.
DEFAULT_DELTAS = tuple(
    float(delta)
    for delta in np.concatenate(
        [np.arange(0.0, 0.06, 0.005), np.arange(0.06, 0.21, 0.01)]
    )
)

_FIG12_PARAMS = (
    Param("deltas", float, DEFAULT_DELTAS, sequence=True,
          help="degrees of freeriding δ to sweep"),
    Param("rounds", int, 50, "gossip periods accumulated",
          validate=lambda v: v >= 1, constraint=">= 1"),
    Param("samples_per_point", int, 3_000, "Monte-Carlo samples per population",
          validate=lambda v: v >= 1, constraint=">= 1"),
    Param("seed", int, 17, "Monte-Carlo seed"),
    Param("jobs", int, 1, "worker processes for the sweep points (0 = all cores)"),
)


def _fig12_reduce(points, params) -> Fig12Result:
    _gossip, lifting = analysis_params()
    if points:
        alphas, betas, gains = (np.asarray(series) for series in zip(*points))
    else:
        alphas = betas = gains = np.empty(0)
    return Fig12Result(
        deltas=np.asarray(params["deltas"], dtype=float),
        detection=alphas,
        false_positives=betas,
        gain=gains,
        eta=lifting.eta,
    )


def _fig12_metrics(result: Fig12Result, params) -> dict:
    return {
        "eta": result.eta,
        "deltas": result.deltas,
        "detection": result.detection,
        "false_positives": result.false_positives,
        "gain": result.gain,
    }


@scenario(
    "fig12",
    "Figure 12 — detection probability and bandwidth gain vs the degree δ",
    params=_FIG12_PARAMS,
    reduce=_fig12_reduce,
    summarize=_fig12_metrics,
    tags=("figure", "monte-carlo", "sweep"),
    smoke={"deltas": (0.0, 0.05, 0.1), "rounds": 10, "samples_per_point": 500},
)
def _fig12_scenario(params):
    """One independent Monte-Carlo task per sweep point."""
    gossip, lifting = analysis_params()
    model = BlameModel(
        fanout=gossip.fanout,
        request_size=gossip.request_size,
        p_reception=lifting.p_reception,
        p_dcc=lifting.p_dcc,
    )
    return [
        Task(
            fn=_fig12_point,
            args=(
                model,
                params["seed"],
                index,
                float(delta),
                lifting.eta,
                params["rounds"],
                params["samples_per_point"],
            ),
            key=float(delta),
        )
        for index, delta in enumerate(params["deltas"])
    ]


def run_fig12(
    *,
    deltas: Sequence[float] = None,
    rounds: int = 50,
    samples_per_point: int = 3_000,
    seed: int = 17,
    jobs: int = 1,
) -> Fig12Result:
    """Run the δ sweep with the analysis parameters.

    Thin backward-compatible wrapper over ``run_scenario("fig12", ...)``.
    Each sweep point is an independent Monte-Carlo task with a
    seed-derived per-point RNG stream, so ``jobs`` fans the sweep out
    over processes with bit-identical series for every ``jobs`` value.
    """
    return run_scenario(
        "fig12",
        deltas=None if deltas is None else tuple(float(d) for d in deltas),
        rounds=rounds,
        samples_per_point=samples_per_point,
        seed=seed,
        jobs=jobs,
    ).artifact
