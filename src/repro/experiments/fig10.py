"""Figure 10 — impact of message losses on honest scores.

A 10,000-honest-node system in steady state, one gossip period, both
verifications active (``p_dcc = 1``), 7 % loss, f = 12, |R| = 4.
Scores are compensated by ``-b̃ = -72.95`` (Eq. 5); the paper observes
a mean within 0.01 of zero and an experimental standard deviation of
25.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import analysis_params
from repro.mc.blame_model import BlameModel, simulate_scores
from repro.runtime.parallel import Task
from repro.scenarios import Param, run_scenario, scenario
from repro.util.rng import make_generator
from repro.util.stats import histogram_density


@dataclass
class Fig10Result:
    """Compensated honest scores after one period."""

    scores: np.ndarray
    compensation: float
    mean: float
    stddev: float

    def pdf(self, bins: int = 60) -> Tuple[np.ndarray, np.ndarray]:
        """The histogram the paper plots (fraction of nodes per bin)."""
        return histogram_density(self.scores, bins=bins, value_range=(-250.0, 50.0))


def _compute_fig10(n: int, seed: int) -> Fig10Result:
    """Sample the one-period compensated score distribution (worker body)."""
    gossip, lifting = analysis_params()
    model = BlameModel(
        fanout=gossip.fanout,
        request_size=gossip.request_size,
        p_reception=lifting.p_reception,
        p_dcc=lifting.p_dcc,
    )
    rng = make_generator(seed, "fig10")
    sample = simulate_scores(model, rng, n_honest=n, rounds=1)
    scores = sample.honest
    return Fig10Result(
        scores=scores,
        compensation=sample.compensation,
        mean=float(np.mean(scores)),
        stddev=float(np.std(scores, ddof=1)),
    )


def _fig10_metrics(result: Fig10Result, params) -> dict:
    centers, fractions = result.pdf()
    return {
        "compensation": result.compensation,
        "mean": result.mean,
        "stddev": result.stddev,
        "samples": int(result.scores.size),
        "pdf": {"centers": centers, "fractions": fractions},
    }


@scenario(
    "fig10",
    "Figure 10 — one-period compensated honest-score distribution under losses",
    params=(
        Param("n", int, 10_000, "honest nodes sampled",
              validate=lambda v: v >= 2, constraint=">= 2"),
        Param("seed", int, 11, "Monte-Carlo seed"),
    ),
    summarize=_fig10_metrics,
    tags=("figure", "monte-carlo"),
    smoke={"n": 2_000},
)
def _fig10_scenario(params):
    return [Task(fn=_compute_fig10, args=(params["n"], params["seed"]), key="fig10")]


def run_fig10(*, n: int = 10_000, seed: int = 11) -> Fig10Result:
    """Sample the one-period compensated score distribution.

    Thin backward-compatible wrapper over ``run_scenario("fig10", ...)``.
    """
    return run_scenario("fig10", n=n, seed=seed).artifact
