"""Figure 13 — entropy of the nodes' histories under full membership.

10,000 nodes, history of ``n_h · f = 600`` partners (n_h = 50, f = 12):

* fanout entropies observed in [9.11, 9.21] against the maximum
  ``log2 600 = 9.23`` (Figure 13a);
* fanin entropies in [8.98, 9.34] — fanin sizes fluctuate around 600 so
  the fanout bound does not apply (Figure 13b);
* the threshold γ = 8.95 leaves a negligible false-expulsion
  probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.entropy_analysis import max_fanout_entropy
from repro.config import analysis_params
from repro.mc.entropy import sample_fanin_entropies, sample_fanout_entropies
from repro.runtime.parallel import Task
from repro.scenarios import Param, run_scenario, scenario
from repro.util.rng import make_generator
from repro.util.stats import histogram_density


@dataclass
class Fig13Result:
    """Entropy samples for both history directions."""

    fanout_entropies: np.ndarray
    fanin_entropies: np.ndarray
    fanin_sizes: np.ndarray
    gamma: float
    max_entropy: float

    @property
    def fanout_range(self) -> Tuple[float, float]:
        """Observed (min, max) fanout entropy."""
        return float(self.fanout_entropies.min()), float(self.fanout_entropies.max())

    @property
    def fanin_range(self) -> Tuple[float, float]:
        """Observed (min, max) fanin entropy."""
        return float(self.fanin_entropies.min()), float(self.fanin_entropies.max())

    @property
    def fanout_false_expulsions(self) -> float:
        """Fraction of honest fanout histories below γ."""
        return float(np.mean(self.fanout_entropies < self.gamma))

    @property
    def fanin_false_expulsions(self) -> float:
        """Fraction of honest fanin histories below γ."""
        return float(np.mean(self.fanin_entropies < self.gamma))

    def fanout_pdf(self, bins: int = 40):
        """Figure 13a's histogram."""
        return histogram_density(self.fanout_entropies, bins=bins, value_range=(8.8, 9.4))

    def fanin_pdf(self, bins: int = 40):
        """Figure 13b's histogram."""
        return histogram_density(self.fanin_entropies, bins=bins, value_range=(8.8, 9.4))


def _compute_fig13(n: int, seed: int) -> Fig13Result:
    """Sample both entropy distributions (worker body)."""
    gossip, lifting = analysis_params()
    history_picks = lifting.history_periods * gossip.fanout
    rng = make_generator(seed, "fig13")
    fanout = sample_fanout_entropies(rng, n, history_picks)
    fanin, sizes = sample_fanin_entropies(rng, n, history_picks)
    return Fig13Result(
        fanout_entropies=fanout,
        fanin_entropies=fanin,
        fanin_sizes=sizes,
        gamma=lifting.gamma,
        max_entropy=max_fanout_entropy(lifting.history_periods, gossip.fanout),
    )


def _fig13_metrics(result: Fig13Result, params) -> dict:
    fanout_lo, fanout_hi = result.fanout_range
    fanin_lo, fanin_hi = result.fanin_range
    return {
        "gamma": result.gamma,
        "max_entropy": result.max_entropy,
        "fanout_range": (fanout_lo, fanout_hi),
        "fanin_range": (fanin_lo, fanin_hi),
        "fanout_false_expulsions": result.fanout_false_expulsions,
        "fanin_false_expulsions": result.fanin_false_expulsions,
    }


@scenario(
    "fig13",
    "Figure 13 — fanout/fanin history entropies vs the audit threshold γ",
    params=(
        Param("n", int, 10_000, "histories sampled",
              validate=lambda v: v >= 2, constraint=">= 2"),
        Param("seed", int, 19, "Monte-Carlo seed"),
    ),
    summarize=_fig13_metrics,
    tags=("figure", "monte-carlo"),
    smoke={"n": 1_500},
)
def _fig13_scenario(params):
    return [Task(fn=_compute_fig13, args=(params["n"], params["seed"]), key="fig13")]


def run_fig13(*, n: int = 10_000, seed: int = 19) -> Fig13Result:
    """Sample both entropy distributions at the analysis parameters.

    Thin backward-compatible wrapper over ``run_scenario("fig13", ...)``.
    """
    return run_scenario("fig13", n=n, seed=seed).artifact
