"""Figure 14 — score CDFs on the (simulated) PlanetLab deployment.

The §7 setting: 300 nodes, 674 kbps stream, f = 7, T_g = 500 ms,
M = 25 managers, ~4 % loss, 10 % freeriders that (i) contact only
f̂ = 6 partners (δ1 = 1/7), (ii) propose only 90 % of what they receive
(δ2 = 0.1), (iii) serve only 90 % of what they are requested
(δ3 = 0.1).  A tenth of the honest nodes get PlanetLab-grade poor
connections (extra loss + limited upload) — these are the paper's
false positives.

Scores (compensated assuming 4 % loss) are snapshot at 25/30/35 s for
``p_dcc = 1`` and ``p_dcc = 0.5``.  Paper landmarks at 30 s,
``p_dcc = 1``: 86 % of freeriders below η = −9.75, 12 % of honest
nodes below it; ``p_dcc = 0.5`` is slower but not twice as slow
(its 35 s ≈ the 30 s of ``p_dcc = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.config import FreeriderDegree, GossipParams, LiftingParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.scores import DetectionReport, detection_report
from repro.runtime.parallel import Job, Task, run_jobs
from repro.scenarios import Param, RunResult, run_scenario, scenario

#: the paper's freerider configuration (§7.1).
PLANETLAB_DEGREE = FreeriderDegree(delta1=1.0 / 7.0, delta2=0.1, delta3=0.1)


@dataclass
class Fig14Result:
    """Score snapshots indexed by (p_dcc, time)."""

    snapshots: Dict[Tuple[float, float], Dict[int, float]]
    reports: Dict[Tuple[float, float], DetectionReport]
    eta: float
    #: threshold derived from the calibration run with the paper's
    #: "false positives below 1 %" rule (§6.3.1).
    eta_calibrated: float
    compensation: float
    freerider_ids: frozenset
    degraded_ids: frozenset

    def report(self, p_dcc: float, time: float) -> DetectionReport:
        """The detection report of one snapshot (at the paper's η)."""
        return self.reports[(p_dcc, time)]

    def report_at(self, p_dcc: float, time: float, eta: float) -> DetectionReport:
        """Detection report of one snapshot at an arbitrary threshold."""
        return detection_report(
            self.snapshots[(p_dcc, time)], set(self.freerider_ids), eta
        )

    def degraded_false_positive_share(self, p_dcc: float, time: float) -> float:
        """Among honest nodes below η, the fraction that are degraded —
        the paper attributes most false positives to poor connections."""
        scores = self.snapshots[(p_dcc, time)]
        below = [
            nid
            for nid, score in scores.items()
            if nid not in self.freerider_ids and score <= self.eta
        ]
        if not below:
            return 0.0
        degraded = sum(1 for nid in below if nid in self.degraded_ids)
        return degraded / len(below)


def _extract_scores(cluster) -> Dict[int, float]:
    return cluster.scores()


def _extract_roles(cluster) -> Tuple[frozenset, frozenset]:
    # Roles are fixed at construction but this extractor runs at every
    # checkpoint; returning one memoized pair lets pickle ship a single
    # copy (memo references) instead of one per checkpoint.
    roles = getattr(cluster, "_fig14_roles", None)
    if roles is None:
        roles = (frozenset(cluster.freerider_ids), frozenset(cluster.degraded_ids))
        cluster._fig14_roles = roles
    return roles


def _compute_fig14(
    *,
    n: int = 120,
    seed: int = 23,
    times: Sequence[float] = (25.0, 30.0, 35.0),
    p_dcc_values: Sequence[float] = (1.0, 0.5),
    freerider_fraction: float = 0.10,
    degree: FreeriderDegree = PLANETLAB_DEGREE,
    degraded_fraction: float = 0.10,
    degraded_loss: float = 0.12,
    degraded_upload: float = 40_000.0,
    loss_rate: float = 0.04,
    chunk_size: int = 1400,
    calibration_duration: float = 20.0,
    false_positive_target: float = 0.01,
    jobs: int = 1,
) -> Fig14Result:
    """Run the deployment for each ``p_dcc`` and snapshot scores.

    Expulsion runs in observation mode so the full CDFs (including
    freeriders far below the threshold) are visible, exactly like the
    paper's plots.  The default system size is scaled down from 300 for
    tractability (pass ``n=300`` for the full setting); chunking is
    finer than the examples' default so that per-period interaction
    rates approach the analysis's steady state.

    Compensation and the calibrated threshold come from an honest-only
    calibration run in the same environment (see
    :mod:`repro.experiments.calibration`).  The per-``p_dcc`` clusters
    derive their compensation from the calibration result, so the run
    has two phases: the calibration job, then one independent job per
    ``p_dcc`` (each snapshotting its scores at every time in ``times``
    worker-side), both fanned out with ``jobs``.
    """
    from repro.experiments.calibration import calibration_job
    from repro.util.validation import require

    require(len(times) > 0, "times must name at least one snapshot instant")
    gossip_base, lifting_base = planetlab_params()
    gossip = replace(gossip_base, n=n, chunk_size=chunk_size)
    [cal_result] = run_jobs(
        [
            calibration_job(
                gossip,
                replace(
                    lifting_base, p_dcc=max(p_dcc_values), assumed_loss_rate=loss_rate
                ),
                seed=seed + 1,
                duration=calibration_duration,
                loss_rate=loss_rate,
                degraded_fraction=degraded_fraction,
                degraded_loss=degraded_loss,
                degraded_upload=degraded_upload,
            )
        ],
        jobs=jobs,
    )
    calibration = cal_result.get("calibration")

    job_list = []
    for p_dcc in p_dcc_values:
        lifting = replace(lifting_base, p_dcc=p_dcc, assumed_loss_rate=loss_rate)
        # Lower verification intensity produces proportionally fewer
        # wrongful blames; scale the measured compensation the same way
        # the closed forms scale (the confirm-round share is ∝ p_dcc).
        compensation = calibration.compensation
        if p_dcc != max(p_dcc_values):
            from repro.core.reputation import compensation_per_period

            full = compensation_per_period(
                gossip, replace(lifting, p_dcc=max(p_dcc_values))
            )
            here = compensation_per_period(gossip, lifting)
            compensation = calibration.compensation * (here / full)
        config = ClusterConfig(
            gossip=gossip,
            lifting=lifting,
            seed=seed,
            loss_rate=loss_rate,
            freerider_fraction=freerider_fraction,
            freerider_degree=degree,
            degraded_fraction=degraded_fraction,
            degraded_loss=degraded_loss,
            degraded_upload=degraded_upload,
            lifting_enabled=True,
            expulsion_enabled=False,
            compensation=compensation,
        )
        job_list.append(
            Job(
                config=config,
                until=max(times),
                checkpoints=tuple(sorted(times)),
                extractors=(("scores", _extract_scores), ("roles", _extract_roles)),
                key=p_dcc,
            )
        )
    by_p_dcc = {result.key: result for result in run_jobs(job_list, jobs=jobs)}

    snapshots: Dict[Tuple[float, float], Dict[int, float]] = {}
    reports: Dict[Tuple[float, float], DetectionReport] = {}
    freerider_ids: frozenset = frozenset()
    degraded_ids: frozenset = frozenset()
    for p_dcc in p_dcc_values:
        result = by_p_dcc[p_dcc]
        freerider_ids, degraded_ids = result.get("roles")
        for time in sorted(times):
            scores = result.at("scores", float(time))
            snapshots[(p_dcc, time)] = scores
            reports[(p_dcc, time)] = detection_report(
                scores, set(freerider_ids), lifting_base.eta
            )

    return Fig14Result(
        snapshots=snapshots,
        reports=reports,
        eta=lifting_base.eta,
        eta_calibrated=calibration.eta_for_false_positives(false_positive_target),
        compensation=calibration.compensation,
        freerider_ids=freerider_ids,
        degraded_ids=degraded_ids,
    )


_FIG14_PARAMS = (
    Param("n", int, 120, "system size", validate=lambda v: v >= 8, constraint=">= 8"),
    Param("seed", int, 23, "deployment seed"),
    Param("times", float, (25.0, 30.0, 35.0), sequence=True,
          help="score snapshot instants (simulated seconds)",
          validate=lambda v: len(v) >= 1, constraint="at least one instant"),
    Param("p_dcc_values", float, (1.0, 0.5), sequence=True,
          help="cross-checking probabilities (one deployment each)"),
    Param("freerider_fraction", float, 0.10, "fraction of freerider nodes",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("deltas", float, PLANETLAB_DEGREE.as_tuple(), sequence=True,
          help="(δ1, δ2, δ3) of the freeriders",
          validate=lambda v: len(v) == 3, constraint="exactly 3 values"),
    Param("degraded_fraction", float, 0.10, "fraction of poorly connected nodes"),
    Param("degraded_loss", float, 0.12, "extra endpoint loss of degraded nodes"),
    Param("degraded_upload", float, 40_000.0, "upload cap of degraded nodes (bytes/s)"),
    Param("loss_rate", float, 0.04, "base datagram loss rate"),
    Param("chunk_size", int, 1400, "chunk payload bytes"),
    Param("calibration_duration", float, 20.0, "honest calibration run length (s)"),
    Param("false_positive_target", float, 0.01, "beta target for the derived eta"),
    Param("jobs", int, 1, "worker processes for the per-p_dcc deployments"),
)


def _fig14_task(params: dict) -> Fig14Result:
    """Worker/driver body: the staged calibration → deployments run."""
    kwargs = dict(params)
    kwargs["degree"] = FreeriderDegree(*kwargs.pop("deltas"))
    return _compute_fig14(**kwargs)


def _fig14_metrics(result: Fig14Result, params) -> dict:
    snapshots = {}
    for (p_dcc, time), report in sorted(result.reports.items()):
        snapshots[f"p_dcc={p_dcc:g}@{time:g}s"] = {
            "detection": report.detection,
            "false_positives": report.false_positives,
        }
    return {
        "eta": result.eta,
        "eta_calibrated": result.eta_calibrated,
        "compensation": result.compensation,
        "freeriders": len(result.freerider_ids),
        "degraded": len(result.degraded_ids),
        "snapshots": snapshots,
    }


def _fig14_render(run: RunResult) -> str:
    result: Fig14Result = run.artifact
    lines = [
        f"compensation b~ = {result.compensation:.2f}; "
        f"eta = {result.eta:.2f} (calibrated {result.eta_calibrated:.2f})",
        "p_dcc  time(s)  detection  false positives",
    ]
    for (p_dcc, time), report in sorted(result.reports.items()):
        lines.append(
            f"{p_dcc:5.1f}  {time:7.0f}  {report.detection:9.0%}  "
            f"{report.false_positives:15.0%}"
        )
    return "\n".join(lines)


@scenario(
    "fig14",
    "Figure 14 — PlanetLab-style score CDF snapshots per p_dcc",
    params=_FIG14_PARAMS,
    reduce=None,  # single staged task; its result is the artifact
    summarize=_fig14_metrics,
    render=_fig14_render,
    tags=("figure", "deployment", "staged"),
    smoke={"n": 40, "times": (6.0, 8.0), "calibration_duration": 4.0},
    sim_time=lambda params: max(params["times"]),
)
def _fig14_scenario(params):
    """A single staged task: the calibration job feeds the per-``p_dcc``
    deployment jobs, so the stages cannot be expressed as one flat wave
    — the task fans its inner stages out with the ``jobs`` parameter
    itself (see docs/SCENARIOS.md, "Staged scenarios")."""
    return [Task(fn=_fig14_task, args=(dict(params),), key="fig14")]


def run_fig14(
    *,
    n: int = 120,
    seed: int = 23,
    times: Sequence[float] = (25.0, 30.0, 35.0),
    p_dcc_values: Sequence[float] = (1.0, 0.5),
    freerider_fraction: float = 0.10,
    degree: FreeriderDegree = PLANETLAB_DEGREE,
    degraded_fraction: float = 0.10,
    degraded_loss: float = 0.12,
    degraded_upload: float = 40_000.0,
    loss_rate: float = 0.04,
    chunk_size: int = 1400,
    calibration_duration: float = 20.0,
    false_positive_target: float = 0.01,
    jobs: int = 1,
) -> Fig14Result:
    """Backward-compatible wrapper over ``run_scenario("fig14", ...)``."""
    return run_scenario(
        "fig14",
        n=n,
        seed=seed,
        times=tuple(float(t) for t in times),
        p_dcc_values=tuple(float(p) for p in p_dcc_values),
        freerider_fraction=freerider_fraction,
        deltas=degree.as_tuple(),
        degraded_fraction=degraded_fraction,
        degraded_loss=degraded_loss,
        degraded_upload=degraded_upload,
        loss_rate=loss_rate,
        chunk_size=chunk_size,
        calibration_duration=calibration_duration,
        false_positive_target=false_positive_target,
        jobs=jobs,
    ).artifact
