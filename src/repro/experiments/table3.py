"""Table 3 — message overhead of the verifications.

Runs a small deployment, counts the verification messages each node
sent per gossip period, and compares them with the expected-count model
of :mod:`repro.analysis.overhead` (confirms ≈ ``p_dcc · f²``, acks ≈
servers-per-period, responses ≈ confirms).  A second sweep over several
fanouts checks the ``O(f²)`` scaling claim by fitting the log-log
slope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.analysis.overhead import MessageCountModel, expected_message_counts, scaling_exponent
from repro.config import GossipParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.overhead import message_counts_per_node_period
from repro.runtime.parallel import Job, run_jobs


@dataclass
class Table3Result:
    """Measured vs modelled per-node per-period message counts."""

    measured: Dict[str, float]
    model: MessageCountModel
    fanout_sweep: List[Tuple[int, float]]
    confirm_scaling_slope: float

    def row(self, kind: str) -> float:
        """Measured count for a message kind (0 when absent)."""
        return self.measured.get(kind, 0.0)


def _extract_message_counts(cluster, *, duration: float) -> Dict[str, float]:
    gossip = cluster.config.gossip
    return message_counts_per_node_period(
        cluster.trace, duration, gossip.n, gossip.gossip_period
    )


def run_table3(
    *,
    n: int = 100,
    duration: float = 12.0,
    seed: int = 29,
    p_dcc: float = 1.0,
    fanout_sweep: Sequence[int] = (4, 6, 8),
    jobs: int = 1,
) -> Table3Result:
    """Measure verification message counts and their fanout scaling.

    The main deployment and each fanout-sweep deployment are
    independent; ``jobs`` fans them out to a process pool.
    """
    gossip_base, lifting_base = planetlab_params()
    gossip = replace(gossip_base, n=n)
    lifting = replace(lifting_base, p_dcc=p_dcc)

    # Exclude the cold-start: normalise over the full run but report the
    # steady-state approximation (duration is long enough to dominate).
    job_list = [
        Job(
            config=ClusterConfig(gossip=gossip, lifting=lifting, seed=seed),
            until=duration,
            extractors=(
                ("counts", partial(_extract_message_counts, duration=duration)),
            ),
            key="main",
        )
    ]
    for fanout in fanout_sweep:
        job_list.append(
            Job(
                config=ClusterConfig(
                    gossip=replace(gossip, fanout=fanout), lifting=lifting, seed=seed
                ),
                until=duration / 2,
                extractors=(
                    ("counts", partial(_extract_message_counts, duration=duration / 2)),
                ),
                key=("fanout", fanout),
            )
        )
    by_key = {result.key: result for result in run_jobs(job_list, jobs=jobs)}

    measured = by_key["main"].get("counts")
    model = expected_message_counts(
        gossip.fanout, gossip.request_size, p_dcc, lifting.managers
    )
    sweep: List[Tuple[int, float]] = [
        (fanout, by_key[("fanout", fanout)].get("counts").get("Confirm", 0.0))
        for fanout in fanout_sweep
    ]

    xs = [f for f, _c in sweep if _c > 0]
    ys = [c for _f, c in sweep if c > 0]
    slope = scaling_exponent(xs, ys) if len(xs) >= 2 else float("nan")
    return Table3Result(
        measured=measured,
        model=model,
        fanout_sweep=sweep,
        confirm_scaling_slope=slope,
    )
