"""Table 3 — message overhead of the verifications.

Runs a small deployment, counts the verification messages each node
sent per gossip period, and compares them with the expected-count model
of :mod:`repro.analysis.overhead` (confirms ≈ ``p_dcc · f²``, acks ≈
servers-per-period, responses ≈ confirms).  A second sweep over several
fanouts checks the ``O(f²)`` scaling claim by fitting the log-log
slope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Sequence, Tuple

from repro.analysis.overhead import MessageCountModel, expected_message_counts, scaling_exponent
from repro.config import GossipParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.overhead import message_counts_per_node_period
from repro.runtime.parallel import Job
from repro.scenarios import Param, RunResult, run_scenario, scenario


@dataclass
class Table3Result:
    """Measured vs modelled per-node per-period message counts."""

    measured: Dict[str, float]
    model: MessageCountModel
    fanout_sweep: List[Tuple[int, float]]
    confirm_scaling_slope: float

    def row(self, kind: str) -> float:
        """Measured count for a message kind (0 when absent)."""
        return self.measured.get(kind, 0.0)


def _extract_message_counts(cluster, *, duration: float) -> Dict[str, float]:
    gossip = cluster.config.gossip
    return message_counts_per_node_period(
        cluster.trace, duration, gossip.n, gossip.gossip_period
    )


_TABLE3_PARAMS = (
    Param("n", int, 100, "system size", validate=lambda v: v >= 8, constraint=">= 8"),
    Param("duration", float, 12.0, "simulated seconds of the main deployment",
          validate=lambda v: v > 0, constraint="> 0"),
    Param("seed", int, 29, "deployment seed"),
    Param("p_dcc", float, 1.0, "cross-checking probability",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("fanout_sweep", int, (4, 6, 8), sequence=True,
          help="fanouts for the O(f^2) scaling check"),
    Param("jobs", int, 1, "worker processes for the deployments (0 = all cores)"),
)


def _table3_reduce(results, params) -> Table3Result:
    gossip_base, lifting_base = planetlab_params()
    gossip = replace(gossip_base, n=params["n"])
    by_key = {result.key: result for result in results}

    measured = by_key["main"].get("counts")
    model = expected_message_counts(
        gossip.fanout, gossip.request_size, params["p_dcc"], lifting_base.managers
    )
    sweep: List[Tuple[int, float]] = [
        (fanout, by_key[("fanout", fanout)].get("counts").get("Confirm", 0.0))
        for fanout in params["fanout_sweep"]
    ]
    xs = [f for f, _c in sweep if _c > 0]
    ys = [c for _f, c in sweep if c > 0]
    slope = scaling_exponent(xs, ys) if len(xs) >= 2 else float("nan")
    return Table3Result(
        measured=measured,
        model=model,
        fanout_sweep=sweep,
        confirm_scaling_slope=slope,
    )


def _table3_metrics(result: Table3Result, params) -> dict:
    return {
        "measured_per_node_period": dict(result.measured),
        "model": {
            "acks": result.model.acks,
            "confirms": result.model.confirms_sent,
            "responses": result.model.confirm_responses_sent,
        },
        "fanout_sweep_confirms": [
            {"fanout": fanout, "confirms": confirms}
            for fanout, confirms in result.fanout_sweep
        ],
        "confirm_scaling_slope": result.confirm_scaling_slope,
    }


def _table3_render(run: RunResult) -> str:
    result: Table3Result = run.artifact
    lines = ["kind          measured/node/period"]
    for kind, count in sorted(result.measured.items()):
        lines.append(f"{kind:12s}  {count:8.2f}")
    lines.append(
        f"model: acks {result.model.acks:.2f}, confirms "
        f"{result.model.confirms_sent:.2f}, responses "
        f"{result.model.confirm_responses_sent:.2f}"
    )
    lines.append(f"confirm ~ f^{result.confirm_scaling_slope:.2f}")
    return "\n".join(lines)


@scenario(
    "table3",
    "Table 3 — verification message counts vs the expected-count model",
    params=_TABLE3_PARAMS,
    reduce=_table3_reduce,
    summarize=_table3_metrics,
    render=_table3_render,
    tags=("table", "deployment"),
    smoke={"n": 30, "duration": 4.0, "fanout_sweep": (4, 6)},
)
def _table3_scenario(params):
    """The main deployment plus one deployment per sweep fanout."""
    gossip_base, lifting_base = planetlab_params()
    gossip = replace(gossip_base, n=params["n"])
    lifting = replace(lifting_base, p_dcc=params["p_dcc"])
    duration = params["duration"]

    # Exclude the cold-start: normalise over the full run but report the
    # steady-state approximation (duration is long enough to dominate).
    job_list = [
        Job(
            config=ClusterConfig(gossip=gossip, lifting=lifting, seed=params["seed"]),
            until=duration,
            extractors=(
                ("counts", partial(_extract_message_counts, duration=duration)),
            ),
            key="main",
        )
    ]
    for fanout in params["fanout_sweep"]:
        job_list.append(
            Job(
                config=ClusterConfig(
                    gossip=replace(gossip, fanout=fanout), lifting=lifting,
                    seed=params["seed"],
                ),
                until=duration / 2,
                extractors=(
                    ("counts", partial(_extract_message_counts, duration=duration / 2)),
                ),
                key=("fanout", fanout),
            )
        )
    return job_list


def run_table3(
    *,
    n: int = 100,
    duration: float = 12.0,
    seed: int = 29,
    p_dcc: float = 1.0,
    fanout_sweep: Sequence[int] = (4, 6, 8),
    jobs: int = 1,
) -> Table3Result:
    """Measure verification message counts and their fanout scaling.

    Thin backward-compatible wrapper over ``run_scenario("table3", ...)``.
    The main deployment and each fanout-sweep deployment are
    independent; ``jobs`` fans them out to a process pool.
    """
    return run_scenario(
        "table3",
        n=n,
        duration=duration,
        seed=seed,
        p_dcc=p_dcc,
        fanout_sweep=tuple(int(f) for f in fanout_sweep),
        jobs=jobs,
    ).artifact
