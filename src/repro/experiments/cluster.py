"""Build and drive a complete simulated deployment.

:class:`SimCluster` is the testbed-in-a-box used by the PlanetLab-style
experiments (Figures 1, 14, Tables 3, 5): a discrete-event simulator, a
lossy network with per-node heterogeneity, a stream source, ``n``
protocol nodes with configured roles (honest / freerider / colluder /
degraded), the manager assignment and the expulsion controller.

Roles are assigned pseudo-randomly from the seed, so a cluster is fully
reproducible from its :class:`ClusterConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.config import (
    FreeriderDegree,
    GossipParams,
    HONEST_DEGREE,
    LiftingParams,
)
from repro.core.detector import ExpulsionController
from repro.core.reputation import (
    ManagerAssignment,
    ReputationPool,
    ScoreBoard,
    compensation_per_period,
)
from repro.core.soa import DenseIdRegistry, ProtocolStatePool
from repro.gossip.chunks import StreamSource
from repro.gossip.protocol import GossipNode, SimTransport
from repro.membership.failure_detector import (
    ChurnMonitor,
    FailureDetectorParams,
    apply_membership_event,
)
from repro.membership.full import FullMembership
from repro.metrics.health import HealthReport, health_curve
from repro.metrics.overhead import OverheadReport, bandwidth_overhead
from repro.metrics.scores import DetectionReport, detection_report
from repro.nodes.behavior import HonestBehavior
from repro.nodes.colluder import Coalition, ColludingBehavior
from repro.nodes.freerider import FreeriderBehavior
from repro.sim.engine import Simulator
from repro.sim.latency import UniformLatency
from repro.sim.loss import PerNodeLoss
from repro.sim.network import Network
from repro.util.rng import SeedSequenceFactory
from repro.util.validation import require, require_probability

NodeId = int


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to reproduce a deployment run."""

    gossip: GossipParams
    lifting: LiftingParams
    seed: int = 0
    #: base i.i.d. datagram loss (4 % ≈ the PlanetLab average).
    loss_rate: float = 0.04
    #: one-way latency drawn uniformly from this range (seconds).
    latency_range: tuple = (0.01, 0.08)
    #: upload capacity in bytes/s for regular nodes (None = unlimited).
    upload_rate: Optional[float] = None

    # --- adversary population ---------------------------------------
    freerider_fraction: float = 0.0
    freerider_degree: FreeriderDegree = HONEST_DEGREE
    colluding: bool = False
    collusion_bias: float = 0.0
    man_in_the_middle: bool = False
    forge_history: bool = False
    period_stride: int = 1
    #: named adversary policy armed on the freerider population (see
    #: :mod:`repro.adversary`); empty = the legacy degree/colluding
    #: switches above.  ``adversary_params`` is a tuple of ``(key,
    #: value)`` pairs forwarded to the policy constructor (a tuple, not
    #: a dict, to keep the config frozen and hashable).
    adversary: str = ""
    adversary_params: tuple = ()

    # --- PlanetLab-style heterogeneity -------------------------------
    #: fraction of *honest* nodes with a poor connection.
    degraded_fraction: float = 0.0
    #: extra endpoint loss applied to degraded nodes.
    degraded_loss: float = 0.15
    #: upload capacity of degraded nodes (bytes/s; None = same).
    degraded_upload: Optional[float] = None

    # --- substrate switches ------------------------------------------
    #: schedule deliveries on the calendar-queue timeline (the default);
    #: False pins every delivery to the binary heap — same firing order
    #: by contract, kept for A/B equivalence tests and debugging.
    delivery_timeline: bool = True

    # --- LiFTinG switches --------------------------------------------
    lifting_enabled: bool = True
    expulsion_enabled: bool = False
    #: per-period compensation b̃; None = closed form, 0.0 = ablated.
    compensation: Optional[float] = None
    #: probability that a node starts a sporadic local-history audit of
    #: a random peer each gossip period (§5: "run sporadically").
    p_audit: float = 0.0
    #: SWIM-style failure detection (None = off, the legacy behaviour:
    #: crashes are oracle-removed from membership).  When set, crashes
    #: go *undetected* until peers suspect and confirm them, suspects'
    #: blames are quarantined, and restarts rejoin with a bumped
    #: incarnation — see membership/failure_detector.py.
    failure_detector: Optional[FailureDetectorParams] = None

    def __post_init__(self) -> None:
        require_probability(self.freerider_fraction, "freerider_fraction")
        require_probability(self.degraded_fraction, "degraded_fraction")
        require_probability(self.loss_rate, "loss_rate")
        require(self.period_stride >= 1, "period_stride must be >= 1")

    def with_changes(self, **changes) -> "ClusterConfig":
        """A modified copy (sweeps use this)."""
        return replace(self, **changes)


class SimCluster:
    """A fully wired simulated deployment."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        gossip, lifting = config.gossip, config.lifting
        seeds = SeedSequenceFactory(config.seed)
        self.seeds = seeds

        self.sim = Simulator()
        self.loss = PerNodeLoss(seeds.generator("loss"), base=config.loss_rate)
        low, high = config.latency_range
        self.latency = UniformLatency(seeds.generator("latency"), low, high)
        self.network = Network(
            self.sim,
            latency=self.latency,
            loss=self.loss,
            use_timeline=config.delivery_timeline,
        )
        self.trace = self.network.trace

        node_ids = list(range(gossip.n))
        self.node_ids = node_ids

        # --- roles ----------------------------------------------------
        role_rng = seeds.generator("roles")
        n_freeriders = int(round(config.freerider_fraction * gossip.n))
        shuffled = list(node_ids)
        role_rng.shuffle(shuffled)
        self.freerider_ids: Set[NodeId] = set(shuffled[:n_freeriders])
        honest_pool = shuffled[n_freeriders:]
        n_degraded = int(round(config.degraded_fraction * len(honest_pool)))
        self.degraded_ids: Set[NodeId] = set(honest_pool[:n_degraded])
        self.honest_ids: Set[NodeId] = set(honest_pool)

        # --- shared services -------------------------------------------
        # Dense-id registry + struct-of-arrays pools: every node's hot
        # transient state is a slot in one cluster-owned pool, and every
        # manager's records are a row block in one reputation pool.  The
        # registry remaps slots on readmission (see _remap_node_state).
        self.registry = DenseIdRegistry()
        self.state_pool = ProtocolStatePool(capacity=gossip.n)
        self.registry.attach(self.state_pool)
        self.reputation_pool = ReputationPool(
            capacity=gossip.n * min(lifting.managers, gossip.n - 1)
        )
        self.membership = FullMembership(seeds.generator("membership"), node_ids)
        self.assignment = ManagerAssignment(
            node_ids, lifting.managers, seeds.seed("managers")
        )
        self.controller = ExpulsionController(
            self.network, [self.membership], enabled=config.expulsion_enabled
        )
        self.compensation = (
            compensation_per_period(gossip, lifting)
            if config.compensation is None
            else config.compensation
        )
        self.churn_monitor: Optional[ChurnMonitor] = (
            ChurnMonitor(clock=lambda: self.sim.now)
            if config.failure_detector is not None
            else None
        )

        # --- source -----------------------------------------------------
        self.source = StreamSource(self.sim, self.network, self.membership, gossip)
        self.network.register(self.source)

        # --- adversary policy -------------------------------------------
        self.adversary_policy = None
        if config.adversary:
            from repro import adversary as adversary_pkg

            self.adversary_policy = adversary_pkg.create(
                config.adversary, dict(config.adversary_params)
            )
            self.adversary_policy.prepare(
                adversary_pkg.AdversaryContext(
                    gossip=gossip,
                    lifting=lifting,
                    freerider_ids=frozenset(self.freerider_ids),
                    honest_ids=frozenset(self.honest_ids),
                    rng=seeds.generator("adversary"),
                )
            )

        # --- nodes -------------------------------------------------------
        coalition = Coalition(self.freerider_ids) if config.colluding else None
        transport = SimTransport(self.sim, self.network)
        self.nodes: Dict[NodeId, GossipNode] = {}
        for node_id in node_ids:
            behavior = self._make_behavior(node_id, coalition)
            state_slot = self.registry.register(node_id)
            node = GossipNode(
                node_id=node_id,
                transport=transport,
                sampler=self.membership,
                gossip=gossip,
                lifting=lifting,
                behavior=behavior,
                assignment=self.assignment,
                rng=seeds.generator("node", node_id),
                lifting_enabled=config.lifting_enabled,
                compensation=self.compensation,
                chunk_created_at=self.source.created_times.__getitem__,
                on_expel_quorum=self._on_expel_quorum,
                p_audit=config.p_audit,
                detector=config.failure_detector,
                on_membership_event=(
                    self._on_membership_event
                    if config.failure_detector is not None
                    else None
                ),
                state_pool=self.state_pool,
                state_slot=state_slot,
                reputation_pool=self.reputation_pool,
            )
            self.nodes[node_id] = node
            upload = config.upload_rate if config.upload_rate is not None else math.inf
            if node_id in self.degraded_ids:
                self.loss.set_node_loss(node_id, config.degraded_loss)
                if config.degraded_upload is not None:
                    upload = config.degraded_upload
            self.network.register(node, upload_rate=upload)

        self.scoreboard = ScoreBoard(
            {nid: node.manager for nid, node in self.nodes.items() if node.manager}
        )
        self._started = False

    def _make_behavior(self, node_id: NodeId, coalition: Optional[Coalition]):
        config = self.config
        if node_id not in self.freerider_ids:
            return HonestBehavior()
        if self.adversary_policy is not None:
            return self.adversary_policy.build(node_id)
        if coalition is not None:
            return ColludingBehavior(
                config.freerider_degree,
                coalition,
                bias=config.collusion_bias,
                man_in_the_middle=config.man_in_the_middle,
                forge_history=config.forge_history,
                period_stride=config.period_stride,
            )
        return FreeriderBehavior(config.freerider_degree, period_stride=config.period_stride)

    def _on_expel_quorum(self, issuer: NodeId, target: NodeId, reason: str) -> None:
        # An expelled node keeps its local timers running (the simulator
        # cannot reach into closures), but it has lost all authority: its
        # pending audit verdicts and quorum claims are void.
        if self.controller.is_expelled(issuer):
            return
        self.controller.expel(target, reason)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the source and every node (idempotent)."""
        if self._started:
            return
        self._started = True
        self.source.start(first_at=0.05)
        for node in self.nodes.values():
            node.start()

    def run(self, until: float, profile_to: Optional[str] = None) -> None:
        """Advance simulated time to ``until`` (starting if needed).

        ``profile_to`` dumps sorted ``cProfile`` stats of the advance to
        that path — the evidence-gathering hook behind the CLI's
        ``--profile`` flag (see docs/PERFORMANCE.md).
        """
        self.start()
        from repro.util.profiling import maybe_profile

        with maybe_profile(profile_to):
            self.sim.run(until=until)

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def scores(self) -> Dict[NodeId, float]:
        """Min-vote compensated scores of every node (§5.1's read)."""
        return self.scoreboard.scores(self.node_ids, self.assignment)

    def detection(self, eta: Optional[float] = None) -> DetectionReport:
        """Detection / false-positive report at threshold ``eta``."""
        threshold = self.config.lifting.eta if eta is None else eta
        return detection_report(self.scores(), self.freerider_ids, threshold)

    def health(
        self, *, lags=None, coverage: float = 0.99, window=None, include=None
    ) -> HealthReport:
        """Figure 1's health curve over (a subset of) the nodes."""
        if include is None:
            nodes = list(self.nodes.values())
        else:
            nodes = [self.nodes[nid] for nid in include]
        return health_curve(nodes, self.source, lags=lags, coverage=coverage, window=window)

    def overhead(self, duration: Optional[float] = None) -> OverheadReport:
        """Table 5's bandwidth-overhead report for the run so far."""
        elapsed = self.sim.now if duration is None else duration
        return bandwidth_overhead(self.trace, elapsed, self.config.gossip.n)

    def node(self, node_id: NodeId) -> GossipNode:
        """Access one protocol node."""
        return self.nodes[node_id]

    def alive_ids(self) -> List[NodeId]:
        """Node ids not (yet) expelled."""
        return [nid for nid in self.node_ids if not self.controller.is_expelled(nid)]

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def _on_membership_event(
        self, reporter: NodeId, node: NodeId, status: str, incarnation: int
    ) -> None:
        """A node-local detector transition; fold it into the shared
        directory (the in-process stand-in for everyone applying the
        same disseminated update)."""
        # The callback is in-process, so it would happily carry verdicts
        # from nodes the network can no longer hear: an expelled node's
        # probes all time out and it "suspects" the whole cluster.  Only
        # connected members get a say.
        if self.controller.is_expelled(reporter) or not self.network.is_connected(
            reporter
        ):
            return
        apply_membership_event(
            self.membership, self.churn_monitor, reporter, node, status, incarnation
        )

    def leave(self, node_id: NodeId) -> bool:
        """A node departs gracefully: announce, stop, deregister.

        Unlike expulsion this is not recorded as a sanction; other nodes
        simply stop sampling it.  Returns False (and does nothing) when
        the node is already gone — a double leave is a no-op.
        """
        if not self.membership.contains(node_id):
            return False
        node = self.nodes[node_id]
        if node.failure_detector is not None:
            node.failure_detector.announce_leave()
        node.stop()
        self.network.disconnect(node_id)
        self.membership.mark_left(node_id)
        if self.churn_monitor is not None:
            self.churn_monitor.on_left(node_id)
        return True

    def rejoin(self, node_id: NodeId) -> bool:
        """A departed node comes back (fresh gossip state, same score
        record — the paper's absolute scores make returning nodes
        comparable to incumbents, §6.2).

        Refused (returns False) for expelled nodes: expulsion is
        permanent, enforced by the membership lifecycle ledger.
        """
        if self.controller.is_expelled(node_id):
            if self.churn_monitor is not None:
                self.churn_monitor.on_rejoin_refused(node_id)
            return False
        node = self.nodes[node_id]
        incarnation = 0
        if node.failure_detector is not None:
            # start() below bumps the incarnation; register the bumped
            # value so stale suspicions cannot instantly re-evict.
            incarnation = node.failure_detector.incarnation + 1
        if not self.membership.readmit(node_id, incarnation):
            return False
        self.network.reconnect(node_id)
        if node.failure_detector is not None:
            self._remap_node_state(node_id)
            node.reset_gossip_state()
        node.start()
        if self.churn_monitor is not None:
            self.churn_monitor.on_rejoined(node_id)
        return True

    def _remap_node_state(self, node_id: NodeId) -> None:
        """Move a readmitted node onto a fresh pooled state slot.

        The registry retires the old slot (zeroing its columns in every
        attached pool) so the bumped incarnation starts clean, and every
        peer's verification engine drops stale ack expectations naming
        the node — state from the previous incarnation must neither leak
        into the new one nor keep drawing blames against it.  Durable
        reputation records are untouched (absolute scores, §6.2).
        """
        node = self.nodes[node_id]
        node.adopt_state_slot(self.registry.remap(node_id))
        for other in self.nodes.values():
            engine = other.engine
            if engine is not None:
                engine.purge_requester(node_id)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def attach_faults(self, schedule) -> "object":
        """Arm a :class:`~repro.runtime.faults.FaultSchedule`.

        Window faults (drops, partitions, slow links) are enforced by a
        :class:`~repro.runtime.faults.FaultPlane` hooked into the
        network's send path; crash/restart instants are scheduled as
        simulator timers mapped onto :meth:`leave` / :meth:`rejoin`.
        Returns the plane (its counters feed scenario metrics).  The
        plane draws from its own seeded stream, so an un-faulted run's
        RNG sequences are untouched.
        """
        from repro.runtime.faults import FaultPlane

        plane = FaultPlane(schedule, rng=self.seeds.generator("faults"))
        self.network.attach_faults(plane)
        for event in schedule.lifecycle_events():
            for node_id in event.nodes:
                if event.kind == "crash":
                    self.sim.call_later(
                        max(0.0, event.at - self.sim.now), self._crash, node_id, plane
                    )
                else:
                    self.sim.call_later(
                        max(0.0, event.at - self.sim.now), self._restart, node_id, plane
                    )
        return plane

    def _crash(self, node_id: NodeId, plane) -> None:
        if self.churn_monitor is not None:
            # Silent failure: the node stops and its sockets die, but the
            # shared directory is NOT told — peers must *detect* the
            # crash (ping timeouts → suspicion → confirmation).  A crash
            # of an already-left node only flips the fault-plane flag.
            if self.network.is_connected(node_id):
                self.nodes[node_id].stop()
                self.network.disconnect(node_id)
                self.churn_monitor.on_crashed(node_id)
            plane.mark_crashed(node_id)
            return
        if self.membership.contains(node_id):
            self.leave(node_id)
        plane.mark_crashed(node_id)

    def _restart(self, node_id: NodeId, plane) -> None:
        if self.churn_monitor is not None:
            if self.controller.is_expelled(node_id):
                self.churn_monitor.on_rejoin_refused(node_id)
                return
            if self.network.is_connected(node_id):
                plane.mark_restarted(node_id)
                return  # never crashed; nothing to restart
            node = self.nodes[node_id]
            self.network.reconnect(node_id)
            if not self.membership.contains(node_id):
                # Confirmed dead while down: readmit under the bumped
                # incarnation (the young-node audit rule covers the
                # fresh history).
                self.membership.readmit(node_id, node.failure_detector.incarnation + 1)
            self._remap_node_state(node_id)
            node.reset_gossip_state()
            node.start()
            self.churn_monitor.on_restarted(node_id)
            plane.mark_restarted(node_id)
            return
        if not self.membership.contains(node_id):
            self.rejoin(node_id)
        plane.mark_restarted(node_id)

    def attach_invariants(self, interval: float = 1.0):
        """Arm an :class:`~repro.core.invariants.InvariantMonitor`.

        Sweeps every ``interval`` simulated seconds on a timer chain.
        The monitor is read-only and draws no RNG, so arming it cannot
        change a run's outcome — only observe it.  Returns the monitor;
        call its :meth:`~repro.core.invariants.InvariantMonitor.check`
        once more after the run for the final-state sweep.
        """
        from repro.core.invariants import monitor_for_cluster

        monitor = monitor_for_cluster(self)

        def sweep() -> None:
            monitor.check()
            self.sim.call_later(interval, sweep)

        self.sim.call_later(interval, sweep)
        return monitor

    def audit_results(self):
        """All sporadic-audit results collected across the cluster."""
        out = []
        for node in self.nodes.values():
            if node.auditor is not None:
                out.extend(node.auditor.results)
        return out

    def churn_summary(self) -> Dict[str, object]:
        """Cluster-level churn/detector metrics (empty without a
        failure detector): the monitor's transition counters and
        convergence delays plus the aggregated quarantine outcome."""
        if self.churn_monitor is None:
            return {}
        summary = self.churn_monitor.summary()
        quarantines = 0
        started = discarded = released = 0
        quarantined_events = 0
        for node in self.nodes.values():
            manager = node.manager
            if manager is None:
                continue
            started += manager.quarantines_started
            discarded += manager.quarantines_discarded
            released += manager.quarantines_released
            quarantines += manager.suspected_records()
            quarantined_events += manager.pending_quarantined_events()
        detectors = [
            node.failure_detector
            for node in self.nodes.values()
            if node.failure_detector is not None
        ]
        summary["suspected_now"] = len(self.membership.suspected_nodes())
        summary["quarantines_started"] = started
        summary["quarantines_discarded"] = discarded
        summary["quarantines_released"] = released
        summary["records_in_quarantine"] = quarantines
        summary["quarantined_events_pending"] = quarantined_events
        summary["probes_sent"] = sum(d.probes_sent for d in detectors)
        summary["indirect_probes"] = sum(d.indirect_probes for d in detectors)
        summary["local_suspicions"] = sum(d.suspicions_raised for d in detectors)
        summary["local_refutations"] = sum(d.refutations_sent for d in detectors)
        return summary
