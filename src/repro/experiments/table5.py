"""Table 5 — practical bandwidth overhead.

Cross-checking and blaming overhead (verification + reputation bytes
relative to data bytes) for ``p_dcc ∈ {0, 0.5, 1}`` and stream rates
{674, 1082, 2036} kbps.  Paper reference (300 PlanetLab nodes)::

    p_dcc                0       0.5      1
    674 kbps stream    1.07 %   4.53 %   8.01 %
    1082 kbps stream   0.69 %   3.51 %   5.04 %
    2036 kbps stream   0.38 %   1.69 %   2.76 %

Two structural facts must reproduce: overhead grows with ``p_dcc``
(but is non-zero at 0 because acks are always sent), and overhead
*decreases* with the stream rate (verification traffic scales with the
gossip rate, not the payload volume).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.config import planetlab_params
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.metrics.overhead import OverheadReport

PAPER_OVERHEAD_PERCENT = {
    (674.0, 0.0): 1.07,
    (674.0, 0.5): 4.53,
    (674.0, 1.0): 8.01,
    (1082.0, 0.0): 0.69,
    (1082.0, 0.5): 3.51,
    (1082.0, 1.0): 5.04,
    (2036.0, 0.0): 0.38,
    (2036.0, 0.5): 1.69,
    (2036.0, 1.0): 2.76,
}


@dataclass
class Table5Result:
    """Overhead percentage per (stream rate, p_dcc) cell."""

    cells: Dict[Tuple[float, float], OverheadReport]

    def percent(self, rate_kbps: float, p_dcc: float) -> float:
        """Measured overhead percentage of one cell."""
        return self.cells[(rate_kbps, p_dcc)].overhead_percent

    def rows(self) -> Sequence[Tuple[float, float, float, float]]:
        """(rate, p_dcc, measured %, paper %) rows."""
        out = []
        for (rate, p_dcc), report in sorted(self.cells.items()):
            out.append(
                (
                    rate,
                    p_dcc,
                    report.overhead_percent,
                    PAPER_OVERHEAD_PERCENT.get((rate, p_dcc), float("nan")),
                )
            )
        return out


def run_table5(
    *,
    n: int = 100,
    duration: float = 10.0,
    seed: int = 31,
    rates_kbps: Sequence[float] = (674.0, 1082.0, 2036.0),
    p_dcc_values: Sequence[float] = (0.0, 0.5, 1.0),
) -> Table5Result:
    """Measure the overhead grid on a scaled-down deployment."""
    gossip_base, lifting_base = planetlab_params()
    cells: Dict[Tuple[float, float], OverheadReport] = {}
    for rate in rates_kbps:
        for p_dcc in p_dcc_values:
            gossip = replace(gossip_base, n=n, stream_rate_kbps=rate)
            lifting = replace(lifting_base, p_dcc=p_dcc)
            cluster = SimCluster(
                ClusterConfig(gossip=gossip, lifting=lifting, seed=seed)
            )
            cluster.run(until=duration)
            cells[(rate, p_dcc)] = cluster.overhead()
    return Table5Result(cells=cells)
