"""Table 5 — practical bandwidth overhead.

Cross-checking and blaming overhead (verification + reputation bytes
relative to data bytes) for ``p_dcc ∈ {0, 0.5, 1}`` and stream rates
{674, 1082, 2036} kbps.  Paper reference (300 PlanetLab nodes)::

    p_dcc                0       0.5      1
    674 kbps stream    1.07 %   4.53 %   8.01 %
    1082 kbps stream   0.69 %   3.51 %   5.04 %
    2036 kbps stream   0.38 %   1.69 %   2.76 %

Two structural facts must reproduce: overhead grows with ``p_dcc``
(but is non-zero at 0 because acks are always sent), and overhead
*decreases* with the stream rate (verification traffic scales with the
gossip rate, not the payload volume).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.config import planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.overhead import OverheadReport
from repro.runtime.parallel import Job
from repro.scenarios import Param, RunResult, run_scenario, scenario

PAPER_OVERHEAD_PERCENT = {
    (674.0, 0.0): 1.07,
    (674.0, 0.5): 4.53,
    (674.0, 1.0): 8.01,
    (1082.0, 0.0): 0.69,
    (1082.0, 0.5): 3.51,
    (1082.0, 1.0): 5.04,
    (2036.0, 0.0): 0.38,
    (2036.0, 0.5): 1.69,
    (2036.0, 1.0): 2.76,
}


@dataclass
class Table5Result:
    """Overhead percentage per (stream rate, p_dcc) cell."""

    cells: Dict[Tuple[float, float], OverheadReport]

    def percent(self, rate_kbps: float, p_dcc: float) -> float:
        """Measured overhead percentage of one cell."""
        return self.cells[(rate_kbps, p_dcc)].overhead_percent

    def rows(self) -> Sequence[Tuple[float, float, float, float]]:
        """(rate, p_dcc, measured %, paper %) rows."""
        out = []
        for (rate, p_dcc), report in sorted(self.cells.items()):
            out.append(
                (
                    rate,
                    p_dcc,
                    report.overhead_percent,
                    PAPER_OVERHEAD_PERCENT.get((rate, p_dcc), float("nan")),
                )
            )
        return out


def _extract_overhead(cluster) -> OverheadReport:
    return cluster.overhead()


def table5_jobs(
    *,
    n: int = 100,
    duration: float = 10.0,
    seed: int = 31,
    rates_kbps: Sequence[float] = (674.0, 1082.0, 2036.0),
    p_dcc_values: Sequence[float] = (0.0, 0.5, 1.0),
) -> List[Job]:
    """One independent deployment job per ``(rate, p_dcc)`` grid cell."""
    gossip_base, lifting_base = planetlab_params()
    job_list: List[Job] = []
    for rate in rates_kbps:
        for p_dcc in p_dcc_values:
            gossip = replace(gossip_base, n=n, stream_rate_kbps=rate)
            lifting = replace(lifting_base, p_dcc=p_dcc)
            job_list.append(
                Job(
                    config=ClusterConfig(gossip=gossip, lifting=lifting, seed=seed),
                    until=duration,
                    extractors=(("overhead", _extract_overhead),),
                    key=(rate, p_dcc),
                )
            )
    return job_list


_TABLE5_PARAMS = (
    Param("n", int, 100, "system size", validate=lambda v: v >= 8, constraint=">= 8"),
    Param("duration", float, 10.0, "simulated seconds per grid cell",
          validate=lambda v: v > 0, constraint="> 0"),
    Param("seed", int, 31, "deployment seed (shared by every cell)"),
    Param("rates_kbps", float, (674.0, 1082.0, 2036.0), sequence=True,
          help="stream rates to sweep (kbps)"),
    Param("p_dcc_values", float, (0.0, 0.5, 1.0), sequence=True,
          help="cross-checking probabilities to sweep"),
    Param("jobs", int, 1, "worker processes for the grid cells (0 = all cores)"),
)


def _table5_reduce(results, params) -> Table5Result:
    return Table5Result(
        cells={result.key: result.get("overhead") for result in results}
    )


def _table5_metrics(result: Table5Result, params) -> dict:
    return {
        "cells": [
            {"rate_kbps": rate, "p_dcc": p_dcc, "overhead_percent": measured,
             "paper_percent": paper}
            for rate, p_dcc, measured, paper in result.rows()
        ]
    }


def _table5_render(run: RunResult) -> str:
    lines = ["rate(kbps)  p_dcc  measured   paper"]
    for rate, p_dcc, measured, paper in run.artifact.rows():
        lines.append(f"{rate:9.0f}   {p_dcc:4.1f}   {measured:6.2f}%   {paper:5.2f}%")
    return "\n".join(lines)


@scenario(
    "table5",
    "Table 5 — bandwidth overhead over the stream-rate × p_dcc grid",
    params=_TABLE5_PARAMS,
    reduce=_table5_reduce,
    summarize=_table5_metrics,
    render=_table5_render,
    tags=("table", "sweep", "deployment"),
    smoke={"n": 30, "duration": 3.0, "rates_kbps": (674.0,),
           "p_dcc_values": (0.0, 1.0)},
)
def _table5_scenario(params):
    """One independent deployment job per ``(rate, p_dcc)`` grid cell."""
    return table5_jobs(
        n=params["n"],
        duration=params["duration"],
        seed=params["seed"],
        rates_kbps=params["rates_kbps"],
        p_dcc_values=params["p_dcc_values"],
    )


def run_table5(
    *,
    n: int = 100,
    duration: float = 10.0,
    seed: int = 31,
    rates_kbps: Sequence[float] = (674.0, 1082.0, 2036.0),
    p_dcc_values: Sequence[float] = (0.0, 0.5, 1.0),
    jobs: int = 1,
) -> Table5Result:
    """Measure the overhead grid on a scaled-down deployment.

    Thin backward-compatible wrapper over ``run_scenario("table5", ...)``.
    The grid cells are independent deployments; ``jobs`` fans them out
    to a process pool with bit-identical cells (every cell's seed and
    RNG streams depend only on its config, never on the worker count).
    """
    return run_scenario(
        "table5",
        n=n,
        duration=duration,
        seed=seed,
        rates_kbps=tuple(float(rate) for rate in rates_kbps),
        p_dcc_values=tuple(float(p) for p in p_dcc_values),
        jobs=jobs,
    ).artifact
