"""Figure 1 — system health in the presence of freeriders.

Three deployments of the streaming protocol:

1. **No freeriders** (baseline; LiFTinG disabled so its overhead does
   not enter the comparison).
2. **Freeriders, no LiFTinG** — with no verification there is nothing
   to fear, so the wise freeriders of the paper freeride heavily and
   the dissemination collapses.
3. **Freeriders + LiFTinG** — verification and expulsion are active;
   wise freeriders cap their degree at the point where the detection
   probability stays below 50 % (δ ≈ 0.035, §6.3.1 / Figure 12), so
   the system stays close to the baseline.

The y-axis is the fraction of nodes viewing a clear stream at a given
stream lag (see :mod:`repro.metrics.health`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import FreeriderDegree, GossipParams, LiftingParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.health import HealthReport
from repro.runtime.parallel import Job
from repro.scenarios import Param, RunResult, run_scenario, scenario

#: what "as much as possible" means when nothing watches: serve/propose
#: barely anything while still requesting everything.
HEAVY_FREERIDING = FreeriderDegree(delta1=0.8, delta2=0.7, delta3=0.8)
#: the wise degree under LiFTinG — detection probability ≈ 50 % (§6.3.1).
WISE_FREERIDING = FreeriderDegree.uniform(0.035)
#: upload capacity relative to the stream rate.  PlanetLab nodes had
#: finite uplinks; a 2× headroom makes upload the binding resource, so
#: withheld freerider bandwidth actually hurts — without a cap the
#: honest nodes would invisibly absorb all the extra load.
UPLOAD_HEADROOM = 2.0


@dataclass
class Fig1Result:
    """The three health curves of Figure 1."""

    lags: np.ndarray
    baseline: HealthReport
    freeriders_no_lifting: HealthReport
    freeriders_with_lifting: HealthReport
    expelled_with_lifting: int
    duration: float

    def rows(self) -> Sequence[tuple]:
        """(lag, baseline, no-lifting, with-lifting) rows for printing."""
        return [
            (
                float(lag),
                float(self.baseline.fractions[i]),
                float(self.freeriders_no_lifting.fractions[i]),
                float(self.freeriders_with_lifting.fractions[i]),
            )
            for i, lag in enumerate(self.lags)
        ]


def fig1_configs(
    *,
    n: int,
    seed: int,
    freerider_fraction: float,
    stream_rate_kbps: float,
    heavy_degree: FreeriderDegree = HEAVY_FREERIDING,
    wise_degree: FreeriderDegree = WISE_FREERIDING,
) -> Dict[str, ClusterConfig]:
    """The three Figure 1 deployment configs, built from one base.

    The deployments differ only in their adversary population and
    whether LiFTinG is armed; everything else (gossip parameters, seed,
    upload cap) is shared, so a single base config is specialised per
    deployment instead of repeating the kwargs three times.
    """
    gossip_base, lifting = planetlab_params()
    gossip = GossipParams(
        n=n,
        fanout=gossip_base.fanout,
        gossip_period=gossip_base.gossip_period,
        stream_rate_kbps=stream_rate_kbps,
        chunk_size=gossip_base.chunk_size,
        source_fanout=gossip_base.source_fanout,
        request_size=gossip_base.request_size,
    )
    base = ClusterConfig(
        gossip=gossip,
        lifting=lifting,
        seed=seed,
        lifting_enabled=False,
        upload_rate=UPLOAD_HEADROOM * stream_rate_kbps * 125.0,
    )
    return {
        "baseline": base,
        "freeriders_no_lifting": base.with_changes(
            freerider_fraction=freerider_fraction,
            freerider_degree=heavy_degree,
        ),
        "freeriders_with_lifting": base.with_changes(
            lifting_enabled=True,
            expulsion_enabled=True,
            freerider_fraction=freerider_fraction,
            freerider_degree=wise_degree,
        ),
    }


def _extract_health(cluster, *, lags, coverage, window) -> HealthReport:
    return cluster.health(lags=lags, coverage=coverage, window=window)


def _extract_expelled_count(cluster) -> int:
    return len(cluster.controller.expelled_nodes())


#: the paper's x-axis: stream lags 0..30 s in 1 s steps.
DEFAULT_LAGS = tuple(float(lag) for lag in np.arange(0.0, 31.0, 1.0))

_FIG1_PARAMS = (
    Param("n", int, 150, "system size", validate=lambda v: v >= 8, constraint=">= 8"),
    Param("duration", float, 30.0, "simulated seconds", validate=lambda v: v > 0,
          constraint="> 0"),
    Param("seed", int, 7, "experiment seed"),
    Param("freerider_fraction", float, 0.25, "fraction of freerider nodes",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("stream_rate_kbps", float, 674.0, "source bitrate (kbps)"),
    Param("heavy_deltas", float, HEAVY_FREERIDING.as_tuple(), sequence=True,
          help="(δ1, δ2, δ3) of the unwatched freeriders",
          validate=lambda v: len(v) == 3, constraint="exactly 3 values"),
    Param("wise_deltas", float, WISE_FREERIDING.as_tuple(), sequence=True,
          help="(δ1, δ2, δ3) of the freeriders under LiFTinG",
          validate=lambda v: len(v) == 3, constraint="exactly 3 values"),
    Param("lags", float, DEFAULT_LAGS, sequence=True, help="stream lags to sample (s)"),
    Param("coverage", float, 0.97, "chunk coverage needed for a clear stream",
          validate=lambda v: 0.0 < v <= 1.0, constraint="in (0, 1]"),
    Param("jobs", int, 1, "worker processes for the three deployments (0 = all cores)"),
)


def _fig1_reduce(results, params) -> Fig1Result:
    by_name = {result.key: result for result in results}
    return Fig1Result(
        lags=np.asarray(params["lags"], dtype=float),
        baseline=by_name["baseline"].get("health"),
        freeriders_no_lifting=by_name["freeriders_no_lifting"].get("health"),
        freeriders_with_lifting=by_name["freeriders_with_lifting"].get("health"),
        expelled_with_lifting=by_name["freeriders_with_lifting"].get("expelled"),
        duration=params["duration"],
    )


def _fig1_metrics(result: Fig1Result, params) -> dict:
    return {
        "lags_s": result.lags,
        "baseline": result.baseline.fractions,
        "freeriders_no_lifting": result.freeriders_no_lifting.fractions,
        "freeriders_with_lifting": result.freeriders_with_lifting.fractions,
        "expelled_with_lifting": result.expelled_with_lifting,
    }


def _fig1_render(run: RunResult) -> str:
    lines = ["lag(s)  baseline  freeriders  freeriders+LiFTinG"]
    for lag, base, collapsed, protected in run.artifact.rows():
        lines.append(f"{lag:5.0f}   {base:7.2f}   {collapsed:9.2f}   {protected:12.2f}")
    lines.append(f"expelled under LiFTinG: {run.artifact.expelled_with_lifting}")
    return "\n".join(lines)


@scenario(
    "fig1",
    "Figure 1 — system health: baseline vs freeriders vs freeriders under LiFTinG",
    params=_FIG1_PARAMS,
    reduce=_fig1_reduce,
    summarize=_fig1_metrics,
    render=_fig1_render,
    tags=("figure", "deployment"),
    smoke={"n": 24, "duration": 4.0, "lags": (0.0, 2.0, 4.0)},
)
def _fig1_scenario(params):
    """Three independent deployment jobs differing only in adversaries."""
    window = (3.0, max(6.0, params["duration"] - 8.0))
    configs = fig1_configs(
        n=params["n"],
        seed=params["seed"],
        freerider_fraction=params["freerider_fraction"],
        stream_rate_kbps=params["stream_rate_kbps"],
        heavy_degree=FreeriderDegree(*params["heavy_deltas"]),
        wise_degree=FreeriderDegree(*params["wise_deltas"]),
    )
    health = partial(
        _extract_health,
        lags=tuple(float(lag) for lag in params["lags"]),
        coverage=params["coverage"],
        window=window,
    )
    return [
        Job(
            config=config,
            until=params["duration"],
            extractors=(("health", health), ("expelled", _extract_expelled_count)),
            key=name,
        )
        for name, config in configs.items()
    ]


def run_fig1(
    *,
    n: int = 150,
    duration: float = 30.0,
    seed: int = 7,
    freerider_fraction: float = 0.25,
    stream_rate_kbps: float = 674.0,
    heavy_degree: FreeriderDegree = HEAVY_FREERIDING,
    wise_degree: FreeriderDegree = WISE_FREERIDING,
    lags: Optional[Sequence[float]] = None,
    coverage: float = 0.97,
    jobs: int = 1,
) -> Fig1Result:
    """Run the three deployments and collect their health curves.

    Thin backward-compatible wrapper over ``run_scenario("fig1", ...)``
    — bit-identical to the pre-registry runner.  Defaults are scaled
    down from the paper's 300 nodes / 60 s for tractability on one
    machine; pass ``n=300, duration=60`` for the full setting.  The
    three deployments are independent; ``jobs`` fans them out to a
    process pool (bit-identical to ``jobs=1``).
    """
    return run_scenario(
        "fig1",
        n=n,
        duration=duration,
        seed=seed,
        freerider_fraction=freerider_fraction,
        stream_rate_kbps=stream_rate_kbps,
        heavy_deltas=heavy_degree.as_tuple(),
        wise_deltas=wise_degree.as_tuple(),
        lags=None if lags is None else tuple(float(lag) for lag in lags),
        coverage=coverage,
        jobs=jobs,
    ).artifact
