"""Figure 1 — system health in the presence of freeriders.

Three deployments of the streaming protocol:

1. **No freeriders** (baseline; LiFTinG disabled so its overhead does
   not enter the comparison).
2. **Freeriders, no LiFTinG** — with no verification there is nothing
   to fear, so the wise freeriders of the paper freeride heavily and
   the dissemination collapses.
3. **Freeriders + LiFTinG** — verification and expulsion are active;
   wise freeriders cap their degree at the point where the detection
   probability stays below 50 % (δ ≈ 0.035, §6.3.1 / Figure 12), so
   the system stays close to the baseline.

The y-axis is the fraction of nodes viewing a clear stream at a given
stream lag (see :mod:`repro.metrics.health`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import FreeriderDegree, GossipParams, LiftingParams, planetlab_params
from repro.experiments.cluster import ClusterConfig
from repro.metrics.health import HealthReport
from repro.runtime.parallel import Job, run_jobs

#: what "as much as possible" means when nothing watches: serve/propose
#: barely anything while still requesting everything.
HEAVY_FREERIDING = FreeriderDegree(delta1=0.8, delta2=0.7, delta3=0.8)
#: the wise degree under LiFTinG — detection probability ≈ 50 % (§6.3.1).
WISE_FREERIDING = FreeriderDegree.uniform(0.035)
#: upload capacity relative to the stream rate.  PlanetLab nodes had
#: finite uplinks; a 2× headroom makes upload the binding resource, so
#: withheld freerider bandwidth actually hurts — without a cap the
#: honest nodes would invisibly absorb all the extra load.
UPLOAD_HEADROOM = 2.0


@dataclass
class Fig1Result:
    """The three health curves of Figure 1."""

    lags: np.ndarray
    baseline: HealthReport
    freeriders_no_lifting: HealthReport
    freeriders_with_lifting: HealthReport
    expelled_with_lifting: int
    duration: float

    def rows(self) -> Sequence[tuple]:
        """(lag, baseline, no-lifting, with-lifting) rows for printing."""
        return [
            (
                float(lag),
                float(self.baseline.fractions[i]),
                float(self.freeriders_no_lifting.fractions[i]),
                float(self.freeriders_with_lifting.fractions[i]),
            )
            for i, lag in enumerate(self.lags)
        ]


def fig1_configs(
    *,
    n: int,
    seed: int,
    freerider_fraction: float,
    stream_rate_kbps: float,
    heavy_degree: FreeriderDegree = HEAVY_FREERIDING,
    wise_degree: FreeriderDegree = WISE_FREERIDING,
) -> Dict[str, ClusterConfig]:
    """The three Figure 1 deployment configs, built from one base.

    The deployments differ only in their adversary population and
    whether LiFTinG is armed; everything else (gossip parameters, seed,
    upload cap) is shared, so a single base config is specialised per
    deployment instead of repeating the kwargs three times.
    """
    gossip_base, lifting = planetlab_params()
    gossip = GossipParams(
        n=n,
        fanout=gossip_base.fanout,
        gossip_period=gossip_base.gossip_period,
        stream_rate_kbps=stream_rate_kbps,
        chunk_size=gossip_base.chunk_size,
        source_fanout=gossip_base.source_fanout,
        request_size=gossip_base.request_size,
    )
    base = ClusterConfig(
        gossip=gossip,
        lifting=lifting,
        seed=seed,
        lifting_enabled=False,
        upload_rate=UPLOAD_HEADROOM * stream_rate_kbps * 125.0,
    )
    return {
        "baseline": base,
        "freeriders_no_lifting": base.with_changes(
            freerider_fraction=freerider_fraction,
            freerider_degree=heavy_degree,
        ),
        "freeriders_with_lifting": base.with_changes(
            lifting_enabled=True,
            expulsion_enabled=True,
            freerider_fraction=freerider_fraction,
            freerider_degree=wise_degree,
        ),
    }


def _extract_health(cluster, *, lags, coverage, window) -> HealthReport:
    return cluster.health(lags=lags, coverage=coverage, window=window)


def _extract_expelled_count(cluster) -> int:
    return len(cluster.controller.expelled_nodes())


def run_fig1(
    *,
    n: int = 150,
    duration: float = 30.0,
    seed: int = 7,
    freerider_fraction: float = 0.25,
    stream_rate_kbps: float = 674.0,
    heavy_degree: FreeriderDegree = HEAVY_FREERIDING,
    wise_degree: FreeriderDegree = WISE_FREERIDING,
    lags: Optional[Sequence[float]] = None,
    coverage: float = 0.97,
    jobs: int = 1,
) -> Fig1Result:
    """Run the three deployments and collect their health curves.

    Defaults are scaled down from the paper's 300 nodes / 60 s for
    tractability on one machine; pass ``n=300, duration=60`` for the
    full setting.  The three deployments are independent; ``jobs``
    fans them out to a process pool (bit-identical to ``jobs=1``).
    """
    if lags is None:
        lags = np.arange(0.0, 31.0, 1.0)
    window = (3.0, max(6.0, duration - 8.0))
    configs = fig1_configs(
        n=n,
        seed=seed,
        freerider_fraction=freerider_fraction,
        stream_rate_kbps=stream_rate_kbps,
        heavy_degree=heavy_degree,
        wise_degree=wise_degree,
    )
    health = partial(
        _extract_health,
        lags=tuple(float(lag) for lag in lags),
        coverage=coverage,
        window=window,
    )
    job_list = [
        Job(
            config=config,
            until=duration,
            extractors=(("health", health), ("expelled", _extract_expelled_count)),
            key=name,
        )
        for name, config in configs.items()
    ]
    by_name = {result.key: result for result in run_jobs(job_list, jobs=jobs)}
    return Fig1Result(
        lags=np.asarray(lags, dtype=float),
        baseline=by_name["baseline"].get("health"),
        freeriders_no_lifting=by_name["freeriders_no_lifting"].get("health"),
        freeriders_with_lifting=by_name["freeriders_with_lifting"].get("health"),
        expelled_with_lifting=by_name["freeriders_with_lifting"].get("expelled"),
        duration=duration,
    )
