"""Experiment runners — one per paper figure/table.

:class:`~repro.experiments.cluster.SimCluster` builds a full simulated
deployment (network, membership, source, nodes with roles, managers,
expulsion controller) from a :class:`ClusterConfig`; the per-figure
modules configure and run it (or the Monte-Carlo engine) and return the
series the paper plots.  The benchmark harness under ``benchmarks/``
prints those series next to the paper's reference values.
"""

from repro.experiments.calibration import CalibrationResult, calibrate, run_calibration
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.fig11 import Fig11Result, run_fig11
from repro.experiments.fig12 import Fig12Result, run_fig12
from repro.experiments.fig13 import Fig13Result, run_fig13
from repro.experiments.fig14 import Fig14Result, run_fig14
from repro.experiments.scaling import ScalingResult, run_scaling
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table5 import Table5Result, run_table5

__all__ = [
    "CalibrationResult",
    "ClusterConfig",
    "Fig1Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "Fig14Result",
    "ScalingResult",
    "SimCluster",
    "Table3Result",
    "Table5Result",
    "calibrate",
    "run_calibration",
    "run_fig1",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_scaling",
    "run_table3",
    "run_table5",
]
