"""Figure 11 — score distributions with freeriders.

10,000 nodes of which 1,000 are freeriders of degree
``Δ = (0.1, 0.1, 0.1)``, after ``r = 50`` gossip periods, analysis
parameters (f = 12, |R| = 4, 7 % loss, p_dcc = 1).  The paper observes
two disjoint modes separated by a gap, and uses the threshold
``η = -9.75`` (chosen for < 1 % false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import FreeriderDegree, analysis_params
from repro.mc.blame_model import BlameModel, ScoreSample, simulate_scores
from repro.metrics.scores import DetectionReport
from repro.runtime.parallel import Task
from repro.scenarios import Param, run_scenario, scenario
from repro.util.rng import make_generator
from repro.util.stats import EmpiricalDistribution


@dataclass
class Fig11Result:
    """Normalised score distributions of the two populations."""

    sample: ScoreSample
    eta: float

    @property
    def detection(self) -> float:
        """α at the paper's threshold."""
        return self.sample.detection_fraction(self.eta)

    @property
    def false_positives(self) -> float:
        """β at the paper's threshold."""
        return self.sample.false_positive_fraction(self.eta)

    @property
    def gap(self) -> float:
        """Distance between the honest low tail (1st percentile) and the
        freerider high tail (99th percentile); positive = disjoint modes."""
        return float(
            np.quantile(self.sample.honest, 0.01)
            - np.quantile(self.sample.freeriders, 0.99)
        )

    def report(self) -> DetectionReport:
        """As a :class:`DetectionReport` for uniform printing."""
        honest = EmpiricalDistribution(list(self.sample.honest))
        freeriders = EmpiricalDistribution(list(self.sample.freeriders))
        return DetectionReport(threshold=self.eta, honest=honest, freeriders=freeriders)

    def cdf_series(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(honest_x, honest_frac, freerider_x, freerider_frac)."""
        hx = np.sort(self.sample.honest)
        fx = np.sort(self.sample.freeriders)
        return (
            hx,
            np.arange(1, hx.size + 1) / hx.size,
            fx,
            np.arange(1, fx.size + 1) / fx.size,
        )


def _split_evenly(total: int, parts: int) -> List[int]:
    """Deterministic near-even split (remainder to the earliest parts)."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _fig11_shard(
    model: BlameModel,
    seed: int,
    shard: int,
    n_honest: int,
    n_freeriders: int,
    degree: FreeriderDegree,
    rounds: int,
) -> ScoreSample:
    """One population shard, sampled from its own derived RNG stream."""
    rng = make_generator(seed, f"fig11/shard/{shard}")
    return simulate_scores(
        model,
        rng,
        n_honest=n_honest,
        n_freeriders=n_freeriders,
        degree=degree,
        rounds=rounds,
    )


_FIG11_PARAMS = (
    Param("n", int, 10_000, "total population",
          validate=lambda v: v >= 2, constraint=">= 2"),
    Param("freeriders", int, 1_000, "freeriders within the population",
          validate=lambda v: v >= 0, constraint=">= 0"),
    Param("rounds", int, 50, "gossip periods accumulated",
          validate=lambda v: v >= 1, constraint=">= 1"),
    Param("delta", float, 0.1, "uniform degree of freeriding δ",
          validate=lambda v: 0.0 <= v <= 1.0, constraint="in [0, 1]"),
    Param("seed", int, 13, "Monte-Carlo seed"),
    Param("jobs", int, 1, "worker processes for the shards (0 = all cores)"),
    Param("shards", int, 8, "fixed sub-populations (determines RNG streams)",
          validate=lambda v: v >= 1, constraint=">= 1"),
)


def _fig11_reduce(samples, params) -> Fig11Result:
    gossip, lifting = analysis_params()
    model = BlameModel(
        fanout=gossip.fanout,
        request_size=gossip.request_size,
        p_reception=lifting.p_reception,
        p_dcc=lifting.p_dcc,
    )
    sample = ScoreSample(
        honest=np.concatenate([s.honest for s in samples]),
        freeriders=np.concatenate([s.freeriders for s in samples]),
        rounds=params["rounds"],
        compensation=model.compensation,
    )
    return Fig11Result(sample=sample, eta=lifting.eta)


def _fig11_metrics(result: Fig11Result, params) -> dict:
    return {
        "eta": result.eta,
        "detection": result.detection,
        "false_positives": result.false_positives,
        "gap": result.gap,
        "honest_samples": int(result.sample.honest.size),
        "freerider_samples": int(result.sample.freeriders.size),
    }


@scenario(
    "fig11",
    "Figure 11 — honest vs freerider score distributions after r periods",
    params=_FIG11_PARAMS,
    reduce=_fig11_reduce,
    summarize=_fig11_metrics,
    tags=("figure", "monte-carlo"),
    smoke={"n": 800, "freeriders": 80, "rounds": 10},
)
def _fig11_scenario(params):
    """One Monte-Carlo task per fixed population shard."""
    gossip, lifting = analysis_params()
    model = BlameModel(
        fanout=gossip.fanout,
        request_size=gossip.request_size,
        p_reception=lifting.p_reception,
        p_dcc=lifting.p_dcc,
    )
    degree = FreeriderDegree.uniform(params["delta"])
    n, freeriders = params["n"], params["freeriders"]
    shards = max(1, params["shards"])
    return [
        Task(
            fn=_fig11_shard,
            args=(model, params["seed"], shard, shard_honest, shard_freeriders,
                  degree, params["rounds"]),
            key=shard,
        )
        for shard, (shard_honest, shard_freeriders) in enumerate(
            zip(_split_evenly(n - freeriders, shards), _split_evenly(freeriders, shards))
        )
    ]


def run_fig11(
    *,
    n: int = 10_000,
    freeriders: int = 1_000,
    rounds: int = 50,
    delta: float = 0.1,
    seed: int = 13,
    jobs: int = 1,
    shards: int = 8,
) -> Fig11Result:
    """Simulate the two-population score distribution.

    Thin backward-compatible wrapper over ``run_scenario("fig11", ...)``.
    The populations are split into ``shards`` fixed sub-populations,
    each with its own seed-derived RNG stream, so the Monte-Carlo work
    fans out over ``jobs`` processes.  The shard count — not the worker
    count — determines the streams, so results depend only on
    ``(seed, shards)`` and are bit-identical for every ``jobs`` value.
    """
    return run_scenario(
        "fig11",
        n=n,
        freeriders=freeriders,
        rounds=rounds,
        delta=delta,
        seed=seed,
        jobs=jobs,
        shards=shards,
    ).artifact
