"""The laundering coalition: collusion plus reputation-budget transfer.

Extends the paper's colluders (§4.1(iii): mutual confirms, never blame
each other, biased partner selection) with an attack the paper does not
model: *blame laundering*.  Credits — negative blames — are legitimate
protocol traffic (compensation for the chunks a partner did serve), so
each coalition member spends a per-period credit budget on its
co-members, draining their accumulated blame at the managers.  The
coalition thereby converts the one resource the detector cannot audit
(the right to praise) into score, and the sweep in the ``coalition``
scenario measures how much laundering η absorbs before freeriders
escape.
"""

from __future__ import annotations

from repro.config import FreeriderDegree
from repro.nodes.colluder import Coalition, ColludingBehavior

from repro.adversary.policy import AdversaryContext, BehaviorPolicy, register

NodeId = int


class LaunderingColluderBehavior(ColludingBehavior):
    """A coalition member that also launders blame budget."""

    name = "laundering_colluder"

    def __init__(
        self,
        degree: FreeriderDegree,
        coalition: Coalition,
        *,
        bias: float = 0.0,
        launder: float = 0.0,
        man_in_the_middle: bool = False,
        forge_history: bool = False,
    ) -> None:
        super().__init__(
            degree,
            coalition,
            bias=bias,
            man_in_the_middle=man_in_the_middle,
            forge_history=forge_history,
        )
        #: total credit (negative blame) granted to co-members per period.
        self.launder = launder
        self.credits_sent = 0.0

    def on_period_start(self, period: int) -> None:
        if self.launder <= 0.0:
            return
        friends = self.coalition.others(self.node.node_id)
        if not friends:
            return
        credit = self.launder / len(friends)
        for friend in friends:
            # Negative value: rides send_blame's credit path (the
            # should_blame cover-up gate only vets positive blames).
            self.node.send_blame(friend, -credit, "laundered-credit")
            self.credits_sent += credit

    def __repr__(self) -> str:
        return (
            f"LaunderingColluderBehavior({self.degree}, bias={self.bias}, "
            f"launder={self.launder})"
        )


@register
class LaunderingCoalitionPolicy(BehaviorPolicy):
    """All adversarial nodes form one coalition with a laundering budget."""

    name = "coalition"

    def __init__(
        self,
        delta: float = 0.4,
        bias: float = 0.3,
        launder: float = 2.0,
        man_in_the_middle: bool = False,
        forge_history: bool = False,
    ) -> None:
        self.degree = FreeriderDegree.uniform(delta)
        self.bias = bias
        self.launder = launder
        self.man_in_the_middle = man_in_the_middle
        self.forge_history = forge_history

    def prepare(self, ctx: AdversaryContext) -> None:
        super().prepare(ctx)
        self.coalition = Coalition(ctx.freerider_ids)

    def build(self, node_id: NodeId) -> LaunderingColluderBehavior:
        return LaunderingColluderBehavior(
            self.degree,
            self.coalition,
            bias=self.bias,
            launder=self.launder,
            man_in_the_middle=self.man_in_the_middle,
            forge_history=self.forge_history,
        )

    def describe(self):
        return {
            "policy": self.name,
            "size": len(self.coalition),
            "delta": self.degree.delta1,
            "bias": self.bias,
            "launder": self.launder,
        }
