"""The equivocator: consistent to everyone, inconsistent across them.

Every testimony a node gives in LiFTinG — confirm answers about a
proposer, a-posteriori history-poll answers about a target — is
requester-blind for honest nodes: the truth does not depend on who asks.
An equivocator exploits exactly that blindness, answering the *same*
question differently depending on the requester, so any single verifier
sees an internally consistent witness while the population's testimonies
contradict each other.  The split is deterministic (a parity of the
``(witness, requester)`` pair), which makes the attack reproducible and
maximally confusing: half the verifiers always hear "yes", half always
hear "no".

This is the framework's probe for testimony-aggregation robustness: the
damage shows up as wrongful blame on the *subjects* of the equivocated
testimony, not on the equivocator itself — the adversary spends nothing
and risks only the statistical trail of its lies.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nodes.behavior import Behavior

from repro.adversary.policy import BehaviorPolicy, register

NodeId = int


class EquivocatorBehavior(Behavior):
    """Requester-parity split testimony; otherwise protocol-compliant."""

    name = "equivocator"

    def __init__(self, *, deny_share: float = 0.5) -> None:
        super().__init__()
        # The parity split fixes deny_share at 1/2; the knob widens or
        # narrows the denying class by modulus when != 0.5.
        self.deny_share = deny_share
        self.lies_told = 0

    def _denies_to(self, requester: NodeId) -> bool:
        if self.deny_share <= 0.0:
            return False
        if self.deny_share >= 1.0:
            return True
        modulus = max(2, int(round(1.0 / min(self.deny_share, 0.5))))
        return (requester + self.node.node_id) % modulus == 0

    def confirm_answer(self, requester: NodeId, proposer: NodeId, truthful: bool) -> bool:
        if self._denies_to(requester):
            self.lies_told += 1
            return not truthful
        return truthful

    def poll_answer(
        self,
        requester: NodeId,
        target: NodeId,
        truthful_ack: bool,
        truthful_senders: List[NodeId],
    ) -> Tuple[bool, List[NodeId]]:
        if self._denies_to(requester):
            self.lies_told += 1
            # Invert the testimony: the ack flips and the confirm-sender
            # log is withheld — the "no" class hears a flat denial.
            return not truthful_ack, []
        return truthful_ack, truthful_senders

    def __repr__(self) -> str:
        return f"EquivocatorBehavior(deny_share={self.deny_share})"


@register
class EquivocatorPolicy(BehaviorPolicy):
    """Arms every adversarial node as an independent equivocator."""

    name = "equivocator"

    def __init__(self, deny_share: float = 0.5) -> None:
        self.deny_share = deny_share

    def build(self, node_id: NodeId) -> EquivocatorBehavior:
        return EquivocatorBehavior(deny_share=self.deny_share)

    def describe(self):
        return {"policy": self.name, "deny_share": self.deny_share}
