"""The pluggable adversary-policy framework.

A :class:`BehaviorPolicy` turns a *population-level* attack description
("a coalition of size c with laundering budget L", "four Sybils stuffing
blames at two victims") into the per-node :class:`~repro.nodes.behavior.
Behavior` instances a cluster plugs into its adversarial nodes.  The
policy owns whatever state the attackers share — the coalition roster, a
stuffing campaign's victim list — so the cluster stays attack-agnostic:
it only knows *which* nodes are adversarial, never *how*.

Policies are registered by name; :func:`create` instantiates one from a
``ClusterConfig``-style flat parameter mapping, coercing strings so
parameters survive a CLI round-trip.  The concrete adversaries live in
sibling modules and self-register on import (see ``__init__``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple, Type

import numpy as np

from repro.config import GossipParams, LiftingParams
from repro.nodes.behavior import Behavior

NodeId = int


@dataclass(frozen=True)
class AdversaryContext:
    """What a policy may know about the deployment it attacks.

    Deliberately *less* than the cluster knows: the adversary sees the
    public parameters and the two role sets, not node internals.  The
    ``rng`` is drawn from the cluster's seed tree (stream
    ``"adversary"``), so adversarial randomness never perturbs the
    honest streams — un-attacked runs stay byte-identical.
    """

    gossip: GossipParams
    lifting: LiftingParams
    freerider_ids: FrozenSet[NodeId]
    honest_ids: FrozenSet[NodeId]
    rng: np.random.Generator


class BehaviorPolicy:
    """Base policy: knows how to arm one adversarial node.

    Lifecycle: construct with parameters → :meth:`prepare` once with the
    deployment context → :meth:`build` once per adversarial node id.
    """

    name = "?"

    def prepare(self, ctx: AdversaryContext) -> None:
        """Bind the deployment context and derive shared attack state."""
        self.ctx = ctx

    def build(self, node_id: NodeId) -> Behavior:
        """The behaviour instance for adversarial node ``node_id``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Summary for reports/metrics (policy name + tuned state)."""
        return {"policy": self.name}


_REGISTRY: Dict[str, Type[BehaviorPolicy]] = {}


def register(cls: Type[BehaviorPolicy]) -> Type[BehaviorPolicy]:
    """Class decorator: make a policy creatable by name."""
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate adversary policy name: {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def _coerce(value):
    """Best-effort typed view of a possibly-stringly parameter value."""
    if not isinstance(value, str):
        return value
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def create(kind: str, params: Mapping[str, object] = ()) -> BehaviorPolicy:
    """Instantiate the policy registered under ``kind``.

    ``params`` are keyword arguments for the policy constructor; string
    values are coerced (bool/int/float) so ``("rate", "1.5")`` pairs
    from a frozen config tuple work unchanged.
    """
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown adversary policy {kind!r}; available: {available()}"
        ) from None
    kwargs = {key: _coerce(value) for key, value in dict(params).items()}
    return cls(**kwargs)
