"""Byzantine adversary policies for the robustness experiments.

``from repro import adversary`` gives the full registry: importing the
package imports every concrete policy module, which self-registers via
:func:`repro.adversary.policy.register`.  Use :func:`create` to build a
policy by name and :func:`available` to enumerate them::

    policy = adversary.create("coalition", {"launder": 2.0})
    policy.prepare(ctx)          # AdversaryContext from the cluster
    behavior = policy.build(17)  # Behavior for adversarial node 17
"""

from repro.adversary.policy import (
    AdversaryContext,
    BehaviorPolicy,
    available,
    create,
    register,
)
from repro.adversary.adaptive import (
    AdaptiveFreeriderBehavior,
    AdaptiveFreeriderPolicy,
    degree_ladder,
)
from repro.adversary.coalition import LaunderingColluderBehavior, LaunderingCoalitionPolicy
from repro.adversary.equivocator import EquivocatorBehavior, EquivocatorPolicy
from repro.adversary.sybil import StuffingCampaign, SybilBlamePolicy, SybilStufferBehavior

__all__ = [
    "AdversaryContext",
    "BehaviorPolicy",
    "available",
    "create",
    "register",
    "AdaptiveFreeriderBehavior",
    "AdaptiveFreeriderPolicy",
    "degree_ladder",
    "LaunderingColluderBehavior",
    "LaunderingCoalitionPolicy",
    "EquivocatorBehavior",
    "EquivocatorPolicy",
    "StuffingCampaign",
    "SybilBlamePolicy",
    "SybilStufferBehavior",
]
