"""The adaptive freerider: freeride as hard as η allows, no harder.

The paper's Figure 12 freeriders pick a fixed degree Δ and either escape
(expected excess blame below ``-η``) or get caught.  A rational attacker
instead *solves* the detector: the closed form
:func:`~repro.analysis.freerider_blames.expected_blame_excess` is public
(it is derived from public parameters), so the attacker computes the
largest uniform δ whose expected per-period excess stays a safety margin
under ``-η`` — then tracks its own reputation at runtime through the
ordinary score-read protocol and walks δ up or down the same ladder as
the observed score drifts.  The result sits just under the expulsion
threshold: the maximum bandwidth gain the deployment's η actually
tolerates, which is exactly the quantity a robustness study wants
measured.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.freerider_blames import expected_blame_excess
from repro.config import FreeriderDegree
from repro.nodes.freerider import FreeriderBehavior

from repro.adversary.policy import AdversaryContext, BehaviorPolicy, register

NodeId = int


def degree_ladder(
    ctx: AdversaryContext,
    *,
    headroom: float,
    step: float = 0.05,
    max_delta: float = 0.95,
) -> Tuple[List[FreeriderDegree], int]:
    """The ladder of uniform degrees and the closed-form start rung.

    Returns every ``FreeriderDegree.uniform(k·step)`` up to
    ``max_delta`` plus the index of the largest one whose expected
    per-period excess blame is at most ``headroom · (-η)`` — the
    analytical "just under the threshold" operating point.
    """
    gossip, lifting = ctx.gossip, ctx.lifting
    p_r = 1.0 - lifting.assumed_loss_rate
    budget = headroom * -lifting.eta
    ladder: List[FreeriderDegree] = []
    start = 0
    index = 0
    delta = 0.0
    while delta <= max_delta + 1e-9:
        degree = FreeriderDegree.uniform(min(delta, max_delta))
        ladder.append(degree)
        excess = expected_blame_excess(
            degree, gossip.fanout, gossip.request_size, p_r, lifting.p_dcc
        )
        if excess <= budget:
            start = index
        index += 1
        delta += step
    return ladder, start


class AdaptiveFreeriderBehavior(FreeriderBehavior):
    """A freerider walking the δ-ladder under score feedback."""

    name = "adaptive_freerider"

    def __init__(
        self,
        ladder: List[FreeriderDegree],
        rung: int,
        *,
        check_every: int = 5,
        retreat_at: float = 0.6,
        advance_at: float = 0.25,
    ) -> None:
        super().__init__(ladder[rung])
        self.ladder = ladder
        self.rung = rung
        self.check_every = max(1, int(check_every))
        #: retreat one rung when own score falls below ``retreat_at · η``
        self.retreat_at = retreat_at
        #: advance one rung when own score sits above ``advance_at · η``
        self.advance_at = advance_at
        self.adjustments = 0

    def on_period_start(self, period: int) -> None:
        node = self.node
        if node.score_reader is None or period % self.check_every != 0:
            return
        node.score_reader.query(node.node_id, self._on_own_score)

    def _on_own_score(self, score: Optional[float]) -> None:
        if score is None:
            return
        eta = self.node.lifting.eta  # negative
        if score <= self.retreat_at * eta and self.rung > 0:
            self.rung -= 1
        elif score >= self.advance_at * eta and self.rung < len(self.ladder) - 1:
            self.rung += 1
        else:
            return
        self.degree = self.ladder[self.rung]
        self.adjustments += 1

    def __repr__(self) -> str:
        return f"AdaptiveFreeriderBehavior(rung={self.rung}, {self.degree})"


@register
class AdaptiveFreeriderPolicy(BehaviorPolicy):
    """Arms every adversarial node with the η-solving freerider."""

    name = "adaptive"

    def __init__(
        self,
        headroom: float = 0.8,
        step: float = 0.05,
        check_every: int = 5,
        retreat_at: float = 0.6,
        advance_at: float = 0.25,
    ) -> None:
        self.headroom = headroom
        self.step = step
        self.check_every = check_every
        self.retreat_at = retreat_at
        self.advance_at = advance_at

    def prepare(self, ctx: AdversaryContext) -> None:
        super().prepare(ctx)
        self.ladder, self.start_rung = degree_ladder(
            ctx, headroom=self.headroom, step=self.step
        )

    def build(self, node_id: NodeId) -> AdaptiveFreeriderBehavior:
        return AdaptiveFreeriderBehavior(
            self.ladder,
            self.start_rung,
            check_every=self.check_every,
            retreat_at=self.retreat_at,
            advance_at=self.advance_at,
        )

    def describe(self):
        return {
            "policy": self.name,
            "start_delta": self.ladder[self.start_rung].delta1,
            "headroom": self.headroom,
        }
