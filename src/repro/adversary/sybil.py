"""Sybil blame-stuffing: coordinated defamation of honest targets.

A group of adversarial identities shares one :class:`StuffingCampaign` —
a small set of honest victims and a per-identity blame rate — and every
member pours that budget onto the victims each period, trying to push an
honest score under η before the system notices.  LiFTinG's defenses are
structural, not cryptographic: blames are *averaged over the node's
lifetime* (a burst decays as ``1/r``), expulsion needs a **quorum** of
managers plus a grace period, and the stuffers — who also freeride to
make the identities worth running — keep accruing their own statistical
blame the whole time.  The ``sybil_blame`` scenario sweeps the stuffing
rate and measures both sides of the race: wrongful expulsions among the
victims versus detection of the stuffers themselves.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import FreeriderDegree
from repro.nodes.freerider import FreeriderBehavior

from repro.adversary.policy import AdversaryContext, BehaviorPolicy, register

NodeId = int


class StuffingCampaign:
    """Shared target list and cadence of a stuffing group."""

    def __init__(
        self, victims: Tuple[NodeId, ...], rate: float, start_period: int
    ) -> None:
        self.victims = tuple(victims)
        #: blame units each member stuffs per victim per period.
        self.rate = rate
        #: first period of the attack (a warm-up makes the burst look
        #: less like a joining artefact).
        self.start_period = start_period
        self.blames_stuffed = 0.0


class SybilStufferBehavior(FreeriderBehavior):
    """One stuffing identity: freerides and defames the victims."""

    name = "sybil_stuffer"

    def __init__(
        self,
        degree: FreeriderDegree,
        campaign: StuffingCampaign,
        members: frozenset = frozenset(),
    ) -> None:
        super().__init__(degree)
        self.campaign = campaign
        self.members = members

    def on_period_start(self, period: int) -> None:
        campaign = self.campaign
        if period < campaign.start_period or campaign.rate <= 0.0:
            return
        for victim in campaign.victims:
            self.node.send_blame(victim, campaign.rate, "stuffed")
            campaign.blames_stuffed += campaign.rate

    def should_blame(self, target: NodeId) -> bool:
        # Never blame a fellow stuffer: mutual silence delays the
        # group's own detection by one manager testimony each.
        return target not in self.members

    def __repr__(self) -> str:
        return f"SybilStufferBehavior({self.degree}, victims={self.campaign.victims})"


@register
class SybilBlamePolicy(BehaviorPolicy):
    """All adversarial nodes join one coordinated stuffing campaign."""

    name = "sybil_blame"

    def __init__(
        self,
        rate: float = 1.0,
        victims: int = 2,
        start_period: int = 10,
        delta: float = 0.5,
    ) -> None:
        self.rate = rate
        self.victim_count = victims
        self.start_period = start_period
        self.degree = FreeriderDegree.uniform(delta)

    def prepare(self, ctx: AdversaryContext) -> None:
        super().prepare(ctx)
        honest = sorted(ctx.honest_ids)
        count = min(self.victim_count, len(honest))
        picked = ctx.rng.choice(len(honest), size=count, replace=False)
        self.campaign = StuffingCampaign(
            tuple(honest[int(i)] for i in sorted(picked)),
            self.rate,
            self.start_period,
        )
        self._members = frozenset(ctx.freerider_ids)

    def build(self, node_id: NodeId) -> SybilStufferBehavior:
        return SybilStufferBehavior(self.degree, self.campaign, self._members)

    def describe(self):
        return {
            "policy": self.name,
            "victims": self.campaign.victims,
            "rate": self.rate,
            "start_period": self.start_period,
            "delta": self.degree.delta1,
        }
