"""Bounded local history — the accountability substrate of LiFTinG.

Every node keeps a trace of the events of the last ``n_h = h / T_g``
gossip periods (§5):

* the propose events it initiated (partners + chunk ids) — the fanout
  multiset ``F_h`` audited in §5.3;
* the nodes that served it chunks — its fanin;
* the proposals it *received* (needed to answer a-posteriori
  cross-check polls about other nodes);
* the verifiers that asked it to *confirm* proposals of some proposer —
  the raw material of the fanin multiset ``F'_h`` collected from
  witnesses.

The history is a ring of per-period records; appending is O(1) and the
memory bound is ``n_h`` records regardless of run length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.util.multiset import Multiset
from repro.util.validation import require

NodeId = int
ChunkId = int


@dataclass
class PeriodRecord:
    """Everything a node logs about one gossip period."""

    period: int
    #: the propose event of this period: (partners, chunk ids); None when
    #: the node had nothing to propose (received no chunk last period).
    proposal: Optional[Tuple[Tuple[NodeId, ...], Tuple[ChunkId, ...]]] = None
    #: nodes that served us a chunk during this period (their claimed
    #: origin, which a man-in-the-middle colluder spoofs).
    fanin: List[NodeId] = field(default_factory=list)
    #: proposer -> chunk ids of proposals received during this period.
    received_proposals: Dict[NodeId, Set[ChunkId]] = field(default_factory=dict)
    #: proposer -> verifiers that sent us a Confirm about that proposer.
    confirm_senders: Dict[NodeId, List[NodeId]] = field(default_factory=dict)


class LocalHistory:
    """Ring buffer of :class:`PeriodRecord`, bounded to ``n_h`` periods."""

    def __init__(self, max_periods: int) -> None:
        require(max_periods >= 1, "max_periods must be >= 1, got %d", max_periods)
        self.max_periods = max_periods
        self._records: Deque[PeriodRecord] = deque(maxlen=max_periods)
        self._current: Optional[PeriodRecord] = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def begin_period(self, period: int) -> None:
        """Open the record of gossip period ``period``."""
        record = PeriodRecord(period=period)
        self._records.append(record)
        self._current = record

    def _ensure_open(self) -> PeriodRecord:
        require(self._current is not None, "no open period — call begin_period first")
        return self._current

    def record_proposal(
        self, partners: Tuple[NodeId, ...], chunk_ids: Tuple[ChunkId, ...]
    ) -> None:
        """Log this period's propose event (one per period)."""
        self._ensure_open().proposal = (tuple(partners), tuple(chunk_ids))

    def record_fanin(self, server: NodeId) -> None:
        """Log that ``server`` served us a chunk this period."""
        self._ensure_open().fanin.append(server)

    def record_received_proposal(self, proposer: NodeId, chunk_ids: Tuple[ChunkId, ...]) -> None:
        """Log a proposal received from ``proposer``."""
        record = self._ensure_open()
        record.received_proposals.setdefault(proposer, set()).update(chunk_ids)

    def record_confirm_sender(self, proposer: NodeId, verifier: NodeId) -> None:
        """Log that ``verifier`` asked us to confirm a proposal of ``proposer``."""
        record = self._ensure_open()
        record.confirm_senders.setdefault(proposer, []).append(verifier)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self, last: Optional[int] = None) -> List[PeriodRecord]:
        """The most recent ``last`` period records (oldest first)."""
        records = list(self._records)
        if last is not None:
            records = records[-last:]
        return records

    def fanout_multiset(self, last: Optional[int] = None) -> Multiset:
        """``F_h`` — partners of our propose events over the window."""
        fanout: Multiset = Multiset()
        for record in self.records(last):
            if record.proposal is not None:
                for partner in record.proposal[0]:
                    fanout.add(partner)
        return fanout

    def fanin_multiset(self, last: Optional[int] = None) -> Multiset:
        """Nodes that served us over the window (claimed origins)."""
        fanin: Multiset = Multiset()
        for record in self.records(last):
            for server in record.fanin:
                fanin.add(server)
        return fanin

    def proposal_count(self, last: Optional[int] = None) -> int:
        """Number of propose events in the window — §5.3 uses this to
        check that the node respected the gossip period ``T_g``."""
        return sum(1 for r in self.records(last) if r.proposal is not None)

    def proposals_snapshot(
        self, last: Optional[int] = None
    ) -> Tuple[Tuple[int, Tuple[NodeId, ...], Tuple[ChunkId, ...]], ...]:
        """The propose events in audit-response form."""
        out = []
        for record in self.records(last):
            if record.proposal is not None:
                partners, chunk_ids = record.proposal
                out.append((record.period, partners, chunk_ids))
        return tuple(out)

    def was_proposed_by(
        self, proposer: NodeId, chunk_ids: Tuple[ChunkId, ...], *, last: Optional[int] = None
    ) -> bool:
        """Did we receive a proposal from ``proposer`` containing all of
        ``chunk_ids`` within the window?  Witnesses use this to answer
        confirm requests and a-posteriori polls."""
        wanted = set(chunk_ids)
        for record in self.records(last):
            seen = record.received_proposals.get(proposer)
            if seen is not None and wanted <= seen:
                return True
        return False

    def received_any_proposal_from(self, proposer: NodeId, *, last: Optional[int] = None) -> bool:
        """Did ``proposer`` send us any proposal within the window?"""
        return any(proposer in r.received_proposals for r in self.records(last))

    def confirm_senders_about(self, proposer: NodeId, last: Optional[int] = None) -> List[NodeId]:
        """All verifiers that asked us about ``proposer`` in the window."""
        out: List[NodeId] = []
        for record in self.records(last):
            out.extend(record.confirm_senders.get(proposer, ()))
        return out

    @property
    def current_period(self) -> Optional[int]:
        """Index of the open period (None before the first)."""
        return self._current.period if self._current is not None else None

    def __len__(self) -> int:
        return len(self._records)
