"""Bounded local history — the accountability substrate of LiFTinG.

Every node keeps a trace of the events of the last ``n_h = h / T_g``
gossip periods (§5):

* the propose events it initiated (partners + chunk ids) — the fanout
  multiset ``F_h`` audited in §5.3;
* the nodes that served it chunks — its fanin;
* the proposals it *received* (needed to answer a-posteriori
  cross-check polls about other nodes);
* the verifiers that asked it to *confirm* proposals of some proposer —
  the raw material of the fanin multiset ``F'_h`` collected from
  witnesses.

The history is a ring of per-period records; appending is O(1) and the
memory bound is ``n_h`` records regardless of run length.

Flattened layout
----------------
The ring preallocates its :class:`PeriodRecord` slots and *reuses* them
on wraparound (containers are cleared in place), so a steady-state node
allocates no per-period record objects.  Alongside the raw ring the
history maintains:

* the full-window fanout :class:`~repro.util.multiset.Multiset` and the
  propose-event count, updated incrementally on record/evict — the
  audited aggregates read in O(1) instead of a scan.  (The fanin
  multiset stays a lazy scan: it is only read by diagnostics, while
  ``record_fanin`` runs once per received chunk.);
* per-proposer indexes over received proposals and confirm senders, so
  the witness queries (:meth:`was_proposed_by`,
  :meth:`confirm_senders_about` — both run per Confirm / HistoryPoll
  message) touch only the queried proposer's entries instead of every
  record in the window.

Records returned by :meth:`records` are the live ring slots: they are
valid until the ring wraps past them, at which point they are recycled.
Take snapshots (:meth:`proposals_snapshot`) to retain data beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.util.multiset import Multiset
from repro.util.validation import require

NodeId = int
ChunkId = int


@dataclass
class PeriodRecord:
    """Everything a node logs about one gossip period."""

    period: int
    #: the propose event of this period: (partners, chunk ids); None when
    #: the node had nothing to propose (received no chunk last period).
    proposal: Optional[Tuple[Tuple[NodeId, ...], Tuple[ChunkId, ...]]] = None
    #: nodes that served us a chunk during this period (their claimed
    #: origin, which a man-in-the-middle colluder spoofs).
    fanin: List[NodeId] = field(default_factory=list)
    #: proposer -> chunk ids of proposals received during this period.
    received_proposals: Dict[NodeId, Set[ChunkId]] = field(default_factory=dict)
    #: proposer -> verifiers that sent us a Confirm about that proposer.
    confirm_senders: Dict[NodeId, List[NodeId]] = field(default_factory=dict)
    #: monotone position of this record in the ring (internal: the
    #: per-proposer indexes and window queries key on it).
    seq: int = 0


class LocalHistory:
    """Ring buffer of :class:`PeriodRecord`, bounded to ``n_h`` periods."""

    def __init__(self, max_periods: int) -> None:
        require(max_periods >= 1, "max_periods must be >= 1, got %d", max_periods)
        self.max_periods = max_periods
        self._slots: List[Optional[PeriodRecord]] = [None] * max_periods
        self._current: Optional[PeriodRecord] = None
        #: number of begin_period calls so far (== seq of the open record).
        self._seq = 0
        # Incrementally maintained full-window aggregates.
        self._fanout: Multiset = Multiset()
        self._proposal_count = 0
        # proposer -> {seq -> chunk-id set} (the sets are shared with the
        # owning record's ``received_proposals``).
        self._received_idx: Dict[NodeId, Dict[int, Set[ChunkId]]] = {}
        # proposer -> {seq -> verifier list} (shared with
        # ``confirm_senders``), chronological per proposer.
        self._confirm_idx: Dict[NodeId, Dict[int, List[NodeId]]] = {}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def begin_period(self, period: int) -> None:
        """Open the record of gossip period ``period``."""
        seq = self._seq + 1
        self._seq = seq
        slot = (seq - 1) % self.max_periods
        record = self._slots[slot]
        if record is None:
            record = PeriodRecord(period=period, seq=seq)
            self._slots[slot] = record
        else:
            self._evict(record)
            record.period = period
            record.seq = seq
            record.proposal = None
            record.fanin.clear()
            record.received_proposals.clear()
            record.confirm_senders.clear()
        self._current = record

    def _evict(self, record: PeriodRecord) -> None:
        """Unwind an overwritten record from the incremental aggregates."""
        if record.proposal is not None:
            self._proposal_count -= 1
            fanout = self._fanout
            for partner in record.proposal[0]:
                fanout.discard(partner)
        seq = record.seq
        if record.received_proposals:
            received_idx = self._received_idx
            for proposer in record.received_proposals:
                per_seq = received_idx[proposer]
                del per_seq[seq]
                if not per_seq:
                    del received_idx[proposer]
        if record.confirm_senders:
            confirm_idx = self._confirm_idx
            for proposer in record.confirm_senders:
                per_seq = confirm_idx[proposer]
                del per_seq[seq]
                if not per_seq:
                    del confirm_idx[proposer]

    def _ensure_open(self) -> PeriodRecord:
        record = self._current
        if record is None:
            require(False, "no open period — call begin_period first")
        return record

    def record_proposal(
        self, partners: Tuple[NodeId, ...], chunk_ids: Tuple[ChunkId, ...]
    ) -> None:
        """Log this period's propose event (one per period)."""
        record = self._ensure_open()
        fanout = self._fanout
        if record.proposal is not None:  # overwrite: unwind the old event
            self._proposal_count -= 1
            for partner in record.proposal[0]:
                fanout.discard(partner)
        partners = tuple(partners)
        record.proposal = (partners, tuple(chunk_ids))
        self._proposal_count += 1
        for partner in partners:
            fanout.add(partner)

    def record_fanin(self, server: NodeId) -> None:
        """Log that ``server`` served us a chunk this period."""
        record = self._current
        if record is None:
            self._ensure_open()
        record.fanin.append(server)

    def record_received_proposal(self, proposer: NodeId, chunk_ids: Tuple[ChunkId, ...]) -> None:
        """Log a proposal received from ``proposer``."""
        record = self._current
        if record is None:
            self._ensure_open()
        seen = record.received_proposals.get(proposer)
        if seen is None:
            seen = record.received_proposals[proposer] = set()
            per_seq = self._received_idx.get(proposer)
            if per_seq is None:
                per_seq = self._received_idx[proposer] = {}
            per_seq[record.seq] = seen
        seen.update(chunk_ids)

    def record_confirm_sender(self, proposer: NodeId, verifier: NodeId) -> None:
        """Log that ``verifier`` asked us to confirm a proposal of ``proposer``."""
        record = self._current
        if record is None:
            self._ensure_open()
        senders = record.confirm_senders.get(proposer)
        if senders is None:
            senders = record.confirm_senders[proposer] = []
            per_seq = self._confirm_idx.get(proposer)
            if per_seq is None:
                per_seq = self._confirm_idx[proposer] = {}
            per_seq[record.seq] = senders
        senders.append(verifier)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self, last: Optional[int] = None) -> List[PeriodRecord]:
        """The most recent ``last`` period records (oldest first).

        The returned records are the live ring slots (recycled once the
        ring wraps past them) — snapshot what must outlive the window.
        """
        seq = self._seq
        count = min(seq, self.max_periods)
        if last is not None and last < count:
            count = max(last, 0)
        cap = self.max_periods
        slots = self._slots
        return [slots[(s - 1) % cap] for s in range(seq - count + 1, seq + 1)]

    def fanout_multiset(self, last: Optional[int] = None) -> Multiset:
        """``F_h`` — partners of our propose events over the window."""
        if last is None or last >= min(self._seq, self.max_periods):
            return self._fanout.copy()
        fanout: Multiset = Multiset()
        for record in self.records(last):
            if record.proposal is not None:
                for partner in record.proposal[0]:
                    fanout.add(partner)
        return fanout

    def fanin_multiset(self, last: Optional[int] = None) -> Multiset:
        """Nodes that served us over the window (claimed origins)."""
        fanin: Multiset = Multiset()
        for record in self.records(last):
            for server in record.fanin:
                fanin.add(server)
        return fanin

    def proposal_count(self, last: Optional[int] = None) -> int:
        """Number of propose events in the window — §5.3 uses this to
        check that the node respected the gossip period ``T_g``."""
        if last is None or last >= min(self._seq, self.max_periods):
            return self._proposal_count
        return sum(1 for r in self.records(last) if r.proposal is not None)

    def proposals_snapshot(
        self, last: Optional[int] = None
    ) -> Tuple[Tuple[int, Tuple[NodeId, ...], Tuple[ChunkId, ...]], ...]:
        """The propose events in audit-response form."""
        out = []
        for record in self.records(last):
            if record.proposal is not None:
                partners, chunk_ids = record.proposal
                out.append((record.period, partners, chunk_ids))
        return tuple(out)

    def was_proposed_by(
        self, proposer: NodeId, chunk_ids: Tuple[ChunkId, ...], *, last: Optional[int] = None
    ) -> bool:
        """Did we receive a proposal from ``proposer`` containing all of
        ``chunk_ids`` within the window?  Witnesses use this to answer
        confirm requests and a-posteriori polls."""
        per_seq = self._received_idx.get(proposer)
        if per_seq is None:
            return False
        wanted = set(chunk_ids)
        if last is None:
            for seen in per_seq.values():
                if wanted <= seen:
                    return True
            return False
        lo = self._seq - last + 1
        for seq, seen in per_seq.items():
            if seq >= lo and wanted <= seen:
                return True
        return False

    def received_any_proposal_from(self, proposer: NodeId, *, last: Optional[int] = None) -> bool:
        """Did ``proposer`` send us any proposal within the window?"""
        per_seq = self._received_idx.get(proposer)
        if per_seq is None:
            return False
        if last is None:
            return True
        lo = self._seq - last + 1
        return any(seq >= lo for seq in per_seq)

    def confirm_senders_about(self, proposer: NodeId, last: Optional[int] = None) -> List[NodeId]:
        """All verifiers that asked us about ``proposer`` in the window."""
        per_seq = self._confirm_idx.get(proposer)
        out: List[NodeId] = []
        if per_seq is None:
            return out
        if last is None:
            for senders in per_seq.values():
                out.extend(senders)
            return out
        lo = self._seq - last + 1
        for seq, senders in per_seq.items():
            if seq >= lo:
                out.extend(senders)
        return out

    @property
    def current_period(self) -> Optional[int]:
        """Index of the open period (None before the first)."""
        return self._current.period if self._current is not None else None

    def __len__(self) -> int:
        return min(self._seq, self.max_periods)
