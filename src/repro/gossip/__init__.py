"""The three-phase gossip dissemination protocol (paper §3).

Content is split into chunks; every gossip period ``T_g`` each node
*proposes* the chunk ids received since its last propose phase to ``f``
random partners, partners *request* the chunk ids they need, and the
proposer *serves* the requested chunks.  The protocol is infect-and-die:
a chunk is proposed exactly once by each node.

The package provides the wire messages (with byte-accurate sizing for
the overhead measurements), the stream source, the bounded local history
log that LiFTinG audits, and the protocol node itself.
"""

from repro.gossip.chunks import SOURCE_ID, Chunk, ChunkStore, StreamSource
from repro.gossip.history import LocalHistory, PeriodRecord
from repro.gossip.messages import (
    Ack,
    AuditRequest,
    AuditResponse,
    Blame,
    Confirm,
    ConfirmResponse,
    ExpelVote,
    HistoryPollRequest,
    HistoryPollResponse,
    Propose,
    Request,
    ScoreQuery,
    ScoreReply,
    Serve,
)
from repro.gossip.protocol import GossipNode

__all__ = [
    "Ack",
    "AuditRequest",
    "AuditResponse",
    "Blame",
    "Chunk",
    "ChunkStore",
    "Confirm",
    "ConfirmResponse",
    "ExpelVote",
    "GossipNode",
    "HistoryPollRequest",
    "HistoryPollResponse",
    "LocalHistory",
    "PeriodRecord",
    "Propose",
    "Request",
    "SOURCE_ID",
    "ScoreQuery",
    "ScoreReply",
    "Serve",
    "StreamSource",
]
