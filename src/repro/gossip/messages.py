"""Wire messages — re-exported from :mod:`repro.wire`.

The message dataclasses live in a top-level module to avoid a circular
import between the protocol node (which uses :mod:`repro.core`) and the
verification engine (which builds messages); this shim preserves the
natural ``repro.gossip.messages`` import path.
"""

from repro.wire import (
    Ack,
    AuditRequest,
    AuditResponse,
    Blame,
    CHUNK_ID_BYTES,
    Confirm,
    ConfirmResponse,
    ExpelVote,
    HistoryPollRequest,
    HistoryPollResponse,
    MembershipUpdate,
    NODE_ID_BYTES,
    PERIOD_BYTES,
    Ping,
    PingAck,
    PingReq,
    PROPOSAL_ID_BYTES,
    Propose,
    Request,
    ScoreQuery,
    ScoreReply,
    Serve,
    TCP_HEADER,
    TYPE_TAG,
    UDP_HEADER,
    VALUE_BYTES,
    WIRE_MESSAGE_CLASSES,
)

__all__ = [
    "Ack",
    "AuditRequest",
    "AuditResponse",
    "Blame",
    "CHUNK_ID_BYTES",
    "Confirm",
    "ConfirmResponse",
    "ExpelVote",
    "HistoryPollRequest",
    "HistoryPollResponse",
    "MembershipUpdate",
    "NODE_ID_BYTES",
    "PERIOD_BYTES",
    "Ping",
    "PingAck",
    "PingReq",
    "PROPOSAL_ID_BYTES",
    "Propose",
    "Request",
    "ScoreQuery",
    "ScoreReply",
    "Serve",
    "TCP_HEADER",
    "TYPE_TAG",
    "UDP_HEADER",
    "VALUE_BYTES",
    "WIRE_MESSAGE_CLASSES",
]
