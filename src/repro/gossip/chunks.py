"""Stream chunking and the broadcast source.

The source splits the stream into fixed-size chunks identified by a
monotonically increasing id, and pushes each fresh chunk to
``source_fanout`` random nodes (one :class:`~repro.gossip.messages.Serve`
each); dissemination to the remaining ``n - source_fanout`` nodes is the
gossip protocol's job.  The source does not take part in verification —
nodes recognise :data:`SOURCE_ID` and skip acks towards it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.config import GossipParams
from repro.gossip.messages import Serve
from repro.membership.base import PeerSampler
from repro.sim.engine import Simulator
from repro.sim.network import Network, Transport
from repro.util.validation import require

NodeId = int
ChunkId = int

SOURCE_ID: NodeId = -1


@dataclass(frozen=True)
class Chunk:
    """One unit of stream content."""

    chunk_id: ChunkId
    created_at: float
    size: int

    def __post_init__(self) -> None:
        require(self.size > 0, "chunk size must be > 0, got %d", self.size)


class ChunkStore:
    """A node's set of owned chunks with reception timestamps.

    The reception times are what the health metric (Figure 1) consumes:
    a node "views a clear stream at lag L" when almost all chunks arrive
    within ``L`` seconds of their creation.
    """

    def __init__(self) -> None:
        self._received_at: Dict[ChunkId, float] = {}
        self._sizes: Dict[ChunkId, int] = {}
        self._created_at: Dict[ChunkId, float] = {}
        #: stable public alias of the chunk-id -> reception-time map;
        #: hot paths test membership against it directly instead of
        #: paying a ``__contains__`` frame per chunk id.
        self.owned = self._received_at

    def add(self, chunk_id: ChunkId, size: int, received_at: float, created_at: float) -> bool:
        """Record a chunk; returns False if it was already owned."""
        if chunk_id in self._received_at:
            return False
        self._received_at[chunk_id] = received_at
        self._sizes[chunk_id] = size
        self._created_at[chunk_id] = created_at
        return True

    def __contains__(self, chunk_id: ChunkId) -> bool:
        return chunk_id in self._received_at

    def __len__(self) -> int:
        return len(self._received_at)

    def size_of(self, chunk_id: ChunkId) -> int:
        """Payload size of an owned chunk."""
        return self._sizes[chunk_id]

    def received_at(self, chunk_id: ChunkId) -> float:
        """When the chunk arrived."""
        return self._received_at[chunk_id]

    def delay_of(self, chunk_id: ChunkId) -> float:
        """Reception lag relative to the chunk's creation time."""
        return self._received_at[chunk_id] - self._created_at[chunk_id]

    def chunk_ids(self) -> List[ChunkId]:
        """All owned chunk ids."""
        return list(self._received_at.keys())


class StreamSource:
    """The broadcast source: emits chunks at the configured bitrate.

    Registered on the network like a node (``node_id == SOURCE_ID``) but
    follows a pure push schedule instead of the three-phase protocol.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sampler: PeerSampler,
        params: GossipParams,
        *,
        stop_after: Optional[float] = None,
    ) -> None:
        self.node_id = SOURCE_ID
        self.sim = sim
        self.network = network
        self.sampler = sampler
        self.params = params
        self.stop_after = stop_after
        self.chunks: List[Chunk] = []
        #: chunk id -> creation time as a plain list (chunk ids are
        #: dense).  Nodes bind ``created_times.__getitem__`` as their
        #: ``chunk_created_at`` hook — a C-level lookup on the serve
        #: path instead of a method frame.
        self.created_times: List[float] = []
        self._next_id = 0
        self._timer = None

    def start(self, first_at: float = 0.0) -> None:
        """Begin emitting chunks at ``first_at``."""
        self._timer = self.sim.call_every(
            self.params.chunk_interval, self._emit, first_at=first_at
        )

    def stop(self) -> None:
        """Stop the stream."""
        if self._timer is not None:
            self._timer.stop()

    def _emit(self) -> None:
        if self.stop_after is not None and self.sim.now >= self.stop_after:
            self.stop()
            return
        chunk = Chunk(self._next_id, created_at=self.sim.now, size=self.params.chunk_size)
        self._next_id += 1
        self.chunks.append(chunk)
        self.created_times.append(chunk.created_at)
        targets = self.sampler.sample(self.node_id, self.params.source_fanout)
        serve = Serve(
            proposal_id=-1,
            chunk_id=chunk.chunk_id,
            payload_size=chunk.size,
            origin=SOURCE_ID,
        )
        self.network.send_many(self.node_id, targets, serve, Transport.UDP)

    def on_message(self, src: NodeId, message: object) -> None:
        """The source ignores inbound protocol traffic (acks etc.)."""

    @property
    def emitted(self) -> int:
        """Number of chunks emitted so far."""
        return self._next_id

    def created_at(self, chunk_id: ChunkId) -> float:
        """Creation time of ``chunk_id``."""
        return self.created_times[chunk_id]
